"""Base class for CONGEST node programs.

A protocol is implemented by subclassing :class:`NodeProgram`; the simulator
instantiates one program per node and drives it through the callbacks below.

Lifecycle
---------
``on_start(ctx)``
    Called once before round 1; typical use: sources inject their first
    message (Algorithm 1 line "Initialization" / Algorithm 2 "In the first
    round").
``on_round(ctx, inbox)``
    Called each round in which the node received at least one message or
    reported pending outgoing work (``has_pending()``), mirroring an
    event-driven implementation.  Set the class attribute ``needs_clock =
    True`` to be called *every* round instead (needed by protocols that
    count rounds, e.g. fixed phase budgets under the paper's "every node
    knows S" assumption).
``on_quiescent(ctx)``
    Called only by the *oracle* synchronizer when the whole network is
    silent (no messages in flight, no pending work anywhere).  This models
    an external phase-synchronization service; the honest in-protocol
    alternative is the ECHO/COMPLETE machinery of paper Section 3.3
    (``repro.algorithms.termination`` / ``repro.tz.distributed``).

``inbox`` maps each neighbor to the payload received on that edge this
round (at most one per edge, by the model).
"""

from __future__ import annotations

from typing import Any

from repro.congest.context import NodeContext


class NodeProgram:
    """One node's protocol state machine (subclass to implement a protocol)."""

    #: If True, ``on_round`` fires every round even with an empty inbox.
    needs_clock: bool = False

    def on_start(self, ctx: NodeContext) -> None:
        """Round-0 initialization hook (default: no-op)."""

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        """Process this round's inbox and queue sends (default: no-op)."""

    def on_quiescent(self, ctx: NodeContext) -> None:
        """Oracle-synchronizer hook at global quiescence (default: no-op)."""

    def has_pending(self) -> bool:
        """True if this node has queued outgoing work not yet sent.

        The simulator uses this for quiescence detection: the network is
        quiescent when nothing is in flight and no program has pending
        work.  Programs with internal send queues (round-robin multi-source
        Bellman-Ford) must override this.
        """
        return False

    def finished(self) -> bool:
        """False while this program still wants ``on_quiescent`` callbacks.

        At global quiescence the simulator keeps invoking ``on_quiescent``
        until every program reports finished — this lets phase-structured
        protocols advance through phases that happen to produce no traffic
        (e.g. a Thorup-Zwick level with no sources).  Programs that never
        use the oracle synchronizer can leave the default (True).
        """
        return True

    def result(self) -> Any:
        """The node's local output after the run (protocol-specific)."""
        return None
