"""Per-node API surface.

A :class:`NodeContext` is the *only* handle a node program gets on the
world.  It exposes what the paper's model grants a node (Section 2.2): its
own ID, its neighbors and incident edge weights, the network size ``n``
(assumed common knowledge), a private random stream, and the ability to
send one bounded message per incident edge per round.  Everything else —
global distances, other nodes' state — is deliberately unreachable, so a
protocol that typechecks against this surface is a legal CONGEST protocol.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ProtocolError


class NodeContext:
    """Capability object handed to a :class:`~repro.congest.node.NodeProgram`.

    Instances are created by the simulator; protocols never construct one.
    """

    __slots__ = ("node", "n", "_weights", "_neighbors", "rng", "_outbox",
                 "_round", "_send_allowed")

    def __init__(self, node: int, n: int, neighbors: dict[int, float],
                 rng: np.random.Generator):
        self.node = node
        self.n = n
        self._weights = neighbors
        self._neighbors = tuple(sorted(neighbors))
        self.rng = rng
        self._outbox: dict[int, Any] = {}
        self._round = 0
        self._send_allowed = False

    # ------------------------------------------------------------------
    # topology-local knowledge
    # ------------------------------------------------------------------
    @property
    def neighbors(self) -> tuple[int, ...]:
        """Sorted tuple of neighbor IDs."""
        return self._neighbors

    def edge_weight(self, v: int) -> float:
        """Weight of the incident edge to neighbor ``v``."""
        try:
            return self._weights[v]
        except KeyError:
            raise ProtocolError(f"node {self.node}: {v} is not a neighbor") from None

    @property
    def round(self) -> int:
        """Current round number (0 before the first round)."""
        return self._round

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: Any) -> None:
        """Queue ``payload`` on the edge to neighbor ``dst`` for this round.

        At most one message per edge per round (the CONGEST rule); a second
        send on the same edge in the same round raises
        :class:`~repro.errors.ProtocolError`.
        """
        if not self._send_allowed:
            raise ProtocolError(
                f"node {self.node}: send() outside a simulator callback")
        if dst not in self._weights:
            raise ProtocolError(f"node {self.node}: {dst} is not a neighbor")
        if dst in self._outbox:
            raise ProtocolError(
                f"node {self.node}: second message on edge to {dst} in round "
                f"{self._round} violates the one-message-per-edge CONGEST rule")
        self._outbox[dst] = payload

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` on every incident edge (one message per edge)."""
        for v in self._neighbors:
            self.send(v, payload)

    def can_send(self, dst: int) -> bool:
        """True if the edge to ``dst`` is still free this round."""
        return dst not in self._outbox

    # ------------------------------------------------------------------
    # simulator-internal hooks (prefixed, not part of the protocol surface)
    # ------------------------------------------------------------------
    def _open(self, round_no: int) -> None:
        self._round = round_no
        self._outbox = {}
        self._send_allowed = True

    def _close(self) -> dict[int, Any]:
        self._send_allowed = False
        return self._outbox
