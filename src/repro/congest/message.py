"""The wire format of the simulator.

A :class:`Message` is a ``(src, dst, payload)`` triple.  Payloads are plain
tuples of ints/floats/strings (see :mod:`repro.words` for how their size in
words is metered).  By convention the first payload element is a short
string *kind tag* (``"bf"``, ``"echo"``, ``"complete"`` ...), which costs
one word — the paper absorbs such tags into its O(log n) message-size
constant.
"""

from __future__ import annotations

from typing import Any, NamedTuple

from repro.words import payload_words


class Message(NamedTuple):
    """One CONGEST message in flight."""

    src: int
    dst: int
    payload: Any

    def words(self) -> int:
        """Size of this message in words (see :mod:`repro.words`)."""
        return payload_words(self.payload)

    def kind(self) -> Any:
        """The conventional kind tag (first payload element), if tuple-shaped."""
        if isinstance(self.payload, tuple) and self.payload:
            return self.payload[0]
        return None
