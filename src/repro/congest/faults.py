"""Failure injection: lossy links and crash faults.

The paper closes by calling out "failure-prone and asynchronous settings"
as the natural next step (Section 5).  This module provides the substrate
to study that direction experimentally:

* :class:`FaultModel` — per-message independent loss with probability
  ``loss_rate``, plus crash faults (a node stops sending and receiving
  from a given round on).  Loss decisions come from a dedicated seeded
  stream, so a faulty run is exactly reproducible.
* :class:`FaultySimulator` — a :class:`~repro.congest.network.Simulator`
  that filters sends through a fault model.  The run metrics count
  *delivered* messages; transmission attempts that were lost are metered
  separately on the fault model (``dropped`` / ``blocked``), so
  experiments can report both delivered and attempted traffic.

The library's plain protocols assume reliable delivery (as does the
paper); :mod:`repro.algorithms.reliable_bf` shows how retransmission
restores Bellman-Ford's guarantees under loss, and the fault tests
demonstrate that the fragile protocols *fail visibly* rather than
silently returning wrong answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


from repro.congest.network import Simulator
from repro.errors import ConfigError
from repro.rng import SeedLike, ensure_rng


@dataclass
class FaultModel:
    """What can go wrong, and when.

    Parameters
    ----------
    loss_rate:
        Each delivered message is independently dropped with this
        probability.
    crashes:
        ``node -> round``: from that round on, the node neither sends nor
        receives (fail-stop).
    seed:
        Seed for the loss stream (independent of protocol randomness).
    """

    loss_rate: float = 0.0
    crashes: dict[int, int] = field(default_factory=dict)
    seed: SeedLike = None

    def __post_init__(self):
        if not (0.0 <= self.loss_rate < 1.0):
            raise ConfigError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        self._rng = ensure_rng(self.seed)
        self.dropped = 0
        self.blocked = 0

    # ------------------------------------------------------------------
    def is_crashed(self, node: int, round_no: int) -> bool:
        r = self.crashes.get(node)
        return r is not None and round_no >= r

    def delivers(self, src: int, dst: int, round_no: int) -> bool:
        """Decide the fate of one message (stateful: meters drops)."""
        if self.is_crashed(src, round_no) or self.is_crashed(dst, round_no):
            self.blocked += 1
            return False
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped += 1
            return False
        return True


class FaultySimulator(Simulator):
    """A simulator whose deliveries pass through a :class:`FaultModel`.

    Implementation note: faults are applied at *delivery* time by
    filtering the in-flight list each round, so the accounting still
    charges the sender for every transmission attempt.
    """

    def __init__(self, *args, fault_model: Optional[FaultModel] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self.fault_model = fault_model or FaultModel()

    def _collect(self, u: int):
        # faults are applied at collection time: a dropped message never
        # enters the in-flight list, and a crashed endpoint blocks the
        # message in either direction.  A crashed node's program object
        # remains allocated but becomes inert (it receives nothing, so its
        # state can only change through clock ticks) — fail-stop semantics.
        sends = super()._collect(u)
        if not sends:
            return sends
        fm = self.fault_model
        round_no = self.metrics.rounds  # sends from round r deliver at r+1
        return [(src, dst, payload) for src, dst, payload in sends
                if fm.delivers(src, dst, round_no + 1)]
