"""Bounded-delay asynchrony (the paper's other named future direction).

Section 5 closes with "asynchronous settings" as future work.  This module
provides the standard first weakening of the synchronous model: every
message experiences an adversarially-random link delay of 1..``max_delay``
rounds, with **per-edge FIFO** preserved (a later message on the same edge
never overtakes an earlier one — the property real links give you and
several of our phase arguments rely on).

What survives asynchrony (and is asserted by tests):

* Bellman-Ford-family protocols (Algorithm 1, k-source, super-source) are
  *self-stabilizing over message contents* — their state is a monotone
  minimum — so delays change round counts but never results.
* Oracle-synchronized phase protocols remain correct: quiescence detection
  waits for the link queues to drain.
* The Section 3.3 ECHO detector is *causally* correct: every guarantee it
  gives ("my cluster has settled") is triggered by message receipt, not by
  round counting, so echo-mode TZ still produces exactly the right
  sketches — provided the one round-counted component, the election
  horizon, is scaled by ``max_delay``.  The tests demonstrate exactly
  this, which is a concrete down payment on the paper's future work.

Round accounting under delays is pessimistic by up to ``max_delay``x —
the point is correctness under weakened timing, not a performance claim.
"""

from __future__ import annotations

from typing import Any

from repro.congest.network import Simulator
from repro.errors import ConfigError
from repro.rng import SeedLike, ensure_rng


class DelayedSimulator(Simulator):
    """A simulator whose links hold messages for 1..``max_delay`` rounds.

    Delays are drawn from a dedicated seeded stream (``delay_seed``).
    Per-edge FIFO is enforced by construction: a message's arrival round
    is bumped past the previous arrival on the same directed edge, which
    also preserves the one-message-per-edge-per-round delivery rule.
    """

    def __init__(self, *args, max_delay: int = 3,
                 delay_seed: SeedLike = None, **kwargs):
        super().__init__(*args, **kwargs)
        if max_delay < 1:
            raise ConfigError("max_delay must be >= 1")
        self.max_delay = int(max_delay)
        self._delay_rng = ensure_rng(delay_seed)
        #: arrival round -> list of (src, dst, payload)
        self._queues: dict[int, list[tuple[int, int, Any]]] = {}
        self._last_arrival: dict[tuple[int, int], int] = {}
        self.max_observed_delay = 0

    # ------------------------------------------------------------------
    def _collect(self, u: int):
        sends = super()._collect(u)
        if not sends:
            return sends
        now = self.metrics.rounds  # sends happen during round `now`
        for src, dst, payload in sends:
            delay = int(self._delay_rng.integers(1, self.max_delay + 1))
            arrival = now + delay
            edge = (src, dst)
            prev = self._last_arrival.get(edge, 0)
            if arrival <= prev:  # FIFO + one delivery per edge per round
                arrival = prev + 1
            self._last_arrival[edge] = arrival
            self.max_observed_delay = max(self.max_observed_delay,
                                          arrival - now)
            self._queues.setdefault(arrival, []).append((src, dst, payload))
        return []  # everything routes through the link queues

    def _external_pending(self) -> bool:
        return bool(self._queues)

    def _deliveries(self, round_no: int, inflight):
        due = self._queues.pop(round_no, [])
        return list(inflight) + due
