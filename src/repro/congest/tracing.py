"""Optional event tracing for debugging protocol runs.

A :class:`Tracer` records every delivered message as a
:class:`TraceEvent`.  Tracing is off by default (the simulator takes a
``tracer=None`` fast path) because recording events dominates runtime on
large runs; tests attach a tracer to small runs to assert fine-grained
protocol behaviour (e.g. that ECHO messages travel opposite to the data
message they acknowledge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    round: int
    src: int
    dst: int
    payload: Any

    def kind(self) -> Any:
        if isinstance(self.payload, tuple) and self.payload:
            return self.payload[0]
        return None


@dataclass
class Tracer:
    """Accumulates :class:`TraceEvent` objects during a simulation.

    ``predicate`` (if given) filters events at record time to bound memory.
    """

    predicate: Optional[Callable[[TraceEvent], bool]] = None
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, round_no: int, src: int, dst: int, payload: Any) -> None:
        ev = TraceEvent(round_no, src, dst, payload)
        if self.predicate is None or self.predicate(ev):
            self.events.append(ev)

    # convenience selectors -------------------------------------------------
    def of_kind(self, kind: Any) -> Iterator[TraceEvent]:
        return (ev for ev in self.events if ev.kind() == kind)

    def between(self, src: int, dst: int) -> Iterator[TraceEvent]:
        return (ev for ev in self.events if ev.src == src and ev.dst == dst)

    def __len__(self) -> int:
        return len(self.events)
