"""The synchronous round engine.

:class:`Simulator` executes one :class:`~repro.congest.node.NodeProgram` per
node of a :class:`~repro.graphs.graph.Graph`, enforcing the CONGEST rules:

* one message per edge per round (checked by the context),
* per-message word budget (checked here against ``bandwidth_words``),
* synchronous delivery: messages sent in round ``r`` are in the inbox at
  round ``r + 1``.

The engine is the library's hot loop, so it follows the optimization
guidance for pure-Python inner loops: it wakes only nodes that have mail or
pending work (event-driven scheduling — semantically identical to the
synchronous model since silent nodes cannot change state), keeps per-round
allocations to plain dicts/lists, and meters messages with integer
arithmetic only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.node import NodeProgram
from repro.congest.tracing import Tracer
from repro.errors import ProtocolError, SimulationError
from repro.graphs.graph import Graph
from repro.rng import SeedLike, ensure_rng, spawn
from repro.words import DEFAULT_BANDWIDTH_WORDS, payload_words


@dataclass
class SimulationResult:
    """What a completed run hands back to the caller."""

    programs: list[NodeProgram]
    metrics: RunMetrics

    def results(self) -> list[Any]:
        """Per-node local outputs (``NodeProgram.result()`` for each node)."""
        return [p.result() for p in self.programs]


class Simulator:
    """Synchronous CONGEST executor.

    Parameters
    ----------
    graph:
        The network.  Must be connected for the protocols in this library
        (call ``graph.validate()`` upstream; the simulator itself does not
        require it).
    program_factory:
        ``node_id -> NodeProgram`` constructor; called once per node.
    seed:
        Seed for the per-node private random streams.
    bandwidth_words:
        Per-message word budget *B* (paper Section 2.2, default
        ``repro.words.DEFAULT_BANDWIDTH_WORDS``).
    tracer:
        Optional :class:`~repro.congest.tracing.Tracer` capturing every
        delivery (for debugging small runs; large runs should leave it off).
    """

    def __init__(self, graph: Graph,
                 program_factory: Callable[[int], NodeProgram],
                 seed: SeedLike = None,
                 bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[RunMetrics] = None):
        self.graph = graph
        self.bandwidth_words = int(bandwidth_words)
        if self.bandwidth_words < 1:
            raise ProtocolError("bandwidth_words must be >= 1")
        rng = ensure_rng(seed)
        node_rngs = spawn(rng, graph.n)
        # metrics may be supplied up front so program factories can hold a
        # reference (e.g. a designated node marking phase boundaries)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.programs: list[NodeProgram] = [program_factory(u) for u in graph.nodes()]
        self.contexts: list[NodeContext] = [
            NodeContext(u, graph.n, graph.neighbors(u), node_rngs[u])
            for u in graph.nodes()
        ]
        self.tracer = tracer
        self._clocked = [u for u in graph.nodes() if self.programs[u].needs_clock]

    # ------------------------------------------------------------------
    def _collect(self, u: int) -> list[tuple[int, int, Any]]:
        """Drain node ``u``'s outbox, enforcing the word budget."""
        out = self.contexts[u]._close()
        if not out:
            return []
        sends = []
        for dst, payload in out.items():
            nwords = payload_words(payload)
            if nwords > self.bandwidth_words:
                raise ProtocolError(
                    f"node {u}: message to {dst} is {nwords} words, exceeds "
                    f"bandwidth budget of {self.bandwidth_words} words/edge/round")
            sends.append((u, dst, payload))
        return sends

    def _quiescent(self, inflight: Sequence[tuple[int, int, Any]]) -> bool:
        return (not inflight and not self._external_pending()
                and not any(p.has_pending() for p in self.programs))

    def _external_pending(self) -> bool:
        """Hook for subclasses holding messages outside the in-flight list
        (e.g. the bounded-delay simulator's link queues)."""
        return False

    def _deliveries(self, round_no: int,
                    inflight: list[tuple[int, int, Any]]) -> list[tuple[int, int, Any]]:
        """Hook: the messages to deliver in ``round_no`` (default: exactly
        the previous round's sends — synchronous semantics)."""
        return inflight

    # ------------------------------------------------------------------
    def run(self, max_rounds: int = 5_000_000) -> SimulationResult:
        """Execute the protocol to quiescence (or ``max_rounds``).

        Whenever the network goes silent, every unfinished program's
        ``on_quiescent`` hook fires (repeatedly, until all programs report
        ``finished()``); if the network is still silent afterwards the run
        ends.  This implements the *oracle* synchronizer — protocols
        carrying their own termination detection (paper Section 3.3)
        simply never rely on the hook and terminate by going silent.
        """
        programs, contexts = self.programs, self.contexts
        metrics = self.metrics
        tracer = self.tracer

        # round 0: on_start
        inflight: list[tuple[int, int, Any]] = []
        for u in self.graph.nodes():
            ctx = contexts[u]
            ctx._open(0)
            programs[u].on_start(ctx)
            inflight.extend(self._collect(u))

        round_no = 0
        idle_spins = 0
        while True:
            if self._quiescent(inflight):
                if all(p.finished() for p in programs):
                    break
                # oracle synchronization point; programs may advance
                # through several traffic-free stages back to back
                idle_spins += 1
                if idle_spins > 10 * self.graph.n + 1000:
                    raise SimulationError(
                        "programs keep requesting quiescence callbacks "
                        "without ever finishing or sending — livelock")
                new_sends: list[tuple[int, int, Any]] = []
                for u in self.graph.nodes():
                    ctx = contexts[u]
                    ctx._open(round_no)
                    programs[u].on_quiescent(ctx)
                    new_sends.extend(self._collect(u))
                inflight = new_sends
                continue
            idle_spins = 0

            if round_no >= max_rounds:
                raise SimulationError(
                    f"protocol did not quiesce within {max_rounds} rounds "
                    f"({len(inflight)} messages still in flight)")
            round_no += 1

            # deliver round_no's mail
            inflight = self._deliveries(round_no, inflight)
            inboxes: dict[int, dict[int, Any]] = {}
            words = 0
            for src, dst, payload in inflight:
                inboxes.setdefault(dst, {})[src] = payload
                words += payload_words(payload)
                if tracer is not None:
                    tracer.record(round_no, src, dst, payload)
            metrics.record_round(len(inflight), words)

            # wake nodes with mail, pending work, or a clock requirement
            wake = set(inboxes)
            wake.update(u for u in self.graph.nodes()
                        if programs[u].has_pending())
            wake.update(self._clocked)

            inflight = []
            empty: dict[int, Any] = {}
            for u in sorted(wake):
                ctx = contexts[u]
                ctx._open(round_no)
                programs[u].on_round(ctx, inboxes.get(u, empty))
                inflight.extend(self._collect(u))

        return SimulationResult(programs=programs, metrics=metrics)


def run_protocol(graph: Graph, program_factory: Callable[[int], NodeProgram],
                 seed: SeedLike = None, **kwargs) -> SimulationResult:
    """One-shot convenience wrapper: build a :class:`Simulator` and run it."""
    sim = Simulator(graph, program_factory, seed=seed,
                    bandwidth_words=kwargs.pop("bandwidth_words", DEFAULT_BANDWIDTH_WORDS),
                    tracer=kwargs.pop("tracer", None),
                    metrics=kwargs.pop("metrics", None))
    return sim.run(**kwargs)
