"""Round / message / word accounting.

:class:`RunMetrics` is the object every experiment reads its measurements
from.  Protocols can segment a run into named *phases* (the TZ construction
reports one phase per level ``i``, plus setup phases like leader election),
and metrics of sequential runs can be summed with ``+`` for composed
constructions (e.g. gracefully degrading sketches run O(log n) CDG builds
back to back, Theorem 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PhaseMetrics:
    """Accounting for one named protocol phase."""

    name: str
    rounds: int = 0
    messages: int = 0
    words: int = 0

    def as_row(self) -> dict:
        return {
            "phase": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
        }


@dataclass
class RunMetrics:
    """Aggregated accounting for a complete protocol execution."""

    rounds: int = 0
    messages: int = 0
    words: int = 0
    max_inflight: int = 0
    phases: list[PhaseMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------
    def begin_phase(self, name: str) -> None:
        """Open a new phase; subsequent rounds/messages accrue to it."""
        self.phases.append(PhaseMetrics(name=name))

    def record_round(self, messages: int, words: int) -> None:
        """Charge one synchronous round carrying ``messages`` messages."""
        self.rounds += 1
        self.messages += messages
        self.words += words
        self.max_inflight = max(self.max_inflight, messages)
        if self.phases:
            ph = self.phases[-1]
            ph.rounds += 1
            ph.messages += messages
            ph.words += words

    # ------------------------------------------------------------------
    def phase(self, name: str) -> PhaseMetrics:
        """Look up a phase by name (raises ``KeyError`` if absent)."""
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(name)

    def phase_names(self) -> list[str]:
        return [ph.name for ph in self.phases]

    def __add__(self, other: "RunMetrics") -> "RunMetrics":
        if not isinstance(other, RunMetrics):
            return NotImplemented
        out = RunMetrics(
            rounds=self.rounds + other.rounds,
            messages=self.messages + other.messages,
            words=self.words + other.words,
            max_inflight=max(self.max_inflight, other.max_inflight),
        )
        out.phases = list(self.phases) + list(other.phases)
        return out

    def as_row(self) -> dict:
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
        }

    def __repr__(self) -> str:
        return (
            f"RunMetrics(rounds={self.rounds}, messages={self.messages}, "
            f"words={self.words}, phases={len(self.phases)})"
        )
