"""Synchronous CONGEST-model simulator (system S2).

The paper's model (Section 2.2): a synchronous network where in each round
every node may send one message of ``O(log n)`` bits (a constant number of
*words*) through each incident edge; messages sent in round ``r`` arrive at
the start of round ``r + 1``.  The simulator enforces exactly these rules
and meters the three quantities the paper's theorems bound: **rounds**,
**messages**, and **message words**.

Protocols are written as :class:`~repro.congest.node.NodeProgram` subclasses
— one instance per node, communicating *only* through the context object's
``send``/``broadcast`` — and executed by
:class:`~repro.congest.network.Simulator`.
"""

from repro.congest.message import Message
from repro.congest.node import NodeProgram
from repro.congest.context import NodeContext
from repro.congest.network import Simulator, SimulationResult
from repro.congest.metrics import RunMetrics
from repro.congest.faults import FaultModel, FaultySimulator
from repro.congest.delays import DelayedSimulator

__all__ = [
    "DelayedSimulator",
    "Message",
    "NodeProgram",
    "NodeContext",
    "Simulator",
    "SimulationResult",
    "RunMetrics",
    "FaultModel",
    "FaultySimulator",
]
