"""Word-size accounting conventions.

The CONGEST model (paper Section 2.2) allows each edge to carry ``O(log n)``
bits per round.  The paper calls a block of ``O(log n)`` bits — enough for
one node ID or one network distance — a *word*.  Every quantitative claim in
the paper about sketch sizes and message sizes is stated in words, so the
whole library meters sizes in words using the conventions below.

Conventions
-----------
* A node ID costs 1 word.
* A distance (edge weights are polynomial in ``n``, Section 2.2) costs
  1 word.
* A small enumeration tag (message kind, phase index, level index) costs
  1 word.  The paper absorbs these into the O(log n) constant; we count them
  explicitly so reported numbers are reproducible bit-for-bit.
* ``None`` / booleans cost 1 word (a flag).
* A tuple/list costs the sum of its elements.

These rules are implemented by :func:`payload_words`, used by the simulator
to enforce per-edge bandwidth, and :func:`sketch_words` helpers in the
sketch classes to report label sizes.
"""

from __future__ import annotations

import math
from typing import Any

#: Default number of words a single edge may carry per round.  One
#: ``<source-id, distance>`` Bellman-Ford update is 3 words (kind tag, id,
#: distance); ECHO framing adds a copy, so 6 words covers every message type
#: in the library.  The paper treats all of these as "O(log n) bits".
DEFAULT_BANDWIDTH_WORDS = 6


def payload_words(payload: Any) -> int:
    """Return the size, in words, of a message payload.

    Payloads are built from ints, floats, bools, ``None``, strings (used
    only for message-kind tags) and nested tuples/lists of those.
    """
    if payload is None or isinstance(payload, (bool, int, float, str)):
        return 1
    if isinstance(payload, (tuple, list)):
        return sum(payload_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(payload_words(k) + payload_words(v) for k, v in payload.items())
    raise TypeError(f"unsupported payload component: {type(payload)!r}")


def id_words() -> int:
    """Words needed to transmit a node ID (always 1 by convention)."""
    return 1


def distance_words() -> int:
    """Words needed to transmit a distance (always 1 by convention)."""
    return 1


def entry_words() -> int:
    """Words for one sketch entry: a ``(node-id, distance)`` pair."""
    return id_words() + distance_words()


def log2n(n: int) -> float:
    """``log2(n)`` guarded for tiny inputs; used by theory-curve helpers."""
    return math.log2(max(n, 2))
