"""Consolidate per-experiment benchmark telemetry into one summary file.

Every benchmark run leaves a ``BENCH_<name>.json`` envelope in
``benchmarks/results/`` (written by the ``experiment_report`` fixture:
git sha, timestamp, python/platform, and the experiment's table rows).
This module folds all of them into a single ``BENCH_summary.json`` so a
CI artifact — or a human diffing two runs — needs exactly one file:

    PYTHONPATH=src python -m repro.analysis.summarize benchmarks/results

The summary carries one entry per experiment (name, sha, timestamp, row
count, and the rows themselves) plus run-level metadata lifted from the
envelopes.  Envelopes that fail to parse are reported and skipped — a
truncated file from a crashed run must not hide every other result.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: the consolidated output filename (deliberately not ``BENCH_E*`` so the
#: summarizer never swallows its own previous output)
SUMMARY_NAME = "BENCH_summary.json"


def summarize_results(results_dir: str | pathlib.Path) -> dict:
    """Fold every ``BENCH_E*.json`` envelope under ``results_dir`` into
    one summary dict (also returned, for tests and programmatic use).

    :param results_dir: directory the benchmark harness writes into.
    :returns: the summary payload that is written to
        :data:`SUMMARY_NAME` in the same directory.
    """
    root = pathlib.Path(results_dir)
    experiments = []
    skipped = []
    for path in sorted(root.glob("BENCH_E*.json")):
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            skipped.append({"file": path.name, "error": str(exc)})
            continue
        data = envelope.get("data") or {}
        rows = data.get("rows") if isinstance(data, dict) else None
        experiments.append({
            "name": envelope.get("name", path.stem),
            "git_sha": envelope.get("git_sha", "unknown"),
            "generated_at": envelope.get("generated_at"),
            "rows": len(rows) if isinstance(rows, list) else None,
            "data": data,
        })
    summary = {
        "experiments": experiments,
        "skipped": skipped,
        # run-level metadata: every envelope of one run shares these
        "git_sha": (experiments[0]["git_sha"] if experiments else "unknown"),
        "python": next((e["data"].get("python") for e in experiments
                        if isinstance(e["data"], dict)
                        and "python" in e["data"]), None),
        "count": len(experiments),
    }
    out = root / SUMMARY_NAME
    out.write_text(json.dumps(summary, indent=2, sort_keys=True,
                              default=float) + "\n", encoding="utf-8")
    return summary


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.analysis.summarize <results-dir>",
              file=sys.stderr)
        return 2
    root = pathlib.Path(args[0])
    if not root.is_dir():
        print(f"summarize: no such directory: {root}", file=sys.stderr)
        return 2
    summary = summarize_results(root)
    print(f"wrote {root / SUMMARY_NAME}: {summary['count']} experiment(s)"
          + (f", {len(summary['skipped'])} skipped" if summary["skipped"]
             else ""))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
