"""Theory curves from the paper's theorems, and measured/curve ratios.

The reproduction cannot (and should not) match absolute constants — the
theorems are O(·) statements — so the experiments check *shape*: for each
claim we compute ``measured / curve`` across a parameter sweep and verify
the ratio stays bounded (no upward drift) as ``n`` grows.  A reproduction
"passes" a complexity claim when the ratio sequence is flat-or-decreasing
within noise; :func:`summarize_ratios` quantifies exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _ln(x: float) -> float:
    return math.log(max(x, 2.0))


# ----------------------------------------------------------------------
# Theorem 1.1 / 3.8 — distributed Thorup-Zwick
# ----------------------------------------------------------------------
def tz_round_bound(n: int, k: int, S: int) -> float:
    """``k n^{1/k} S log n`` (Theorem 1.1 round complexity, constants
    dropped)."""
    return k * n ** (1.0 / k) * S * _ln(n)


def tz_message_bound(n: int, k: int, S: int, m: int) -> float:
    """``k n^{1/k} S |E| log n`` (Theorem 1.1 message complexity)."""
    return tz_round_bound(n, k, S) * m


def tz_size_bound(n: int, k: int, whp: bool = True) -> float:
    """Sketch size: ``k n^{1/k} log n`` words w.h.p. (Theorem 1.1), or the
    ``k n^{1/k}`` expectation (Lemma 3.1)."""
    base = k * n ** (1.0 / k)
    return base * _ln(n) if whp else base


# ----------------------------------------------------------------------
# Theorem 4.3 — stretch-3 slack sketches
# ----------------------------------------------------------------------
def stretch3_round_bound(n: int, eps: float, S: int) -> float:
    """``S (1/ε) log n`` (Theorem 4.3)."""
    return S / eps * _ln(n)


def stretch3_size_bound(n: int, eps: float) -> float:
    """``(1/ε) log n`` words (Theorem 4.3)."""
    return _ln(n) / eps


# ----------------------------------------------------------------------
# Theorem 4.6 — (ε,k)-CDG sketches
# ----------------------------------------------------------------------
def cdg_round_bound(n: int, eps: float, k: int, S: int) -> float:
    """``k S ((1/ε) log n)^{1/k} log n`` (Theorem 4.6)."""
    return k * S * (_ln(n) / eps) ** (1.0 / k) * _ln(n)


def cdg_size_bound(n: int, eps: float, k: int) -> float:
    """``k ((1/ε) log n)^{1/k} log n`` words (Theorem 4.6)."""
    return k * (_ln(n) / eps) ** (1.0 / k) * _ln(n)


# ----------------------------------------------------------------------
# Theorem 4.8 / Corollary 4.9 — gracefully degrading sketches
# ----------------------------------------------------------------------
def graceful_round_bound(n: int, S: int) -> float:
    """``S log^4 n`` (Theorem 4.8)."""
    return S * _ln(n) ** 4


def graceful_size_bound(n: int) -> float:
    """``log^4 n`` words (Theorem 4.8)."""
    return _ln(n) ** 4


# ----------------------------------------------------------------------
# ratio analysis
# ----------------------------------------------------------------------
def bound_ratio(measured: float, bound: float) -> float:
    """``measured / bound`` — the implied constant for one data point."""
    return measured / bound if bound > 0 else math.inf


@dataclass(frozen=True)
class RatioSummary:
    """How a sequence of implied constants behaves along a sweep."""

    ratios: tuple[float, ...]
    max_ratio: float
    last_over_first: float  # <= ~1 means no upward drift: bound shape holds

    def shape_holds(self, drift_tolerance: float = 1.5) -> bool:
        """True when the implied constant does not grow along the sweep
        (up to ``drift_tolerance`` of noise)."""
        return self.last_over_first <= drift_tolerance


def summarize_ratios(measured: Sequence[float],
                     bounds: Sequence[float]) -> RatioSummary:
    """Summarize measured/bound across a sweep ordered by problem size."""
    ratios = tuple(bound_ratio(m, b) for m, b in zip(measured, bounds))
    arr = np.asarray(ratios)
    return RatioSummary(
        ratios=ratios,
        max_ratio=float(arr.max()),
        last_over_first=float(arr[-1] / arr[0]) if arr[0] > 0 else math.inf,
    )
