"""Analysis toolkit: theory curves, complexity-ratio checks, table rendering.

Used by the benchmark harness to turn raw measurements into the per-
experiment tables recorded in ``EXPERIMENTS.md``.
"""

from repro.analysis.complexity import (
    tz_round_bound,
    tz_message_bound,
    tz_size_bound,
    cdg_round_bound,
    cdg_size_bound,
    graceful_round_bound,
    graceful_size_bound,
    stretch3_round_bound,
    stretch3_size_bound,
    bound_ratio,
    RatioSummary,
    summarize_ratios,
)
from repro.analysis.tables import render_table, format_row

__all__ = [
    "tz_round_bound",
    "tz_message_bound",
    "tz_size_bound",
    "cdg_round_bound",
    "cdg_size_bound",
    "graceful_round_bound",
    "graceful_size_bound",
    "stretch3_round_bound",
    "stretch3_size_bound",
    "bound_ratio",
    "RatioSummary",
    "summarize_ratios",
    "render_table",
    "format_row",
]
