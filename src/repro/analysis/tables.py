"""Fixed-width table rendering for the benchmark harness.

The experiments print their tables to stdout (captured in
``bench_output.txt`` and summarized in ``EXPERIMENTS.md``); this module
keeps the formatting in one place so every experiment reads the same way.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


def format_row(row: dict) -> str:
    return "  ".join(f"{k}={format_cell(v)}" for k, v in row.items())


def render_table(rows: Sequence[dict], title: Optional[str] = None,
                 columns: Optional[list[str]] = None) -> str:
    """Render a list of dict rows as an aligned fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        # first-seen column order, deduped across rows
        columns = list(dict.fromkeys(k for r in rows for k in r))
    cells = [[format_cell(r.get(c, "")) for c in columns] for r in rows]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(columns)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend("  ".join(cell.ljust(widths[i])
                           for i, cell in enumerate(row))
                 for row in cells)
    return "\n".join(lines)
