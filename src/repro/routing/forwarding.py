"""Packet forwarding over a :class:`~repro.routing.tables.RoutingScheme`.

Routing decision at the source ``u`` for target address ``addr(v)``:
pick the smallest level ``i`` with ``p_i(v) ∈ B(u)`` (level ``k-1``
always qualifies: ``A_{k-1} ⊆ B(x)`` for every ``x``).  The packet header
then carries ``(v, w = p_i(v), v's interval in T_w)`` — O(1) words — and
forwarding proceeds in two phases:

* **ascend**: hop toward ``w`` using each node's parent pointer in
  ``T_w`` (valid hop-by-hop: the intermediate nodes lie on the shortest
  path to ``w``, hence inside ``C(w)``);
* **descend**: from ``w``, follow the child whose DFS interval contains
  ``v``'s label (valid: ``v ∈ C(p_i(v))`` always, see
  :func:`repro.routing.tables.pivot_in_bunch_level`).

At every hop, if the current node happens to have ``v`` itself in its
bunch it shortcuts directly (this only shortens routes).

Stretch bound ``4k - 3`` (proved, not just measured): let ``i`` be the
chosen level and ``D_j = d(v, p_j(v))``.  ``D_0 = 0``, and for ``j < i``
the pivot ``p_j(v)`` is not in ``B(u)``, which forces
``d(u, A_{j+1}) <= d(u, p_j(v)) <= d(u,v) + D_j`` and hence
``D_{j+1} <= d(v,u) + d(u, A_{j+1}) <= 2 d(u,v) + D_j``; so
``D_i <= 2 i d(u,v)``.  The delivered route has weight exactly
``d(u, w) + d(w, v) <= (d(u,v) + D_i) + D_i <= (4i + 1) d(u,v)``,
and ``i <= k - 1`` gives ``4k - 3``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.graphs.graph import Graph
from repro.routing.tables import RoutingScheme

_MAX_HOPS_FACTOR = 4  # safety net: a route longer than 4n hops is a bug


@dataclass(frozen=True)
class RouteResult:
    """One delivered packet."""

    path: tuple[int, ...]
    weight: float
    via_pivot: int         # the w the header targeted (v itself if shortcut)
    level: int             # chosen pivot level (0 if direct bunch hit)

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def _choose_header(scheme: RoutingScheme, u: int, v: int) -> tuple[int, int]:
    """Smallest level whose target-pivot the source can route toward."""
    table = scheme.tables[u]
    for i, (p, _iv) in enumerate(scheme.addresses[v].pivots):
        if table.knows(p):
            return p, i
    raise QueryError(
        f"no routable pivot from {u} to {v} — A_(k-1) membership broken")


def route_packet(scheme: RoutingScheme, graph: Graph, u: int, v: int) -> RouteResult:
    """Forward one packet from ``u`` to ``v``; returns the realized route."""
    if u == v:
        return RouteResult(path=(u,), weight=0.0, via_pivot=u, level=0)
    w, level = _choose_header(scheme, u, v)
    target_iv = dict(scheme.addresses[v].pivots)[w]

    path = [u]
    weight = 0.0
    cur = u
    descending = False
    max_hops = _MAX_HOPS_FACTOR * graph.n
    while cur != v:
        if len(path) > max_hops:
            raise QueryError(f"routing loop detected {u}->{v} (bug)")
        table = scheme.tables[cur]
        if table.knows(v):
            # shortcut: v is in this node's bunch — ascend straight to it
            nxt = table.next_hop_toward(v)
            # next_hop_toward(v) walks toward the CENTER v of T_v... but
            # v's own cluster tree is rooted at v, so the parent pointer
            # leads exactly to v.  (v in B(cur) <=> cur in C(v).)
        elif not descending and cur != w:
            nxt = table.next_hop_toward(w)
        else:
            descending = True
            nxt = table.child_for(w, target_iv)
        if nxt is None:
            raise QueryError(f"dead end at {cur} routing {u}->{v} (bug)")
        weight += graph.weight(cur, nxt)
        path.append(nxt)
        cur = nxt
    return RouteResult(path=tuple(path), weight=weight, via_pivot=w,
                       level=level)


def evaluate_routing(scheme: RoutingScheme, graph: Graph, dist_matrix,
                     pairs=None) -> dict:
    """Route every pair (or the given pairs) and summarize stretch.

    Returns a dict with max/mean stretch, the proved bound, and the
    realized maximum hop count — used by tests and the E12 experiment.
    """
    import numpy as np

    if pairs is None:
        iu, ju = np.triu_indices(graph.n, k=1)
        pairs = list(zip(iu.tolist(), ju.tolist()))
    ratios = []
    worst = 0.0
    max_hops = 0
    for u, v in pairs:
        res = route_packet(scheme, graph, u, v)
        d = float(dist_matrix[u, v])
        ratio = res.weight / d if d > 0 else 1.0
        ratios.append(ratio)
        worst = max(worst, ratio)
        max_hops = max(max_hops, res.hops)
    arr = np.asarray(ratios)
    return {
        "pairs": arr.size,
        "max_stretch": float(arr.max()),
        "mean_stretch": float(arr.mean()),
        "bound": scheme.stretch_bound(),
        "max_hops": max_hops,
    }
