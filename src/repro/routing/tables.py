"""Routing tables and addresses for TZ compact routing.

Construction (from the same structures as the sketches):

* For every cluster center ``w`` (every vertex — A_0 = V), the truncated
  Dijkstra that grows ``C(w)`` also yields a **shortest-path tree** of the
  cluster rooted at ``w``.  Tree edges are graph edges.
* Each member ``x ∈ C(w)`` stores, in its table: its parent edge in that
  tree (= the next hop *toward* ``w``, used for "route to a bunch member")
  and the DFS **interval labels** of its tree children (used for routing
  *away from* ``w`` down to a cluster member whose interval rides in the
  packet header).
* The **address** of ``v`` lists its pivots ``p_i(v)`` with ``v``'s
  interval in each pivot's cluster tree.  Every pivot's cluster contains
  ``v`` (``p_i(v) ∈ B(v)`` at the pivot's exact level — the tie-breaking
  argument in the docstring of :func:`pivot_in_bunch_level`), so the
  intervals always exist.

Hop-by-hop validity of "route toward a bunch member ``w``" rests on
cluster connectivity: if ``w ∈ B(x)`` then every vertex on the shortest
path from ``x`` to ``w`` is also in ``C(w)`` and therefore also has a
parent pointer toward ``w``.

Table size is ``O(Σ_x |B(x)|)`` entries overall — the same order as the
sketches — and addresses are ``O(k)`` words.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Optional

from repro.distkey import DistKey
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.rng import SeedLike
from repro.tz.centralized import compute_pivot_keys
from repro.tz.hierarchy import Hierarchy, sample_hierarchy

#: DFS interval: v's subtree in a cluster tree is exactly the label range
#: [enter, exit).  Two words on the wire.
Interval = tuple[int, int]


@dataclass(frozen=True)
class TreeEntry:
    """One node's view of one cluster tree it belongs to."""

    root: int
    parent: Optional[int]          # graph neighbor toward the root (None at root)
    dist_to_root: float
    interval: Interval
    children: tuple[tuple[int, Interval], ...]  # (child neighbor, its interval)


@dataclass
class NodeRoutingTable:
    """Everything node ``x`` stores."""

    node: int
    #: cluster center w -> this node's entry in T_w, for every w in B(x)
    entries: dict[int, TreeEntry]

    def next_hop_toward(self, w: int) -> Optional[int]:
        """Next hop on the shortest path toward bunch member ``w``."""
        entry = self.entries.get(w)
        return None if entry is None else entry.parent

    def knows(self, w: int) -> bool:
        return w in self.entries

    def child_for(self, root: int, target_iv: Interval) -> Optional[int]:
        """In T_root, the child whose subtree interval contains the target."""
        entry = self.entries.get(root)
        if entry is None:
            return None
        lo = target_iv[0]
        for child, (a, b) in entry.children:
            if a <= lo < b:
                return child
        return None

    def size_words(self) -> int:
        """Table size: per entry, root id + parent + dist + interval(2)
        + 3 words per child interval."""
        total = 0
        for e in self.entries.values():
            total += 5 + 3 * len(e.children)
        return total


@dataclass(frozen=True)
class Address:
    """The routable address of ``v``: pivots with interval labels.

    ``O(k)`` words: per level, pivot id + 2 interval words.
    """

    node: int
    k: int
    pivots: tuple[tuple[int, Interval], ...]  # (p_i(v), interval of v in T_{p_i(v)})

    def size_words(self) -> int:
        return 1 + 3 * len(self.pivots)


@dataclass
class RoutingScheme:
    """The complete routing state of a network."""

    k: int
    tables: list[NodeRoutingTable]
    addresses: list[Address]
    hierarchy: Hierarchy

    def stretch_bound(self) -> int:
        """The bound proved for :func:`repro.routing.forwarding.route_packet`."""
        return 4 * self.k - 3

    def max_table_words(self) -> int:
        return max(t.size_words() for t in self.tables)

    def max_address_words(self) -> int:
        return max(a.size_words() for a in self.addresses)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def cluster_tree(graph: Graph, w: int, next_pivot_keys) -> tuple[dict[int, float], dict[int, Optional[int]]]:
    """Shortest-path tree of ``C(w)``: ``(dist, parent)`` maps.

    Same truncation rule as :func:`repro.tz.centralized.cluster_of`, but
    keeping the Dijkstra parents — every tree edge is a graph edge on a
    shortest path toward ``w``.
    """
    dist: dict[int, float] = {w: 0.0}
    parent: dict[int, Optional[int]] = {w: None}
    settled: dict[int, float] = {}
    pq: list[tuple[float, int]] = [(0.0, w)]
    while pq:
        d, u = heapq.heappop(pq)
        if d > dist.get(u, math.inf):
            continue
        settled[u] = d
        for v, wt in graph.neighbors(u).items():
            cand = d + wt
            if cand >= dist.get(v, math.inf):
                continue
            if not DistKey(cand, w) < next_pivot_keys[v]:
                continue
            dist[v] = cand
            parent[v] = u
            heapq.heappush(pq, (cand, v))
    return settled, {u: parent[u] for u in settled}


def _dfs_intervals(members: dict[int, float], parent: dict[int, Optional[int]],
                   root: int) -> tuple[dict[int, Interval], dict[int, list[int]]]:
    """Iterative DFS interval labeling of one cluster tree."""
    children: dict[int, list[int]] = {u: [] for u in members}
    for u, p in parent.items():
        if p is not None:
            children[p].append(u)
    for lst in children.values():
        lst.sort()
    intervals: dict[int, Interval] = {}
    counter = 0
    # post-order-free labeling: enter at first visit, exit after subtree
    stack: list[tuple[int, int]] = [(root, 0)]  # (node, child index)
    enter: dict[int, int] = {}
    while stack:
        u, idx = stack.pop()
        if idx == 0:
            enter[u] = counter
            counter += 1
        kids = children[u]
        if idx < len(kids):
            stack.append((u, idx + 1))
            stack.append((kids[idx], 0))
        else:
            intervals[u] = (enter[u], counter)
    return intervals, children


def pivot_in_bunch_level(pivot_keys, hierarchy: Hierarchy, u: int, i: int) -> int:
    """The exact level at which ``p_i(u)`` sits in ``B(u)``.

    With :class:`~repro.distkey.DistKey` tie-breaking, every pivot of
    ``u`` belongs to ``u``'s bunch at the pivot's *exact* hierarchy level
    ``j = level(p_i(u)) >= i``: if it did not, the level-``j`` pivot key
    would be strictly dominated by the level-``j+1`` key, contradicting
    ``p_j(u) = p_i(u)`` being the level-``j`` argmin (pivots with equal
    distance resolve to the smaller ID, which A_{j+1} ⊆ A_j cannot beat).
    Consequently ``u ∈ C(p_i(u))`` always — the fact addresses rely on.
    """
    p = pivot_keys[i][u].node
    return int(hierarchy.level[p])


def build_routing_scheme(graph: Graph, k: Optional[int] = None,
                         hierarchy: Optional[Hierarchy] = None,
                         seed: SeedLike = None) -> RoutingScheme:
    """Build tables and addresses for the whole network (centralized).

    A distributed construction would reuse the Algorithm 2 runs: the
    ``via`` parents of :class:`~repro.algorithms.round_robin
    .MultiSourceEngine` are exactly the cluster-tree parents; interval
    labels additionally need one convergecast + one broadcast per cluster
    tree (O(S) rounds each, within the Theorem 3.8 budget).  The
    centralized build keeps this extension focused on the routing logic.
    """
    if hierarchy is None:
        if k is None:
            raise ConfigError("provide k or hierarchy")
        hierarchy = sample_hierarchy(graph.n, k, seed=seed)
    kk = hierarchy.k
    pivot_keys = compute_pivot_keys(graph, hierarchy)

    per_node: list[dict[int, TreeEntry]] = [dict() for _ in graph.nodes()]
    intervals_by_root: dict[int, dict[int, Interval]] = {}

    for i in range(kk):
        nxt = pivot_keys[i + 1]
        for w in hierarchy.exact_level(i):
            w = int(w)
            dist, parent = cluster_tree(graph, w, nxt)
            intervals, children = _dfs_intervals(dist, parent, w)
            intervals_by_root[w] = intervals
            for x in dist:
                per_node[x][w] = TreeEntry(
                    root=w,
                    parent=parent[x],
                    dist_to_root=dist[x],
                    interval=intervals[x],
                    children=tuple((c, intervals[c])
                                   for c in children[x]),
                )

    tables = [NodeRoutingTable(node=u, entries=per_node[u])
              for u in graph.nodes()]
    addresses = []
    for v in graph.nodes():
        pivots = []
        for i in range(kk):
            p = pivot_keys[i][v].node
            pivots.append((p, intervals_by_root[p][v]))
        addresses.append(Address(node=v, k=kk, pivots=tuple(pivots)))
    return RoutingScheme(k=kk, tables=tables, addresses=addresses,
                         hierarchy=hierarchy)
