"""Compact routing from Thorup–Zwick sketches (application extension).

The paper motivates distance sketches with networking applications —
"search, topology discovery, overlay creation, and basic node to node
communication" (Section 1) — and the canonical *communication* application
of the Thorup–Zwick machinery is the compact routing scheme of [TZ05,
Section 4 / TZ SPAA'01]: every node keeps a routing table of roughly
sketch size, every node has a short *address*, and a packet carrying only
a target address is forwarded along a path of length at most ``O(k)``
times the true distance.

This subpackage builds that scheme from the same pivots/clusters the
sketch construction produces:

* :mod:`repro.routing.tables` — routing tables (bunch next-hops + DFS
  interval labels of every cluster tree) and addresses,
* :mod:`repro.routing.forwarding` — hop-by-hop packet forwarding and
  route evaluation.

Guarantee implemented here (proved in :mod:`repro.routing.forwarding`):
routes are loop-free, follow real edges, and have weighted stretch at most
``4k - 3``.
"""

from repro.routing.tables import (
    Address,
    NodeRoutingTable,
    RoutingScheme,
    build_routing_scheme,
)
from repro.routing.forwarding import RouteResult, route_packet, evaluate_routing

__all__ = [
    "Address",
    "NodeRoutingTable",
    "RoutingScheme",
    "build_routing_scheme",
    "RouteResult",
    "route_packet",
    "evaluate_routing",
]
