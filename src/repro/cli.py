"""Command-line interface: generate → build → query → serve → evaluate.

A downstream user can drive the whole pipeline without writing Python::

    python -m repro gen --family er --n 128 --weights uniform --seed 1 -o net.edges
    python -m repro stats net.edges
    python -m repro build net.edges --scheme tz --k 3 --mode distributed \
        --seed 2 -o sketches.jsonl
    python -m repro build net.edges --scheme tz --k 3 --jobs 4 -o sketches.jsonl
    python -m repro query net.edges sketches.jsonl --pairs 0:100 5:17
    python -m repro eval net.edges sketches.jsonl --eps 0.25
    python -m repro serve-bench sketches.jsonl --queries 10000 --batch 1000 \
        --shards 4 --jobs 4 --memory shared
    python -m repro build net.edges --scheme tz --k 3 --format binary \
        --shards 4 -o index.rpix
    python -m repro serve-bench index.rpix --memory mmap --queries 10000
    python -m repro serve index.rpix --addr 0.0.0.0:7111 --jobs 4 --memory mmap
    python -m repro query --connect tcp://serving-box:7111 --pairs 0:100 5:17
    python -m repro serve-bench --connect tcp://serving-box:7111 --queries 10000
    python -m repro serve net.edges --updateable --scheme tz --k 3 --seed 2 \
        --addr 127.0.0.1:7111
    python -m repro build net.edges --scheme tz --k 3 --seed 2 \
        --apply-updates changes.jsonl -o sketches.jsonl
    python -m repro update-bench net.edges --scheme tz --k 2 --batches 1 4 16
    python -m repro build net.edges --scheme tz --k 3 --seed 2 \
        --format binary --shards 4 --shard-range 0:2 -o host0.rpix
    python -m repro serve host0.rpix --port 0 --shard-range 0:2
    python -m repro query --connect cluster://hostA:7111,hostB:7112 \
        --pairs 0:100 5:17
    python -m repro cluster-bench index.rpix --hosts 1 2 4 --queries 2000
    python -m repro schemes --markdown

Sketches travel as the JSON-lines format of
:mod:`repro.oracle.serialization`; graphs as the edge-list format of
:mod:`repro.graphs.io`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError


# ----------------------------------------------------------------------
# subcommand implementations
# ----------------------------------------------------------------------
def _cmd_gen(args) -> int:
    from repro.graphs import (assign_exponential_weights,
                              assign_uniform_weights, barabasi_albert,
                              erdos_renyi, grid2d, random_geometric, ring,
                              star_path, write_edgelist)

    family = args.family
    if family == "er":
        g = erdos_renyi(args.n, seed=args.seed)
    elif family == "ba":
        g = barabasi_albert(args.n, seed=args.seed)
    elif family == "geo":
        g = random_geometric(args.n, seed=args.seed)
    elif family == "grid":
        side = max(1, int(round(args.n ** 0.5)))
        g = grid2d(side, max(1, args.n // side))
    elif family == "ring":
        g = ring(args.n)
    elif family == "star_path":
        g = star_path(args.n)
    else:  # pragma: no cover - argparse enforces choices
        raise ReproError(f"unknown family {family}")
    if args.weights == "uniform":
        assign_uniform_weights(g, seed=None if args.seed is None
                               else args.seed + 1)
    elif args.weights == "exponential":
        assign_exponential_weights(g, seed=None if args.seed is None
                                   else args.seed + 1)
    write_edgelist(g, args.output)
    print(f"wrote {g.n} nodes / {g.m} edges to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    from repro.graphs import graph_stats, read_edgelist

    st = graph_stats(read_edgelist(args.graph))
    print(json.dumps({
        "n": st.n, "m": st.m, "hop_diameter": st.hop_diameter,
        "shortest_path_diameter": st.shortest_path_diameter,
        "weighted_diameter": st.weighted_diameter,
        "max_weight": st.max_weight,
    }, indent=2))
    return 0


def _scheme_params(args) -> dict:
    params = {}
    if args.k is not None:
        params["k"] = args.k
    if args.eps is not None:
        params["eps"] = args.eps
    if args.sync is not None:
        params["sync"] = args.sync
    if args.S is not None:
        params["S"] = args.S
    return params


def _cmd_build(args) -> int:
    from repro.graphs import read_edgelist
    from repro.oracle.api import build_sketches
    from repro.oracle.serialization import save_index_binary, save_sketch_set

    # flag errors before the (possibly expensive) build, not after
    if args.format != "binary" and args.shards is not None:
        raise ReproError(
            "--shards only applies to --format binary (a JSON-lines "
            "sketch set has no shard layout; serve-bench takes "
            "--shards at load time instead)")
    if args.shards is not None and args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if args.shard_range is not None and args.format != "binary":
        raise ReproError(
            "--shard-range writes one fleet host's slice of a binary "
            "index; it needs --format binary (and --shards for the "
            "total layout)")

    g = read_edgelist(args.graph)
    built = build_sketches(g, scheme=args.scheme, mode=args.mode,
                           seed=args.seed, jobs=args.jobs,
                           **_scheme_params(args))
    print(built.describe())
    if built.metrics is not None:
        print(f"cost: {built.metrics.rounds} rounds, "
              f"{built.metrics.messages} messages, "
              f"{built.metrics.words} words")
    shards = 1 if args.shards is None else args.shards
    sketches, index = built.sketches, None
    if args.apply_updates is not None:
        from repro.service.updates import load_changes_jsonl

        upd = built.updateable(num_shards=shards)
        report = upd.apply(load_changes_jsonl(args.apply_updates))
        print(f"applied {report.changes} changes from "
              f"{args.apply_updates}: mode={report.mode} "
              f"dirty={report.dirty}/{report.n} epoch={report.epoch}")
        sketches, index = upd.sketches, upd.index
    if args.format == "binary":
        if index is None:
            from repro.service import build_index

            index = build_index(sketches, num_shards=shards)
        if args.shard_range is not None:
            from repro.service import restrict_index_shards

            lo, hi = _parse_shard_range(args.shard_range)
            index = restrict_index_shards(index, lo, hi)
        save_index_binary(index, args.output)
        range_note = ("" if args.shard_range is None
                      else f", shard range [{args.shard_range})")
        print(f"wrote a binary {type(index).__name__} "
              f"({index.nnz()} entries, {shards} shards{range_note}) "
              f"to {args.output}")
    else:
        save_sketch_set(sketches, args.output)
        print(f"wrote {len(sketches)} sketches to {args.output}")
    return 0


def _parse_pair(text: str) -> tuple[int, int]:
    try:
        a, b = text.split(":")
        return int(a), int(b)
    except ValueError:
        raise ReproError(f"bad pair {text!r}; expected 'u:v'") from None


def _parse_shard_range(text: str) -> tuple[int, int]:
    try:
        lo, hi = text.split(":")
        return int(lo), int(hi)
    except ValueError:
        raise ReproError(
            f"bad shard range {text!r}; expected 'LO:HI' "
            f"(a half-open landmark shard interval)") from None


def _query_fn(sketches):
    from repro.tz.sketch import TZSketch, estimate_distance

    def query(u: int, v: int) -> float:
        su, sv = sketches[u], sketches[v]
        if isinstance(su, TZSketch):
            return estimate_distance(su, sv)
        return su.estimate_to(sv)

    return query


def _cmd_query(args) -> int:
    from repro.graphs import apsp, read_edgelist

    client = None
    if args.connect is not None:
        if args.sketches is not None:
            raise ReproError(
                "--connect queries a live server; drop the sketches "
                "argument (the server owns the index)")
        from repro.service.transport import connect

        client = connect(args.connect)
        query = client.dist
    else:
        if args.graph is None or args.sketches is None:
            raise ReproError(
                "query wants GRAPH and SKETCHES files, or --connect SPEC")
        from repro.oracle.serialization import load_sketch_set

        query = _query_fn(load_sketch_set(args.sketches))
    d = None
    if args.exact:
        if args.graph is None:
            raise ReproError("--exact needs the GRAPH argument")
        d = apsp(read_edgelist(args.graph))
    try:
        for text in args.pairs:
            u, v = _parse_pair(text)
            est = query(u, v)
            if d is not None:
                print(f"{u}:{v} estimate={est:g} exact={d[u, v]:g} "
                      f"stretch={est / d[u, v] if d[u, v] else 1.0:.3f}")
            else:
                print(f"{u}:{v} estimate={est:g}")
    finally:
        if client is not None:
            client.close()
    return 0


def _cmd_serve(args) -> int:
    from repro.service.transport import OracleServer

    if not args.updateable and (args.policy != "static"
                                or args.rebuild_threshold is not None):
        raise ReproError("--policy / --rebuild-threshold tune the live "
                         "update path; they need --updateable")
    if args.updateable:
        from repro.graphs import read_edgelist
        from repro.service.updates import UpdateableIndex, make_policy

        params = {}
        if args.k is not None:
            params["k"] = args.k
        if args.eps is not None:
            params["eps"] = args.eps
        policy = make_policy(args.policy,
                             rebuild_threshold=args.rebuild_threshold)
        source = UpdateableIndex(read_edgelist(args.source),
                                 scheme=args.scheme, seed=args.seed,
                                 num_shards=(args.shards or 1),
                                 policy=policy, **params)
        shards = None  # baked into the updateable's stores
    else:
        from repro.oracle.serialization import (is_binary_index,
                                                load_index_binary,
                                                load_sketch_set)

        if is_binary_index(args.source):
            backing = "mmap" if args.memory == "mmap" else "heap"
            source = load_index_binary(args.source, backing=backing)
            shards = args.shards  # validated against the baked layout
        else:
            source = load_sketch_set(args.source)
            shards = args.shards or max(args.jobs, 1)
    shard_range = None
    if args.shard_range is not None:
        shard_range = _parse_shard_range(args.shard_range)
    addr = args.addr
    if args.port is not None:
        addr = f"{addr.rsplit(':', 1)[0]}:{args.port}"
    server = OracleServer(source, jobs=args.jobs, memory=args.memory,
                          pool=args.pool, num_shards=shards,
                          cache_size=args.cache_size,
                          shard_range=shard_range)
    host, port = server.serve(addr, block=False,
                              handlers=args.handlers)
    range_note = ("" if server.shard_range is None
                  else (f"range=[{server.shard_range[0]}:"
                        f"{server.shard_range[1]}) "))
    print(f"serving {server.scheme or '?'} n={server.n} "
          f"shards={server.num_shards} {range_note}jobs={server.jobs} "
          f"memory={args.memory} pool={args.pool} epoch={server.epoch} "
          f"updateable={'yes' if server.updateable else 'no'} "
          f"on tcp://{host}:{port}", flush=True)
    try:
        server.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        server.close()
    return 0


def _cmd_scenario(args) -> int:
    from repro.graphs import read_edgelist
    from repro.service.scenario import (Trace, generate_trace,
                                        run_named_scenario,
                                        served_subprocess)

    if (args.trace is None) == (args.load_trace is None):
        raise ReproError("pick exactly one trace source: --trace NAME "
                         "to generate, or --load-trace FILE to replay")
    graph = read_edgelist(args.graph)
    params = {}
    if args.k is not None:
        params["k"] = args.k
    if args.eps is not None:
        params["eps"] = args.eps
    if args.load_trace is not None:
        trace = Trace.load_jsonl(args.load_trace)
    else:
        trace = generate_trace(
            args.trace, graph,
            seed=args.seed if args.trace_seed is None else args.trace_seed,
            rounds=args.rounds)
    if args.save_trace is not None:
        trace.save_jsonl(args.save_trace)

    def _replay(endpoint: str):
        return run_named_scenario(
            trace.name, graph, scheme=args.scheme, seed=args.seed,
            endpoint=endpoint, policy=args.policy, num_shards=args.shards,
            query_threads=args.threads, oracle=not args.no_oracle,
            trace=trace, **params)

    if args.spawn:
        with served_subprocess(args.graph, scheme=args.scheme,
                               seed=args.seed or 0, shards=args.shards,
                               policy=args.policy, k=args.k,
                               eps=args.eps) as addr:
            result = _replay(addr)
    else:
        result = _replay(args.connect)
    print(json.dumps(result.summary(), indent=2, sort_keys=True))
    if not result.ok:
        print(f"error: oracle found {len(result.violations)} "
              f"violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.oracle.serialization import (is_binary_index,
                                            load_index_binary,
                                            load_sketch_set)
    from repro.service import run_serve_benchmark, scheme_name_of
    from repro.service.bench import scheme_name_of_index

    if args.clients is not None and args.connect is None:
        raise ReproError(
            "--clients drives concurrent sessions against a live server; "
            "it needs --connect tcp://host:port")
    if args.depth is not None and args.clients is None:
        raise ReproError(
            "--depth sets the per-session pipelining window of the "
            "--clients load generator; add --clients N")
    if args.connect is not None:
        if args.sketches is not None:
            raise ReproError(
                "--connect benchmarks a live server; drop the sketches "
                "argument (the server owns the index)")
        if args.clients is not None:
            from repro.service.bench import run_load_benchmark

            report = run_load_benchmark(args.connect, clients=args.clients,
                                        queries=args.queries,
                                        batch=args.batch, seed=args.seed,
                                        depth=args.depth)
            print(json.dumps(report, indent=2))
            if not report["identical"]:
                print("error: pipelined answers diverged from the "
                      "sequential pass", file=sys.stderr)
                return 1
            return 0
        from repro.service.bench import run_connect_benchmark

        report = run_connect_benchmark(args.connect, queries=args.queries,
                                       batch=args.batch, seed=args.seed,
                                       repeats=args.repeats)
        if args.scheme is not None and report["scheme"] != args.scheme:
            raise ReproError(
                f"server serves {report['scheme'] or 'unrecognized'}, "
                f"not {args.scheme}")
        print(json.dumps(report, indent=2))
        if not report["identical"]:
            print("error: batched answers diverged from the per-pair "
                  "path", file=sys.stderr)
            return 1
        return 0
    if args.sketches is None:
        raise ReproError(
            "serve-bench wants a SKETCHES/index file, or --connect SPEC")
    if is_binary_index(args.sketches):
        # a pre-built binary index: mmap-attach when the memory plane is
        # mmap (no blob parsing), plain read otherwise
        backing = "mmap" if args.memory == "mmap" else "heap"
        index = load_index_binary(args.sketches, backing=backing)
        found = scheme_name_of_index(index)
        if args.scheme is not None and found != args.scheme:
            raise ReproError(
                f"index is {found or 'unrecognized'}, not {args.scheme}")
        if args.shards is not None and args.shards != index.num_shards:
            raise ReproError(
                f"a binary index bakes its shard layout in: this one has "
                f"{index.num_shards} shards, not {args.shards} (rebuild "
                f"with --format binary --shards {args.shards})")
        report = run_serve_benchmark(
            index=index, queries=args.queries, batch=args.batch,
            seed=args.seed, repeats=args.repeats,
            cache_size=args.cache_size, jobs=args.jobs, memory=args.memory,
            pool=args.pool)
    else:
        sketches = load_sketch_set(args.sketches)
        if args.scheme is not None:
            found = scheme_name_of(sketches)
            if found != args.scheme:
                raise ReproError(
                    f"sketch set is {found or 'unrecognized'}, "
                    f"not {args.scheme}")
        report = run_serve_benchmark(
            sketches, queries=args.queries, batch=args.batch,
            seed=args.seed, repeats=args.repeats,
            cache_size=args.cache_size,
            num_shards=1 if args.shards is None else args.shards,
            jobs=args.jobs, memory=args.memory, pool=args.pool)
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("error: batched answers diverged from the single-query path",
              file=sys.stderr)
        return 1
    return 0


def _cmd_cluster_bench(args) -> int:
    from repro.oracle.serialization import (is_binary_index,
                                            load_index_binary,
                                            load_sketch_set)
    from repro.service.cluster import run_cluster_benchmark

    if is_binary_index(args.source):
        source = load_index_binary(args.source)
        if args.shards is not None and args.shards != source.num_shards:
            raise ReproError(
                f"a binary index bakes its shard layout in: this one has "
                f"{source.num_shards} shards, not {args.shards}")
        shards = None
    else:
        from repro.service import build_index

        shards = args.shards or max(max(args.hosts), 1)
        source = build_index(load_sketch_set(args.source),
                             num_shards=shards)
        shards = None  # baked in now
    report = run_cluster_benchmark(
        source, hosts=args.hosts, num_shards=shards,
        queries=args.queries, batch=args.batch, seed=args.seed,
        jobs=args.jobs)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_update_bench(args) -> int:
    from repro.graphs import read_edgelist
    from repro.service.updates import run_update_benchmark

    params = {}
    if args.k is not None:
        params["k"] = args.k
    if args.eps is not None:
        params["eps"] = args.eps
    g = read_edgelist(args.graph)
    report = run_update_benchmark(
        g, scheme=args.scheme, seed=args.seed, batch_sizes=args.batches,
        num_shards=args.shards, rebuild_threshold=args.rebuild_threshold,
        **params)
    print(json.dumps(report, indent=2))
    if not report["identical"]:
        print("error: updated index diverged from a from-scratch rebuild",
              file=sys.stderr)
        return 1
    return 0


def _cmd_schemes(args) -> int:
    from repro.oracle.schemes import scheme_support_matrix, schemes_markdown

    if args.markdown:
        print(schemes_markdown())
    else:
        print(json.dumps(scheme_support_matrix(), indent=2))
    return 0


def _cmd_eval(args) -> int:
    from repro.graphs import apsp, read_edgelist
    from repro.oracle.evaluation import evaluate_stretch
    from repro.oracle.serialization import load_sketch_set

    g = read_edgelist(args.graph)
    sketches = load_sketch_set(args.sketches)
    if len(sketches) != g.n:
        raise ReproError(f"{len(sketches)} sketches for a {g.n}-node graph")
    rep = evaluate_stretch(apsp(g), _query_fn(sketches), eps=args.eps,
                           max_pairs=args.max_pairs, seed=args.seed)
    print(json.dumps({
        "pairs": rep.pairs,
        "max_stretch": rep.max_stretch,
        "mean_stretch": rep.mean_stretch,
        "p95_stretch": rep.p95_stretch,
        "exact_fraction": rep.exact_fraction,
        "underestimates": rep.underestimates,
    }, indent=2))
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Distributed distance sketches (Das Sarma-Dinitz-"
                    "Pandurangan, SPAA 2012) — build, query, evaluate.")
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("gen", help="generate a workload graph")
    g.add_argument("--family", choices=["er", "ba", "geo", "grid", "ring",
                                        "star_path"], default="er")
    g.add_argument("--n", type=int, required=True)
    g.add_argument("--weights", choices=["unit", "uniform", "exponential"],
                   default="unit")
    g.add_argument("--seed", type=int, default=None)
    g.add_argument("-o", "--output", required=True)
    g.set_defaults(func=_cmd_gen)

    s = sub.add_parser("stats", help="D, S, and size of a graph")
    s.add_argument("graph")
    s.set_defaults(func=_cmd_stats)

    b = sub.add_parser("build", help="build sketches for every node")
    b.add_argument("graph")
    b.add_argument("--scheme", choices=["tz", "stretch3", "cdg", "graceful"],
                   default="tz")
    b.add_argument("--mode", choices=["centralized", "distributed"],
                   default="centralized")
    b.add_argument("--k", type=int, default=None)
    b.add_argument("--eps", type=float, default=None)
    b.add_argument("--sync", choices=["oracle", "known_smax", "echo"],
                   default=None)
    b.add_argument("--S", type=int, default=None)
    b.add_argument("--seed", type=int, default=None)
    b.add_argument("--jobs", type=int, default=None,
                   help="parallel worker processes for the centralized tz "
                        "construction (output is identical for any count)")
    b.add_argument("--format", choices=["json", "binary"], default="json",
                   help="json = per-node sketches as JSON lines; binary = "
                        "a pre-built index as the mmap-loadable container "
                        "(serve-bench detects either)")
    b.add_argument("--shards", type=int, default=None,
                   help="landmark shard count baked into a --format binary "
                        "index (layout only; answers are identical; "
                        "rejected with --format json)")
    b.add_argument("--shard-range", default=None, metavar="LO:HI",
                   help="write only landmark shards [LO, HI) of the "
                        "--shards layout — one fleet host's slice, "
                        "byte-identical to restricting the full build "
                        "(--format binary only; see repro serve "
                        "--shard-range)")
    b.add_argument("--apply-updates", metavar="CHANGES.JSONL", default=None,
                   help="after building, apply this edge-change stream "
                        "(see repro.service.updates) through the "
                        "incremental-repair path and write the updated "
                        "sketches/index instead (centralized builds of "
                        "updateable schemes only)")
    b.add_argument("-o", "--output", required=True)
    b.set_defaults(func=_cmd_build)

    q = sub.add_parser("query", help="estimate distances from sketches "
                                     "or a live server")
    q.add_argument("graph", nargs="?", default=None)
    q.add_argument("sketches", nargs="?", default=None)
    q.add_argument("--connect", metavar="SPEC", default=None,
                   help="query a live server instead of local sketch "
                        "files (tcp://host:port, or "
                        "cluster://h1:p1,h2:p2 for a shard-range fleet)")
    q.add_argument("--pairs", nargs="+", required=True, metavar="u:v")
    q.add_argument("--exact", action="store_true",
                   help="also compute exact distances for comparison "
                        "(needs the GRAPH argument)")
    q.set_defaults(func=_cmd_query)

    sv = sub.add_parser("serve",
                        help="host an oracle over TCP (the frame-protocol "
                             "daemon repro.service.transport clients "
                             "connect to)")
    sv.add_argument("source",
                    help="what to serve: a sketch set (.jsonl), a binary "
                         "index (.rpix), or — with --updateable — a "
                         "graph edge list to build a live index from")
    sv.add_argument("--addr", default="127.0.0.1:0", metavar="HOST:PORT",
                    help="listen address (port 0 picks a free one; the "
                         "bound tcp://host:port is printed on stdout "
                         "before serving)")
    sv.add_argument("--port", type=int, default=None,
                    help="override the port of --addr (--port 0 picks a "
                         "free one and prints it — the fleet-spawning "
                         "shorthand)")
    sv.add_argument("--jobs", type=int, default=1,
                    help="workers behind the landmark shards")
    sv.add_argument("--memory", choices=["heap", "shared", "mmap"],
                    default="heap",
                    help="serving data plane (a binary index with "
                         "--memory mmap is attached zero-parse)")
    sv.add_argument("--pool", choices=["proc", "thread"], default="proc",
                    help="shard execution plane for --jobs > 1: proc = "
                         "worker processes; thread = a GIL-releasing "
                         "thread pool in the server's address space "
                         "(no pickling; answers identical either way)")
    sv.add_argument("--shards", type=int, default=None,
                    help="landmark shard count when building from "
                         "sketches or a graph (a binary index bakes "
                         "its own in)")
    sv.add_argument("--shard-range", default=None, metavar="LO:HI",
                    help="serve only landmark shards [LO, HI) — one host "
                         "of a fleet; whole-batch queries are refused "
                         "here (a cluster://h1:p1,h2:p2 session combines "
                         "the fleet's partial answers)")
    sv.add_argument("--cache-size", type=int, default=65536,
                    help="LRU result-cache capacity (0 disables)")
    sv.add_argument("--handlers", type=int, default=None,
                    help="request-handler threads multiplexing the "
                         "connections (default: sized to the engine, "
                         "max(2, jobs))")
    sv.add_argument("--updateable", action="store_true",
                    help="treat SOURCE as a graph edge list and serve a "
                         "live UpdateableIndex — clients can push edge "
                         "changes (apply_updates) and every connected "
                         "session hot-swaps epochs without reconnecting")
    sv.add_argument("--scheme",
                    choices=["tz", "stretch3", "cdg", "graceful"],
                    default="tz",
                    help="scheme for --updateable builds")
    sv.add_argument("--k", type=int, default=None)
    sv.add_argument("--eps", type=float, default=None)
    sv.add_argument("--seed", type=int, default=None)
    sv.add_argument("--policy", choices=["static", "adaptive"],
                    default="static",
                    help="repair-vs-rebuild decision policy of the live "
                         "index (--updateable only): static = fixed "
                         "dirty-fraction threshold; adaptive = measured "
                         "repair/rebuild cost model with the static rule "
                         "as cold-start fallback (answers identical "
                         "either way)")
    sv.add_argument("--rebuild-threshold", type=float, default=None,
                    help="dirty fraction above which the static policy "
                         "(or the adaptive policy's fallback) rebuilds "
                         "instead of repairing (default 0.25)")
    sv.set_defaults(func=_cmd_serve)

    sn = sub.add_parser("scenario",
                        help="replay a churn+query scenario trace against "
                             "a live endpoint with the correctness oracle "
                             "armed")
    sn.add_argument("graph",
                    help="edge list the trace, the served index, and the "
                         "oracle twin are built from")
    sn.add_argument("--trace", default=None, metavar="NAME",
                    help="named scenario to generate (flash-crowd, "
                         "rolling-churn, weight-flap, disconnect-heal, "
                         "steady-mix)")
    sn.add_argument("--load-trace", default=None, metavar="TRACE.JSONL",
                    help="replay a saved trace instead of generating one")
    sn.add_argument("--save-trace", default=None, metavar="TRACE.JSONL",
                    help="persist the replayed trace (exact JSONL "
                         "round-trip; replays are reproducible)")
    sn.add_argument("--rounds", type=int, default=None,
                    help="trace length (default: the scenario's own)")
    sn.add_argument("--trace-seed", type=int, default=None,
                    help="trace-generator seed (default: --seed)")
    sn.add_argument("--connect", metavar="SPEC", default="inproc://",
                    help="endpoint to drive: inproc:// (default), "
                         "proc://..., tcp://host:port (a live repro serve "
                         "--updateable daemon built from GRAPH with the "
                         "same scheme/seed), or bare tcp:// to serve a "
                         "loopback listener in-process")
    sn.add_argument("--spawn", action="store_true",
                    help="spawn a `python -m repro serve GRAPH "
                         "--updateable` subprocess on a free port and run "
                         "against it (overrides --connect)")
    sn.add_argument("--scheme",
                    choices=["tz", "stretch3", "cdg", "graceful"],
                    default="tz")
    sn.add_argument("--k", type=int, default=None)
    sn.add_argument("--eps", type=float, default=None)
    sn.add_argument("--seed", type=int, default=0)
    sn.add_argument("--shards", type=int, default=1)
    sn.add_argument("--policy", choices=["static", "adaptive"],
                    default="static",
                    help="repair-vs-rebuild policy of the served index")
    sn.add_argument("--threads", type=int, default=2,
                    help="reader sessions the query events fan out across")
    sn.add_argument("--no-oracle", action="store_true",
                    help="skip the post-hoc correctness verification "
                         "(measurement-only replay)")
    sn.set_defaults(func=_cmd_scenario)

    sb = sub.add_parser("serve-bench",
                        help="batched vs single-query serving throughput")
    sb.add_argument("sketches", nargs="?", default=None)
    sb.add_argument("--connect", metavar="SPEC", default=None,
                    help="benchmark a live endpoint (tcp://host:port, or "
                         "cluster://h1:p1,h2:p2 for a shard-range fleet) "
                         "instead of serving local files")
    sb.add_argument("--clients", type=int, default=None,
                    help="with --connect: closed-loop load generator — N "
                         "concurrent sessions each measuring a "
                         "sequential and a pipelined pass (p50/p99 "
                         "latency and qps per client)")
    sb.add_argument("--depth", type=int, default=None,
                    help="with --clients: dist_stream pipelining window "
                         "per session (default 4)")
    sb.add_argument("--queries", type=int, default=10_000)
    sb.add_argument("--batch", type=int, default=None,
                    help="batch size (default: one batch for all queries)")
    sb.add_argument("--repeats", type=int, default=3)
    sb.add_argument("--shards", type=int, default=None,
                    help="landmark shards in the pre-built index "
                         "(default 1; a binary index bakes its own count "
                         "in, and asking for a different one is an error)")
    sb.add_argument("--cache-size", type=int, default=0,
                    help="LRU result-cache capacity (0 = cold-cache run)")
    sb.add_argument("--jobs", type=int, default=1,
                    help="workers behind the landmark shards "
                         "(1 = in-process; clamped to --shards; answers "
                         "are identical either way)")
    sb.add_argument("--memory", choices=["heap", "shared", "mmap"],
                    default="heap",
                    help="serving data plane: heap = plain arrays + "
                         "pickle IPC; shared = zero-copy worker attach + "
                         "shared ring buffers; mmap = memory-mapped index "
                         "pack (answers are identical in every mode)")
    sb.add_argument("--pool", choices=["proc", "thread"], default="proc",
                    help="shard execution plane for --jobs > 1: proc = "
                         "worker processes; thread = a GIL-releasing "
                         "thread pool sharing the address space "
                         "(answers identical either way)")
    sb.add_argument("--scheme",
                    choices=["tz", "stretch3", "cdg", "graceful"],
                    default=None,
                    help="assert the loaded sketch set is this scheme")
    sb.add_argument("--seed", type=int, default=0)
    sb.set_defaults(func=_cmd_serve_bench)

    cb = sub.add_parser("cluster-bench",
                        help="loopback fleets of N shard-range hosts vs "
                             "one full host (identity asserted; timings "
                             "reported, never gated)")
    cb.add_argument("source",
                    help="what the fleets serve: a sketch set (.jsonl) "
                         "or a binary index (.rpix)")
    cb.add_argument("--hosts", type=int, nargs="+", default=[1, 2, 4],
                    metavar="N",
                    help="fleet sizes to measure (every host count must "
                         "divide into at least one shard each)")
    cb.add_argument("--shards", type=int, default=None,
                    help="landmark shard count when building from "
                         "sketches (default: max fleet size; a binary "
                         "index bakes its own in)")
    cb.add_argument("--queries", type=int, default=2000)
    cb.add_argument("--batch", type=int, default=256)
    cb.add_argument("--jobs", type=int, default=1,
                    help="workers behind each host's shards")
    cb.add_argument("--seed", type=int, default=0)
    cb.set_defaults(func=_cmd_cluster_bench)

    ub = sub.add_parser("update-bench",
                        help="incremental index update vs full rebuild "
                             "on edge-weight changes")
    ub.add_argument("graph")
    ub.add_argument("--scheme",
                    choices=["tz", "stretch3", "cdg", "graceful"],
                    default="tz")
    ub.add_argument("--k", type=int, default=None)
    ub.add_argument("--eps", type=float, default=None)
    ub.add_argument("--seed", type=int, default=0)
    ub.add_argument("--batches", type=int, nargs="+", default=[1, 4, 16],
                    metavar="N",
                    help="change-batch sizes to measure (random distinct "
                         "edges, weights scaled by a uniform factor)")
    ub.add_argument("--shards", type=int, default=1,
                    help="landmark shard count of the maintained index")
    ub.add_argument("--rebuild-threshold", type=float, default=1.0,
                    help="dirty fraction above which apply() rebuilds "
                         "instead of repairing (default 1.0 here so the "
                         "benchmark always measures the repair path; the "
                         "library default is 0.25)")
    ub.set_defaults(func=_cmd_update_bench)

    sc = sub.add_parser("schemes",
                        help="the scheme capability matrix (from the "
                             "SCHEMES registry)")
    sc.add_argument("--markdown", action="store_true",
                    help="print a GitHub-flavored markdown table instead "
                         "of JSON")
    sc.set_defaults(func=_cmd_schemes)

    e = sub.add_parser("eval", help="stretch report against exact APSP")
    e.add_argument("graph")
    e.add_argument("sketches")
    e.add_argument("--eps", type=float, default=None,
                   help="restrict to eps-far pairs (slack semantics)")
    e.add_argument("--max-pairs", type=int, default=None)
    e.add_argument("--seed", type=int, default=0)
    e.set_defaults(func=_cmd_eval)
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
