"""Stretch-3 sketches with ε-slack (paper Theorem 4.3).

Every node stores its distance to **every** node of an ε-density net.  For
a pair ``(u, v)`` where ``v`` is ε-far from ``u`` (at least ``εn`` vertices
are closer to ``u`` than ``v`` is), the closest net node ``u'`` to ``u``
satisfies ``d(u, u') <= R(u, ε) <= d(u, v)``, and routing through it gives
``d(u, u') + d(u', v) <= 3 d(u, v)``.

The estimate implemented is the paper's
``min_{w ∈ N} (d(u, w) + d(w, v))`` over the *shared* net — at least as
good as routing through ``u'`` alone, never below the true distance.

Construction is one k-Source Shortest Paths run with the net as sources:
``O(S · (1/ε) log n)`` rounds and ``O(S |E| (1/ε) log n)`` messages w.h.p.,
with sketches of ``O((1/ε) log n)`` words — all three measured by
experiment E6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.ksource import k_source_shortest_paths
from repro.congest.metrics import RunMetrics
from repro.errors import QueryError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp
from repro.rng import SeedLike, ensure_rng
from repro.slack.density_net import DensityNet, sample_density_net
from repro.words import entry_words


@dataclass(frozen=True)
class Stretch3Sketch:
    """One node's Theorem 4.3 sketch: distances to all net nodes."""

    node: int
    eps: float
    entries: dict[int, float]  # net node -> d(u, net node)

    def size_words(self) -> int:
        return entry_words() * len(self.entries)

    def estimate_to(self, other: "Stretch3Sketch") -> float:
        """``min_w d(u, w) + d(w, v)`` over the shared net."""
        if self.node == other.node:
            return 0.0
        best = math.inf
        oe = other.entries
        for w, du in self.entries.items():
            dv = oe.get(w)
            if dv is not None and du + dv < best:
                best = du + dv
        if math.isinf(best):
            raise QueryError(
                f"sketches of {self.node} and {other.node} share no net node")
        return best


def _assemble(eps: float, per_node: list[dict[int, float]]) -> list[Stretch3Sketch]:
    return [Stretch3Sketch(node=u, eps=eps, entries=dict(entries))
            for u, entries in enumerate(per_node)]


def build_stretch3_centralized(graph: Graph, eps: float, seed: SeedLike = None,
                               net: DensityNet = None,
                               dist_matrix: np.ndarray = None,
                               ) -> tuple[list[Stretch3Sketch], DensityNet]:
    """Centralized twin: net sampling + APSP rows restricted to the net."""
    rng = ensure_rng(seed)
    if net is None:
        net = sample_density_net(graph.n, eps, seed=rng)
    d = apsp(graph) if dist_matrix is None else dist_matrix
    members = list(net.members)
    per_node = [{w: float(d[u, w]) for w in members} for u in graph.nodes()]
    return _assemble(eps, per_node), net


def build_stretch3_distributed(graph: Graph, eps: float, seed: SeedLike = None,
                               net: DensityNet = None,
                               ) -> tuple[list[Stretch3Sketch], DensityNet, RunMetrics]:
    """Distributed build per Theorem 4.3: sample the net locally, then one
    k-Source Shortest Paths run with the net as the source set."""
    rng = ensure_rng(seed)
    if net is None:
        net = sample_density_net(graph.n, eps, seed=rng)
    per_node, metrics = k_source_shortest_paths(graph, net.members, seed=rng)
    return _assemble(eps, per_node), net, metrics
