"""Sketches with slack (paper Section 4, systems S12–S15).

* :mod:`repro.slack.density_net` — ε-density nets by random sampling
  (Definition 4.1, Lemma 4.2).
* :mod:`repro.slack.stretch3` — stretch-3 sketches with ε-slack
  (Theorem 4.3): remember the distance to *every* net node.
* :mod:`repro.slack.cdg` — (ε,k)-CDG sketches (Lemmas 4.4/4.5, Theorem
  4.6): Thorup–Zwick run *on the net* through the graph.
* :mod:`repro.slack.graceful` — gracefully degrading sketches (Theorem
  4.8) and the O(1) average-stretch corollary (Lemma 4.7, Corollary 4.9).
"""

from repro.slack.density_net import (
    DensityNet,
    sample_density_net,
    ball_radii,
    verify_density_net,
    build_density_net_distributed,
    nearest_in_set_centralized,
)
from repro.slack.stretch3 import (
    Stretch3Sketch,
    build_stretch3_centralized,
    build_stretch3_distributed,
)
from repro.slack.cdg import (
    CDGSketch,
    cdg_sampling_probability,
    build_cdg_centralized,
    build_cdg_distributed,
)
from repro.slack.graceful import (
    GracefulSketch,
    graceful_schedule,
    build_graceful_centralized,
    build_graceful_distributed,
)

__all__ = [
    "DensityNet",
    "sample_density_net",
    "ball_radii",
    "verify_density_net",
    "build_density_net_distributed",
    "nearest_in_set_centralized",
    "Stretch3Sketch",
    "build_stretch3_centralized",
    "build_stretch3_distributed",
    "CDGSketch",
    "cdg_sampling_probability",
    "build_cdg_centralized",
    "build_cdg_distributed",
    "GracefulSketch",
    "graceful_schedule",
    "build_graceful_centralized",
    "build_graceful_distributed",
]
