"""(ε,k)-CDG sketches (paper Lemmas 4.4/4.5, Theorem 4.6).

The stretch-3 construction stores ``Θ((1/ε) log n)`` entries; the CDG
construction trades a worse stretch (``8k - 1`` on ε-far pairs) for a much
smaller sketch by running **Thorup–Zwick on the density net itself**:

* sample an ε-density net ``N`` (local coins, Lemma 4.2);
* one super-source Bellman-Ford so every ``u`` learns its *gateway* — the
  closest net node ``u'`` and ``d(u, u')``;
* run Algorithm 2 with the hierarchy ``A_0 = N ⊇ A_1 ⊇ …`` sampled with
  probability ``((10/ε) ln n)^{-1/k}`` per level.  The bunches/pivots of a
  net node computed *through G* coincide with what the metric completion of
  ``N`` would give, which is the paper's key observation (Lemma 4.5).

Sketch of ``u``: its gateway pair plus the TZ label of ``u'``.  Query:
``d(u, u') + d''(u', v') + d(v', v)`` where ``d''`` is the TZ estimate —
``<= (8k - 1) d(u, v)`` whenever ``v`` is ε-far from ``u`` (Theorem 4.6;
measured by experiment E7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.congest.metrics import RunMetrics
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp
from repro.rng import SeedLike, ensure_rng
from repro.slack.density_net import (DensityNet, nearest_in_set_centralized,
                                     sample_density_net)
from repro.algorithms.supersource import distances_to_set
from repro.tz.centralized import build_tz_sketches_centralized
from repro.tz.distributed import build_tz_sketches_distributed
from repro.tz.hierarchy import Hierarchy, sample_hierarchy
from repro.tz.sketch import TZSketch, estimate_distance
from repro.words import entry_words


@dataclass(frozen=True)
class CDGSketch:
    """One node's (ε,k)-CDG sketch."""

    node: int
    eps: float
    k: int
    gateway: int          # u' — closest net node
    gateway_dist: float   # d(u, u')
    label: TZSketch       # Thorup–Zwick label of u' (over the net)

    def size_words(self) -> int:
        return entry_words() + self.label.size_words()

    def estimate_to(self, other: "CDGSketch") -> float:
        if self.node == other.node:
            return 0.0
        through = estimate_distance(self.label, other.label)
        return self.gateway_dist + through + other.gateway_dist


def cdg_sampling_probability(n: int, eps: float, k: int) -> float:
    """The paper's net-hierarchy sampling probability
    ``((10/ε) ln n)^{-1/k}``, clamped into (0, 1]."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    base = 10.0 / eps * math.log(max(n, 2))
    return min(1.0, base ** (-1.0 / k))


def _assemble(eps: float, k: int, gateways: list[tuple[float, int]],
              net_labels: dict[int, TZSketch]) -> list[CDGSketch]:
    return [CDGSketch(node=u, eps=eps, k=k, gateway=gw,
                      gateway_dist=gd, label=net_labels[gw])
            for u, (gd, gw) in enumerate(gateways)]


def _net_hierarchy(graph: Graph, net: DensityNet, eps: float, k: int,
                   rng) -> Hierarchy:
    return sample_hierarchy(graph.n, k,
                            q=cdg_sampling_probability(graph.n, eps, k),
                            universe=net.members, seed=rng)


def build_cdg_centralized(graph: Graph, eps: float, k: int,
                          seed: SeedLike = None,
                          net: Optional[DensityNet] = None,
                          hierarchy: Optional[Hierarchy] = None,
                          dist_matrix: Optional[np.ndarray] = None,
                          ) -> tuple[list[CDGSketch], DensityNet, Hierarchy]:
    """Centralized twin (used for differential tests and large-n stats)."""
    rng = ensure_rng(seed)
    if net is None:
        net = sample_density_net(graph.n, eps, seed=rng)
    if hierarchy is None:
        hierarchy = _net_hierarchy(graph, net, eps, k, rng)
    d = apsp(graph) if dist_matrix is None else dist_matrix
    gateways = nearest_in_set_centralized(d, net.members)
    sketches, _ = build_tz_sketches_centralized(graph, hierarchy=hierarchy)
    net_labels = {w: sketches[w] for w in net.members}
    return _assemble(eps, k, gateways, net_labels), net, hierarchy


def build_cdg_distributed(graph: Graph, eps: float, k: int,
                          seed: SeedLike = None,
                          net: Optional[DensityNet] = None,
                          hierarchy: Optional[Hierarchy] = None,
                          sync: str = "oracle",
                          S: Optional[int] = None,
                          budget="whp",
                          ) -> tuple[list[CDGSketch], DensityNet, Hierarchy, RunMetrics]:
    """Distributed build per Lemma 4.5.

    Metrics are the sum of the super-source gateway run and the
    TZ-on-the-net run (net sampling costs zero rounds).

    Note the distributed TZ run hands *every* node a label over the net
    hierarchy; only the net nodes' labels enter the sketches, exactly as in
    the paper ("the nodes in N will have a sketch that is exactly equal to
    the sketch they would have if we ran Algorithm 2 on the metric
    completion of N").  A node's own gateway label reaches it through its
    gateway: ``u'`` is by definition the net node ``u`` talks to, one
    sketch-sized exchange away (the online protocol of experiment E10).
    """
    rng = ensure_rng(seed)
    if net is None:
        net = sample_density_net(graph.n, eps, seed=rng)
    if hierarchy is None:
        hierarchy = _net_hierarchy(graph, net, eps, k, rng)
    assignments, m1 = distances_to_set(graph, net.members, seed=rng)
    tz = build_tz_sketches_distributed(graph, hierarchy=hierarchy, sync=sync,
                                       seed=rng, S=S, budget=budget)
    net_labels = {w: tz.sketches[w] for w in net.members}
    metrics = m1 + tz.metrics
    return _assemble(eps, k, assignments, net_labels), net, hierarchy, metrics
