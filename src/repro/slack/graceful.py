"""Gracefully degrading sketches (paper Section 4.1).

A sketch is *gracefully degrading* with stretch ``f(ε)`` if it achieves
stretch ``f(ε)`` with ε-slack **simultaneously for every** ``ε ∈ (0, 1)``.
The paper's construction (Theorem 4.8) is a union of ``O(log n)`` CDG
sketches, one per ``ε_i = 2^{-i}`` with ``k_i = O(log 1/ε_i)``; a query
takes the minimum over all component estimates.

Consequences measured by experiment E8:

* setting ``ε < 1/n`` makes every pair ε-far, so worst-case stretch is
  ``O(log n)`` (Lemma 4.7's first part);
* summing the per-annulus bounds gives **average stretch O(1)**
  (Lemma 4.7 / Corollary 4.9) — the headline improvement over plain
  Thorup–Zwick at ``k = log n``, bought for an extra ``O(log^2 n)`` factor
  in size (``O(log^4 n)`` words total) and construction time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.congest.metrics import RunMetrics
from repro.errors import ConfigError, QueryError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp
from repro.rng import SeedLike, ensure_rng
from repro.slack.cdg import CDGSketch, build_cdg_centralized, build_cdg_distributed


@dataclass(frozen=True)
class GracefulSketch:
    """Union of per-ε CDG sketches for one node."""

    node: int
    components: tuple[CDGSketch, ...]  # ordered by schedule index i = 1, 2, ...

    def size_words(self) -> int:
        return sum(c.size_words() for c in self.components)

    def estimate_to(self, other: "GracefulSketch") -> float:
        """Minimum over component estimates (never below the true distance,
        since every component estimate is a sum of real path lengths)."""
        if self.node == other.node:
            return 0.0
        if len(self.components) != len(other.components):
            raise QueryError("mismatched graceful sketches")
        return min(c.estimate_to(o)
                   for c, o in zip(self.components, other.components))

    def estimate_for_eps(self, other: "GracefulSketch", eps: float) -> float:
        """The single-component estimate the Theorem 4.8 analysis routes
        through: ε rounded down to the nearest power of 1/2."""
        if self.node == other.node:
            return 0.0
        i = max(1, math.ceil(math.log2(1.0 / eps)))
        i = min(i, len(self.components))
        return self.components[i - 1].estimate_to(other.components[i - 1])


def graceful_schedule(n: int) -> list[tuple[float, int]]:
    """The Theorem 4.8 parameter schedule: ``(ε_i, k_i)`` for
    ``i = 1..ceil(log2 n)`` with ``ε_i = 2^{-i}`` and ``k_i = i``
    (``k = O(log 1/ε)``).  The final ``ε`` is ``<= 1/n``, which makes every
    pair slack-covered and yields the worst-case ``O(log n)`` stretch."""
    if n < 2:
        raise ConfigError("graceful sketches need n >= 2")
    imax = max(1, math.ceil(math.log2(n)))
    return [(2.0 ** -i, i) for i in range(1, imax + 1)]


def _assemble(n: int, per_level: list[list[CDGSketch]]) -> list[GracefulSketch]:
    return [GracefulSketch(node=u,
                           components=tuple(level[u] for level in per_level))
            for u in range(n)]


def build_graceful_centralized(graph: Graph, seed: SeedLike = None,
                               schedule: Optional[list[tuple[float, int]]] = None,
                               dist_matrix: Optional[np.ndarray] = None,
                               ) -> tuple[list[GracefulSketch], list[tuple[float, int]]]:
    """Centralized twin of the Theorem 4.8 build."""
    rng = ensure_rng(seed)
    if schedule is None:
        schedule = graceful_schedule(graph.n)
    d = apsp(graph) if dist_matrix is None else dist_matrix
    per_level = []
    for eps, k in schedule:
        sketches, _, _ = build_cdg_centralized(graph, eps, k, seed=rng,
                                               dist_matrix=d)
        per_level.append(sketches)
    return _assemble(graph.n, per_level), schedule


def build_graceful_distributed(graph: Graph, seed: SeedLike = None,
                               schedule: Optional[list[tuple[float, int]]] = None,
                               sync: str = "oracle",
                               S: Optional[int] = None,
                               budget="whp",
                               ) -> tuple[list[GracefulSketch], list[tuple[float, int]], RunMetrics]:
    """Distributed build: the O(log n) CDG instantiations run back to back
    ("we just run each of the O(log n) instantiations of the theorem back
    to back"), so the metrics are the straight sum."""
    rng = ensure_rng(seed)
    if schedule is None:
        schedule = graceful_schedule(graph.n)
    per_level = []
    total: Optional[RunMetrics] = None
    for eps, k in schedule:
        sketches, _, _, m = build_cdg_distributed(graph, eps, k, seed=rng,
                                                  sync=sync, S=S, budget=budget)
        per_level.append(sketches)
        total = m if total is None else total + m
    return _assemble(graph.n, per_level), schedule, total
