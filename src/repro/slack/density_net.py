"""ε-density nets (paper Definition 4.1 and Lemma 4.2).

A set ``N ⊆ V`` is an ε-density net if (1) every vertex ``u`` has a net
node within ``R(u, ε)`` — the radius of the smallest ball around ``u``
containing at least ``εn`` vertices — and (2) ``|N| <= (10/ε) ln n``.

The paper's construction (Lemma 4.2) is pure local sampling: every vertex
joins ``N`` independently with probability ``(5 ln n) / (ε n)`` (capped at
1), which needs **zero communication** — this is precisely the modification
the paper makes to the centralized CDG nets to get distributability.  Both
net properties then hold with high probability; :func:`verify_density_net`
checks them exactly (experiment E5 reports the empirical failure rate and
the A2 ablation compares against the original CDG parameters:
``|N| ~ 1/ε`` with radius ``2 R(u, ε)``).

The companion distributed step (every node learns its nearest net node) is
one super-source Bellman-Ford: ``O(S)`` rounds, ``O(S |E|)`` messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.supersource import distances_to_set
from repro.congest.metrics import RunMetrics
from repro.distkey import DistKey
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class DensityNet:
    """A sampled net with its parameters (members are sorted node IDs)."""

    eps: float
    n: int
    members: tuple[int, ...]

    def size(self) -> int:
        return len(self.members)

    def size_bound(self) -> float:
        """The Definition 4.1 cardinality bound ``(10/ε) ln n``."""
        return 10.0 / self.eps * math.log(max(self.n, 2))


def sampling_probability(n: int, eps: float) -> float:
    """Lemma 4.2's per-vertex join probability ``min(1, 5 ln n / (ε n))``."""
    if not (0.0 < eps <= 1.0):
        raise ConfigError(f"eps must be in (0, 1], got {eps}")
    return min(1.0, 5.0 * math.log(max(n, 2)) / (eps * n))


def sample_density_net(n: int, eps: float, seed: SeedLike = None) -> DensityNet:
    """Sample a net by independent local coin flips (Lemma 4.2).

    Resamples in the (exponentially unlikely) event that no vertex joined —
    an empty net cannot serve property (1).
    """
    rng = ensure_rng(seed)
    p = sampling_probability(n, eps)
    for _ in range(1000):
        mask = rng.random(n) < p
        if mask.any():
            return DensityNet(eps=eps, n=n,
                              members=tuple(int(v) for v in np.flatnonzero(mask)))
    raise ConfigError(f"net sampling kept drawing empty sets (n={n}, eps={eps})")


def ball_radii(dist_matrix: np.ndarray, eps: float) -> np.ndarray:
    """``R(u, ε)`` for every ``u``: the εn-th smallest entry in row ``u``
    (the row contains ``d(u, u) = 0``, so ``|B(u, R)| >= εn`` counts ``u``)."""
    n = dist_matrix.shape[0]
    need = max(1, math.ceil(eps * n))
    # partition is O(n) per row vs full sort's O(n log n)
    return np.partition(dist_matrix, need - 1, axis=1)[:, need - 1]


def verify_density_net(dist_matrix: np.ndarray, net: DensityNet) -> dict:
    """Exact check of both Definition 4.1 properties.

    Returns a report dict: per-property booleans plus the measured values,
    used by tests and experiment E5.
    """
    members = np.asarray(net.members, dtype=np.int64)
    radii = ball_radii(dist_matrix, net.eps)
    d_to_net = dist_matrix[:, members].min(axis=1)
    coverage_ok = bool(np.all(d_to_net <= radii + 1e-9))
    size_ok = net.size() <= net.size_bound()
    return {
        "coverage_ok": coverage_ok,
        "size_ok": size_ok,
        "size": net.size(),
        "size_bound": net.size_bound(),
        "worst_coverage_ratio": float(np.max(
            np.where(radii > 0, d_to_net / np.maximum(radii, 1e-300), 0.0))),
    }


def nearest_in_set_centralized(dist_matrix: np.ndarray, members,
                               ) -> list[tuple[float, int]]:
    """Per node: ``(d(u, N), closest member)`` with the library tie-break
    (smallest member ID among equidistant) — the centralized twin of
    :func:`repro.algorithms.supersource.distances_to_set`."""
    mem = sorted(int(v) for v in members)
    out = []
    for u in range(dist_matrix.shape[0]):
        best = DistKey(math.inf, -1)
        for v in mem:
            key = DistKey(float(dist_matrix[u, v]), v)
            if key < best:
                best = key
        out.append((best.dist, best.node))
    return out


def build_density_net_distributed(graph: Graph, eps: float,
                                  seed: SeedLike = None,
                                  ) -> tuple[DensityNet, list[tuple[float, int]], RunMetrics]:
    """Sample a net (zero rounds — local coins) and run the super-source
    Bellman-Ford so every node knows its nearest net node.

    Returns ``(net, assignments, metrics)`` with ``assignments[u] =
    (d(u, N), nearest net node)``.
    """
    rng = ensure_rng(seed)
    net = sample_density_net(graph.n, eps, seed=rng)
    assignments, metrics = distances_to_set(graph, net.members, seed=rng)
    return net, assignments, metrics


def cdg_original_net(dist_matrix: np.ndarray, eps: float,
                     seed: SeedLike = None) -> DensityNet:
    """The *original* Chan-Dinitz-Gupta density net for the A2 ablation:
    a greedy centralized construction of at most ``ceil(1/ε)`` nodes such
    that every vertex has a net node within ``2 R(u, ε)``.

    Greedy argument (as in [CDG06]): repeatedly pick the uncovered vertex
    ``u`` with smallest ``R(u, ε)`` and add it to the net; its ball
    ``B(u, R(u, ε))`` contains ``>= εn`` vertices, all of which become
    covered (any ``v`` in it has ``d(v, u) <= R(u,ε) + R(u,ε)``... within
    ``2 R(v, ε)`` since ``R(v, ε) >= R(u, ε) - d(u,v)`` need not hold in
    general metrics, so we verify coverage explicitly and keep adding until
    all vertices are covered — for the ablation's measurement purposes the
    *size* and *radius* actually achieved are what get reported).
    """
    n = dist_matrix.shape[0]
    radii = ball_radii(dist_matrix, eps)
    order = np.argsort(radii, kind="stable")
    covered = np.zeros(n, dtype=bool)
    members: list[int] = []
    for u in order:
        u = int(u)
        if covered[u]:
            continue
        members.append(u)
        covered |= dist_matrix[u] <= 2.0 * radii
    return DensityNet(eps=eps, n=n, members=tuple(sorted(members)))
