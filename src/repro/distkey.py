"""Lexicographic ``(distance, node-id)`` keys — the tie-breaking rule.

Paper Section 3.1 assumes "all distances are distinct; this can be made
without loss of generality by breaking ties consistently through processor
IDs".  We implement that assumption explicitly: whenever the construction
compares ``d(u, w)`` against the threshold ``d(u, A_{i+1})`` (bunch
membership, cluster membership, pivot selection), both sides are compared as
``(distance, id)`` tuples.

Making the rule a first-class module matters because the *distributed*
construction (``repro.tz.distributed``) and the *centralized* reference
(``repro.tz.centralized``) must agree exactly for differential testing; any
implicit tie handling would make them drift on graphs with repeated
distances (unit-weight graphs are full of them).

``INF_KEY`` plays the role of ``d(u, A_k) = infinity`` from the paper.
"""

from __future__ import annotations

import math
from typing import NamedTuple


class DistKey(NamedTuple):
    """A distance tagged with the node it refers to, ordered lexicographically.

    ``DistKey(d, v) < DistKey(d', v')`` iff ``d < d'`` or
    (``d == d'`` and ``v < v'``).  This is the total order the paper's
    "distinct distances" assumption induces.
    """

    dist: float
    node: int

    def is_inf(self) -> bool:
        """True for the sentinel "no node at any distance" key."""
        return math.isinf(self.dist)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_inf():
            return "DistKey(inf)"
        return f"DistKey({self.dist:g}, v={self.node})"


#: Sentinel for ``d(u, A_k) = infinity`` (paper Section 3.1).  The node
#: component is -1, which never collides with a real node ID; the infinite
#: distance alone already dominates every finite key.
INF_KEY = DistKey(math.inf, -1)


def min_key(keys) -> DistKey:
    """Minimum of an iterable of keys, or :data:`INF_KEY` when empty."""
    best = INF_KEY
    for k in keys:
        if k < best:
            best = k
    return best
