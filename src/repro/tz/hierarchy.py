"""The sampled set hierarchy A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}, A_k = ∅ (Section 3.1).

"A_0 = V, and for 1 <= i <= k-1 we get A_i by randomly sampling every vertex
in A_{i-1} with probability n^{-1/k}."  Each vertex's membership chain is an
independent sequence of coin flips, so a vertex's *level* — the largest
``i`` with ``u ∈ A_i`` — is a truncated geometric variable, and sampling
levels directly is an exact, vectorized implementation of the paper's
per-set coin flips.

Two generalizations needed elsewhere in the paper:

* the CDG construction (Lemma 4.5) runs Thorup–Zwick **on a density net**:
  the universe is ``N ⊆ V`` and the sampling probability is
  ``(10/ε · ln n)^{-1/k}`` instead of ``n^{-1/k}``.  ``universe`` and ``q``
  expose exactly those knobs.  Vertices outside the universe get level -1
  ("not even in A_0") and are never sources.
* [TZ05] requires ``A_{k-1} ≠ ∅`` for the query to be well defined (the
  paper's Lemma 3.2 uses ``p_{k-1}(u) ∈ B_{k-1}(v)`` as its backstop), and
  handles the ``A_{k-1} = ∅`` event by resampling; we do the same
  (``ensure_top_nonempty``).

Distribution note: although we sample the whole level array centrally (so
that the distributed run and the centralized baseline can share one random
outcome), each entry depends only on that vertex's own coins — in a real
deployment every node draws its level locally with zero communication,
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Hierarchy:
    """A concrete sampled hierarchy over ``n`` vertices.

    ``level[u]`` is the largest ``i`` with ``u ∈ A_i`` (-1 if ``u`` is not
    in the universe, i.e. not even in A_0 — the CDG-on-a-net case).
    """

    n: int
    k: int
    q: float
    level: np.ndarray  # shape (n,), dtype int64

    def __post_init__(self):
        if self.level.shape != (self.n,):
            raise ConfigError("level array shape mismatch")

    # ------------------------------------------------------------------
    def universe(self) -> np.ndarray:
        """Members of A_0."""
        return np.flatnonzero(self.level >= 0)

    def A(self, i: int) -> np.ndarray:
        """Members of A_i (``A_k`` and beyond are empty)."""
        if i >= self.k:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(self.level >= i)

    def exact_level(self, i: int) -> np.ndarray:
        """Members of ``A_i \\ A_{i+1}`` — the sources of phase ``i``."""
        return np.flatnonzero(self.level == i)

    def level_of(self, u: int) -> int:
        return int(self.level[u])

    def sizes(self) -> list[int]:
        """``[|A_0|, |A_1|, ..., |A_{k-1}|]``."""
        return [int((self.level >= i).sum()) for i in range(self.k)]


def sample_hierarchy(n: int, k: int, q: Optional[float] = None,
                     universe: Optional[Sequence[int]] = None,
                     seed: SeedLike = None,
                     ensure_top_nonempty: bool = True,
                     max_resample: int = 1000) -> Hierarchy:
    """Sample a hierarchy per Section 3.1.

    Parameters
    ----------
    n:
        Number of vertices of the host graph (levels are indexed by vertex).
    k:
        Number of levels (stretch parameter); ``k >= 1``.
    q:
        Per-step sampling probability.  Default ``|universe|^{-1/k}``
        (the paper's ``n^{-1/k}`` when the universe is all of V).
    universe:
        Members of A_0 (default: all vertices).  Vertices outside get
        level -1.
    ensure_top_nonempty:
        Resample until ``A_{k-1} != ∅`` (at most ``max_resample`` times),
        mirroring [TZ05].  With the default ``q`` the failure probability
        per attempt is tiny, so this is almost always a single draw.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    rng = ensure_rng(seed)
    if universe is None:
        members = np.arange(n, dtype=np.int64)
    else:
        members = np.unique(np.asarray(list(universe), dtype=np.int64))
        if members.size and (members[0] < 0 or members[-1] >= n):
            raise ConfigError("universe members out of range")
    if members.size == 0:
        raise ConfigError("universe must be nonempty")
    if q is None:
        q = float(members.size) ** (-1.0 / k)
    if not (0.0 < q <= 1.0):
        raise ConfigError(f"sampling probability must be in (0, 1], got {q}")

    for _ in range(max(1, max_resample)):
        # level = number of consecutive successful promotions, capped at k-1.
        # Drawing the full promotion matrix reproduces the paper's per-set
        # coin flips exactly (each column i is the A_i -> A_{i+1} round).
        levels = np.full(n, -1, dtype=np.int64)
        if k == 1:
            levels[members] = 0
        else:
            flips = ensure_rng(rng).random((members.size, k - 1)) < q
            # first failed promotion determines the level
            failed = ~flips
            first_fail = np.where(failed.any(axis=1),
                                  failed.argmax(axis=1), k - 1)
            levels[members] = first_fail
        h = Hierarchy(n=n, k=k, q=q, level=levels)
        if not ensure_top_nonempty or h.A(k - 1).size > 0:
            return h
    raise ConfigError(
        f"could not sample a hierarchy with nonempty A_{k-1} after "
        f"{max_resample} attempts (|universe|={members.size}, k={k}, q={q})")
