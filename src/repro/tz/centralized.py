"""Centralized Thorup–Zwick construction — the differential-testing baseline.

This is the [TZ05] preprocessing the paper distributes: pivots via
multi-source Dijkstra per level, bunches via truncated "cluster-growing"
Dijkstra per source.  Everything uses the :class:`~repro.distkey.DistKey`
tie-breaking, so for a shared :class:`~repro.tz.hierarchy.Hierarchy` the
output is *identical* (not just equivalent) to the distributed construction
— the core correctness instrument of this reproduction (tests assert the
equality sketch-by-sketch).

A direct-from-definition :func:`brute_force_bunches` (O(k n^2), usable only
on small graphs) provides a third, independently derived answer for
three-way differential tests.

Complexity: pivots cost ``O(k m log n)``; cluster growing costs
``O((Σ_w |C(w)|) log n)`` which is ``O(k n^{1+1/k} log n)`` in expectation —
the classic TZ preprocessing bound — so the centralized twin comfortably
handles the large-``n`` statistics runs (experiments E1/E2) that the
round-faithful simulator cannot.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional

import numpy as np

from repro.distkey import INF_KEY, DistKey
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp
from repro.rng import SeedLike
from repro.tz.hierarchy import Hierarchy, sample_hierarchy
from repro.tz.sketch import TZSketch


def multi_source_dijkstra_keys(graph: Graph, sources: np.ndarray) -> list[DistKey]:
    """Per node, the minimum ``DistKey(d(u, s), s)`` over all ``s`` in
    ``sources`` — i.e. the distance to the set with its witness, under the
    library-wide tie-breaking (closest source, smallest ID among ties)."""
    best: list[DistKey] = [INF_KEY] * graph.n
    pq: list[tuple[float, int, int]] = []
    for s in sources:
        s = int(s)
        best[s] = DistKey(0.0, s)
        pq.append((0.0, s, s))
    heapq.heapify(pq)
    while pq:
        d, origin, u = heapq.heappop(pq)
        if (d, origin) > (best[u].dist, best[u].node):
            continue
        for v, w in graph.neighbors(u).items():
            cand = DistKey(d + w, origin)
            if cand < best[v]:
                best[v] = cand
                heapq.heappush(pq, (cand.dist, origin, v))
    return best


def compute_pivot_keys(graph: Graph, hierarchy: Hierarchy) -> list[list[DistKey]]:
    """``pivot_keys[i][u] = DistKey(d(u, A_i), p_i(u))`` for ``i = 0..k``.

    Level ``k`` is the all-infinite sentinel (``d(u, A_k) = ∞``, paper
    Section 3.1).
    """
    keys: list[list[DistKey]] = []
    for i in range(hierarchy.k):
        a_i = hierarchy.A(i)
        if a_i.size == 0:
            raise ConfigError(f"A_{i} is empty — hierarchy violates [TZ05] "
                              f"(use ensure_top_nonempty)")
        keys.append(multi_source_dijkstra_keys(graph, a_i))
    keys.append([INF_KEY] * graph.n)
    return keys


def cluster_of(graph: Graph, w: int, level: int,
               next_pivot_keys: list[DistKey]) -> dict[int, float]:
    """Grow the cluster ``C(w)`` (paper Section 3.2) by truncated Dijkstra.

    ``u ∈ C(w)`` iff ``DistKey(d(u, w), w) < DistKey(d(u, A_{level+1}),
    p_{level+1}(u))`` — the strict inequality of the definition with the
    library's tie-breaking.  Clusters are connected (any node on a shortest
    path from a cluster member to ``w`` is itself in the cluster — the
    consistency argument extends to ``DistKey`` ties), so the truncated
    Dijkstra explores exactly ``C(w)`` plus its boundary.
    """
    out: dict[int, float] = {}
    dist: dict[int, float] = {w: 0.0}
    pq: list[tuple[float, int]] = [(0.0, w)]
    while pq:
        d, u = heapq.heappop(pq)
        if d > dist.get(u, math.inf):
            continue
        out[u] = d
        for v, wt in graph.neighbors(u).items():
            cand = d + wt
            if cand >= dist.get(v, math.inf):
                continue
            if not DistKey(cand, w) < next_pivot_keys[v]:
                continue
            dist[v] = cand
            heapq.heappush(pq, (cand, v))
    return out


def cluster_table(graph: Graph, hierarchy: Hierarchy,
                  pivot_keys: list[list[DistKey]], sources,
                  ) -> list[tuple[int, int, dict[int, float]]]:
    """Grow the clusters rooted at ``sources``: ``(w, level(w), C(w))``
    triples.  The per-root computations are independent, which is exactly
    the seam the parallel builder (:mod:`repro.service.parallel`) shards
    across worker processes."""
    out = []
    for w in sources:
        w = int(w)
        lvl = hierarchy.level_of(w)
        out.append((w, lvl, cluster_of(graph, w, lvl, pivot_keys[lvl + 1])))
    return out


def merge_cluster_tables(n: int,
                         tables: list[list[tuple[int, int, dict[int, float]]]],
                         ) -> list[dict[int, tuple[float, int]]]:
    """Invert cluster tables into bunches (``u ∈ C(w) ⟺ w ∈ B(u)``,
    paper Section 3.2), inserting in canonical ``(level, w)`` order so the
    result — including dict iteration order, hence serialized bytes — is
    independent of how the roots were sharded across tables."""
    entries = sorted(((lvl, w, cluster)
                      for table in tables for w, lvl, cluster in table),
                     key=lambda e: (e[0], e[1]))
    bunches: list[dict[int, tuple[float, int]]] = [dict() for _ in range(n)]
    for lvl, w, cluster in entries:
        for u, d in cluster.items():
            bunches[u][w] = (d, lvl)
    return bunches


def compute_bunches(graph: Graph, hierarchy: Hierarchy,
                    pivot_keys: Optional[list[list[DistKey]]] = None,
                    ) -> list[dict[int, tuple[float, int]]]:
    """All bunches, via cluster growing (bunches invert clusters:
    ``u ∈ C(w) ⟺ w ∈ B(u)``, paper Section 3.2)."""
    if pivot_keys is None:
        pivot_keys = compute_pivot_keys(graph, hierarchy)
    table = cluster_table(graph, hierarchy, pivot_keys,
                          hierarchy.universe())
    return merge_cluster_tables(graph.n, [table])


def brute_force_bunches(graph: Graph, hierarchy: Hierarchy,
                        dist_matrix: Optional[np.ndarray] = None,
                        ) -> list[dict[int, tuple[float, int]]]:
    """Bunches straight from the Section 3.1 definition (O(k n^2)).

    Independent of the Dijkstra-based path (uses the APSP matrix), so a
    three-way agreement with :func:`compute_bunches` and the distributed
    construction is strong evidence of correctness.
    """
    d = apsp(graph) if dist_matrix is None else dist_matrix
    bunches: list[dict[int, tuple[float, int]]] = [dict() for _ in graph.nodes()]
    for u in graph.nodes():
        for i in range(hierarchy.k):
            nxt = hierarchy.A(i + 1)
            thr = INF_KEY
            for w in nxt:
                key = DistKey(float(d[u, w]), int(w))
                if key < thr:
                    thr = key
            for w in hierarchy.exact_level(i):
                w = int(w)
                key = DistKey(float(d[u, w]), w)
                if key < thr:
                    bunches[u][w] = (key.dist, i)
    return bunches


def assemble_sketches(n: int, k: int, pivot_keys: list[list[DistKey]],
                      bunches: list[dict[int, tuple[float, int]]],
                      ) -> list[TZSketch]:
    """Package pivots + bunches into per-node :class:`TZSketch` labels."""
    sketches = []
    for u in range(n):
        pivots = tuple((pivot_keys[i][u].node, pivot_keys[i][u].dist)
                       for i in range(k))
        sketches.append(TZSketch(node=u, k=k, pivots=pivots,
                                 bunch=dict(bunches[u])))
    return sketches


def build_tz_sketches_centralized(graph: Graph, k: Optional[int] = None,
                                  hierarchy: Optional[Hierarchy] = None,
                                  seed: SeedLike = None,
                                  ) -> tuple[list[TZSketch], Hierarchy]:
    """End-to-end centralized [TZ05] preprocessing.

    Provide either ``k`` (a hierarchy is sampled with the paper's
    ``n^{-1/k}``) or an explicit ``hierarchy`` (for sharing randomness with
    a distributed run).
    """
    if hierarchy is None:
        if k is None:
            raise ConfigError("provide k or hierarchy")
        hierarchy = sample_hierarchy(graph.n, k, seed=seed)
    elif k is not None and k != hierarchy.k:
        raise ConfigError(f"k={k} conflicts with hierarchy.k={hierarchy.k}")
    pivot_keys = compute_pivot_keys(graph, hierarchy)
    bunches = compute_bunches(graph, hierarchy, pivot_keys)
    return assemble_sketches(graph.n, hierarchy.k, pivot_keys, bunches), hierarchy
