"""The Thorup–Zwick label (sketch) and its O(k)-time distance estimation.

A label ``L(u)`` (paper Section 3.1) consists of

* the pivots ``p_i(u)`` — the vertex of ``A_i`` closest to ``u`` — with
  their distances, for ``i = 0..k-1``, and
* the bunch ``B(u) = ∪_i B_i(u)`` with distances, where
  ``B_i(u) = {w ∈ A_i : d(u,w) < d(u, A_{i+1})}``.

Every bunch member belongs to exactly one level (a member of ``A_{i+1}``
can never satisfy the strict level-``i`` inequality), so the bunch is a
plain ``vertex -> (distance, level)`` mapping.

Two query algorithms are provided:

* :func:`estimate_distance` with ``method="paper"`` — the level-scan of the
  paper's Lemma 3.2: find the first level ``i`` at which ``p_i(u) ∈ B_i(v)``
  or ``p_i(v) ∈ B_i(u)`` and route through that pivot.
* ``method="classic"`` — the original [TZ05] bunch-walk (``w <- p_i(u)``,
  swapping ``u`` and ``v`` each iteration until ``w ∈ B(v)``).

Both return an estimate ``d'`` with ``d(u,v) <= d' <= (2k-1) d(u,v)`` in
O(k) dictionary operations; experiment E2/A3 compares them empirically.

Size accounting follows the paper: a label stores IDs and distances, so its
size is ``2k`` words for the pivots plus ``2|B(u)|`` words for the bunch
(the level tag of a bunch entry rides along in the ID word; see
:mod:`repro.words`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from repro.errors import QueryError
from repro.words import entry_words


@dataclass(frozen=True)
class TZSketch:
    """The label ``L(u)`` of one vertex.

    Attributes
    ----------
    node:
        The vertex this label belongs to.
    k:
        Number of hierarchy levels (stretch parameter).
    pivots:
        ``pivots[i] = (p_i(u), d(u, p_i(u)))`` for ``i = 0..k-1``;
        ``pivots[0]`` is always ``(u, 0.0)``.
    bunch:
        ``v -> (d(u, v), level-of-v)`` for every ``v ∈ B(u)``.
    """

    node: int
    k: int
    pivots: tuple[tuple[int, float], ...]
    bunch: dict[int, tuple[float, int]]

    def __post_init__(self):
        if len(self.pivots) != self.k:
            raise QueryError(
                f"label of {self.node}: expected {self.k} pivots, "
                f"got {len(self.pivots)}")

    # ------------------------------------------------------------------
    def size_words(self) -> int:
        """Label size in words (paper's accounting: IDs + distances)."""
        return entry_words() * (len(self.pivots) + len(self.bunch))

    def bunch_size(self) -> int:
        return len(self.bunch)

    def bunch_at_level(self, i: int) -> dict[int, float]:
        """``B_i(u)`` with distances (mostly for tests/analysis)."""
        return {v: d for v, (d, lvl) in self.bunch.items() if lvl == i}

    def in_bunch_at_level(self, v: int, i: int) -> bool:
        entry = self.bunch.get(v)
        return entry is not None and entry[1] == i

    def bunch_distance(self, v: int) -> float:
        entry = self.bunch.get(v)
        if entry is None:
            raise QueryError(f"{v} not in bunch of {self.node}")
        return entry[0]


QueryMethod = Literal["paper", "classic"]


def estimate_distance(su: TZSketch, sv: TZSketch,
                      method: QueryMethod = "paper") -> float:
    """Estimate ``d(u, v)`` from the two labels alone (Lemma 3.2).

    Never underestimates; overestimates by at most ``2k - 1``.
    """
    if su.k != sv.k:
        raise QueryError(f"labels have different k: {su.k} vs {sv.k}")
    if su.node == sv.node:
        return 0.0
    if method == "paper":
        return _estimate_paper(su, sv)
    if method == "classic":
        return _estimate_classic(su, sv)
    raise QueryError(f"unknown query method {method!r}")


def _estimate_paper(su: TZSketch, sv: TZSketch) -> float:
    """Lemma 3.2: scan levels; route through the first shared pivot/bunch hit."""
    for i in range(su.k):
        pu, du = su.pivots[i]
        ev = sv.bunch.get(pu)
        if ev is not None and ev[1] == i:
            return du + ev[0]
        pv, dv = sv.pivots[i]
        eu = su.bunch.get(pv)
        if eu is not None and eu[1] == i:
            return dv + eu[0]
    raise QueryError(
        f"labels of {su.node} and {sv.node} share no level "
        f"(A_{su.k - 1} membership is inconsistent between them)")


def _estimate_classic(su: TZSketch, sv: TZSketch) -> float:
    """The original [TZ05] bunch-walk query."""
    a, b = su, sv
    w, dw = a.node, 0.0
    for i in range(su.k):
        eb = b.bunch.get(w)
        if eb is not None:
            return dw + eb[0]
        a, b = b, a
        w, dw = a.pivots[i + 1] if i + 1 < a.k else (None, math.inf)
        if w is None:
            break
    raise QueryError(
        f"bunch walk between {su.node} and {sv.node} fell off the hierarchy")


def query_level(su: TZSketch, sv: TZSketch) -> int:
    """The level ``i*`` at which the paper's query terminates (analysis aid:
    the stretch guarantee is ``2 i* + 1``)."""
    for i in range(su.k):
        pu, _ = su.pivots[i]
        ev = sv.bunch.get(pu)
        if ev is not None and ev[1] == i:
            return i
        pv, _ = sv.pivots[i]
        eu = su.bunch.get(pv)
        if eu is not None and eu[1] == i:
            return i
    raise QueryError("no terminating level")
