"""Distributed Thorup–Zwick sketch construction — paper Algorithm 2 + §3.3.

The protocol runs ``k`` phases **top-down** (``i = k-1`` … ``0``).  In phase
``i`` the sources are ``A_i \\ A_{i+1}`` and every node ``u`` participates
for a source ``v`` only while ``DistKey(d'(v), v) < DistKey(d(u, A_{i+1}),
p_{i+1}(u))`` — the threshold computed by ``u`` itself at the end of phase
``i+1``.  At the end of phase ``i`` the accepted sources *are* ``B_i(u)``,
and the level-``i`` pivot follows from the recursion
``d(u, A_i) = min(min_{w ∈ B_i(u)} d(u, w), d(u, A_{i+1}))``.

Three synchronization modes decide *when a phase ends*:

``oracle``
    The simulator detects global quiescence and advances every node at
    once.  Zero protocol overhead; rounds are a lower bound on the honest
    protocols.  (This is a measurement device, not a CONGEST protocol.)
``known_smax``
    The paper's Section 3.2 assumption — "every node knows S" — made
    concrete: every phase gets a fixed round budget derived from ``S``
    (``budget="whp"``: the Lemma 3.7 bound ``O(n^{1/k} S log n)`` with
    explicit constants; ``budget="safe"``: the deterministic ``S·(n+2)``
    fallback).  A message straggling across a phase boundary raises
    :class:`~repro.errors.ProtocolError` — insufficient budgets fail loudly
    rather than silently corrupting sketches.
``echo``
    The full Section 3.3 machinery, no global knowledge beyond ``n``:
    leader election + BFS tree (max-ID flooding), per-message ECHO
    acknowledgements (:class:`~repro.algorithms.termination.EchoBookkeeper`),
    COMPLETE convergecast up the tree, and START broadcast down the tree.
    A node also advances on *seeing* next-phase data (data can outrun the
    START wave), which is safe because the leader only releases phase
    ``i-1`` after every phase-``i`` cascade has fully settled.

Echo-mode edge discipline: ECHO/COMPLETE/START messages queue per edge and
drain one per edge per round with priority over data; a data broadcast
(which needs *all* incident edges) is deferred to a control-silent round.
The paper bounds this overhead at "at most double the messages and rounds
plus negligible extras"; experiment E4 measures the actual factor.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional, Union


from repro.algorithms.bfs_tree import BFSTreeProgram, TreeInfo
from repro.algorithms.round_robin import MultiSourceEngine
from repro.algorithms.termination import EchoBookkeeper
from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.network import Simulator
from repro.congest.node import NodeProgram
from repro.distkey import INF_KEY, DistKey
from repro.errors import ConfigError, ProtocolError
from repro.graphs.graph import Graph
from repro.rng import SeedLike
from repro.tz.hierarchy import Hierarchy, sample_hierarchy
from repro.tz.sketch import TZSketch

DATA, ECHO, COMPLETE, START = "tzd", "tze", "tzc", "tzs"


# ======================================================================
# shared phase bookkeeping
# ======================================================================
class _TZPhasedProgram(NodeProgram):
    """State common to all three synchronization modes."""

    def __init__(self, node: int, k: int, level: int,
                 phase_marker: Optional[RunMetrics] = None):
        self.node = node
        self.k = k
        self.level = level  # this node's own hierarchy level (its only
        #                     non-local knowledge is k and n, as in the paper)
        self.phase = k      # "before the first phase"
        self.pivot_keys: dict[int, DistKey] = {k: INF_KEY}
        self.bunch: dict[int, tuple[float, int]] = {}
        self.engine: Optional[MultiSourceEngine] = None
        self.done = False
        self.max_queue_len = 0
        self._phase_marker = phase_marker

    # ------------------------------------------------------------------
    def _make_engine(self, i: int, listener=None) -> MultiSourceEngine:
        return MultiSourceEngine(
            self.node, kind=DATA, threshold=self.pivot_keys[i + 1],
            listener=listener,
            payload_fn=lambda src, d, _p=i: (DATA, _p, src, d))

    def _finalize_phase(self) -> None:
        """Record ``B_i(u)`` and fold the level-``i`` pivot recursion."""
        eng = self.engine
        if eng is None:
            return
        i = self.phase
        best = self.pivot_keys[i + 1]
        for src, d in eng.dist.items():
            self.bunch[src] = (d, i)
            key = DistKey(d, src)
            if key < best:
                best = key
        self.pivot_keys[i] = best
        self.max_queue_len = max(self.max_queue_len, eng.max_queue_len)

    def _mark_phase(self, i: int) -> None:
        if self._phase_marker is not None:
            self._phase_marker.begin_phase(f"phase-{i}")

    def finished(self) -> bool:
        return self.done

    # ------------------------------------------------------------------
    def sketch(self) -> TZSketch:
        if not self.done:
            raise ProtocolError(f"node {self.node}: sketch read before "
                                f"protocol completion")
        pivots = tuple((self.pivot_keys[i].node, self.pivot_keys[i].dist)
                       for i in range(self.k))
        return TZSketch(node=self.node, k=self.k, pivots=pivots,
                        bunch=dict(self.bunch))

    def result(self) -> TZSketch:
        return self.sketch()


# ======================================================================
# oracle synchronization
# ======================================================================
class TZOracleProgram(_TZPhasedProgram):
    """Phases advance at simulator-detected global quiescence."""

    def on_start(self, ctx: NodeContext) -> None:
        self._advance(ctx)

    def _advance(self, ctx: NodeContext) -> None:
        self._finalize_phase()
        self.phase -= 1
        if self.phase < 0:
            self.engine = None
            self.done = True
            return
        self._mark_phase(self.phase)
        self.engine = self._make_engine(self.phase)
        if self.level == self.phase:
            self.engine.enqueue_source()

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        eng = self.engine
        if eng is None:
            return
        for w, payload in inbox.items():
            if payload[0] != DATA:
                continue
            if payload[1] != self.phase:
                raise ProtocolError(
                    f"node {self.node}: phase-{payload[1]} data in phase "
                    f"{self.phase} under oracle sync")
            eng.accept(payload[2], payload[3], w, ctx.edge_weight(w))
        eng.serve(ctx)

    def on_quiescent(self, ctx: NodeContext) -> None:
        if not self.done:
            self._advance(ctx)

    def has_pending(self) -> bool:
        return self.engine is not None and self.engine.pending()


# ======================================================================
# known-S synchronization
# ======================================================================
class TZKnownSProgram(_TZPhasedProgram):
    """Fixed per-phase round budgets (the paper's "every node knows S")."""

    def __init__(self, node: int, k: int, level: int, budgets: list[int],
                 phase_marker: Optional[RunMetrics] = None):
        super().__init__(node, k, level, phase_marker)
        if len(budgets) != k:
            raise ConfigError("need one budget per phase")
        self.budgets = budgets  # indexed by phase i
        self.phase_end = 0

    def on_start(self, ctx: NodeContext) -> None:
        self._advance()

    def _advance(self) -> None:
        self._finalize_phase()
        self.phase -= 1
        if self.phase < 0:
            self.engine = None
            self.done = True
            return
        self._mark_phase(self.phase)
        self.phase_end += self.budgets[self.phase]
        self.engine = self._make_engine(self.phase)
        if self.level == self.phase:
            self.engine.enqueue_source()

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        if not self.done and ctx.round > self.phase_end:
            self._advance()
        if self.done:
            if inbox:
                raise ProtocolError(
                    f"node {self.node}: message after protocol end — "
                    f"phase budgets too small")
            return
        eng = self.engine
        for w, payload in inbox.items():
            if payload[0] != DATA:
                continue
            if payload[1] != self.phase:
                raise ProtocolError(
                    f"node {self.node}: phase-{payload[1]} data in phase "
                    f"{self.phase} — budget for phase {payload[1]} too small")
            eng.accept(payload[2], payload[3], w, ctx.edge_weight(w))
        eng.serve(ctx)

    def has_pending(self) -> bool:
        return not self.done


def phase_budgets(n: int, k: int, S: int, mode: str = "whp",
                  universe_size: Optional[int] = None,
                  whp_constant: float = 3.0) -> list[int]:
    """Per-phase round budgets for known-S synchronization.

    ``whp`` instantiates Lemma 3.7's ``O(n^{1/k} S log n)`` with the
    explicit Lemma 3.6 constant (bunches exceed ``c · U^{1/k} ln U`` with
    probability ``<= 1/U^c``); ``safe`` is the deterministic fallback
    ``S · (U + 2)`` (a queue can never hold more than ``U`` sources).
    """
    U = n if universe_size is None else universe_size
    if S < 1:
        raise ConfigError("S must be >= 1")
    if mode == "safe":
        per = S * (U + 2) + 2
    elif mode == "whp":
        occupancy = math.ceil(whp_constant * U ** (1.0 / k) * math.log(max(U, 2))) + 2
        per = S * occupancy + 2
    else:
        raise ConfigError(f"unknown budget mode {mode!r}")
    return [int(per)] * k


# ======================================================================
# echo synchronization (paper Section 3.3)
# ======================================================================
class TZEchoProgram(_TZPhasedProgram):
    """Full in-protocol termination detection.

    Wire formats (word counts within the Section 2.2 budget):

    * ``("tzd", phase, source, dist)`` — Bellman-Ford data broadcast,
    * ``("tze", phase, source, quoted-dist)`` — ECHO of one data message,
    * ``("tzc", phase)`` — COMPLETE, child → parent on the BFS tree,
    * ``("tzs", phase)`` — START, parent → children (phase ``-1`` = done),
    * ``("elect", id, hops)`` / ``("adopt",)`` — setup (see
      :mod:`repro.algorithms.bfs_tree`).
    """

    def __init__(self, node: int, n: int, k: int, level: int,
                 horizon: Optional[int] = None, settle: int = 1,
                 phase_marker: Optional[RunMetrics] = None):
        super().__init__(node, k, level, phase_marker)
        self.n = n
        self.stage = "elect"
        self.elect = BFSTreeProgram(node, n,
                                    horizon=(n + 1) if horizon is None else horizon,
                                    settle=settle)
        self.tree: Optional[TreeInfo] = None
        self.tree_neighbors: tuple[int, ...] = ()
        self.book: Optional[EchoBookkeeper] = None
        #: neighbor -> FIFO of control payloads (COMPLETE/START forwards)
        self.control: dict[int, deque] = {}
        self.self_complete = False
        self.complete_sent = False
        self.children_complete: dict[int, set[int]] = {}
        self._start_forwarded: set[int] = set()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _push_control(self, to: int, payload: tuple) -> None:
        self.control.setdefault(to, deque()).append(payload)

    def _any_control(self) -> bool:
        return any(q for q in self.control.values())

    def _on_source_complete(self) -> None:
        self.self_complete = True

    # ------------------------------------------------------------------
    # phase lifecycle
    # ------------------------------------------------------------------
    def _enter_phase(self, i: int) -> None:
        self.phase = i
        self._mark_phase(i)
        self.complete_sent = False
        self.book = EchoBookkeeper(self.node, self.tree_neighbors,
                                   on_complete=self._on_source_complete)
        self.engine = self._make_engine(i, listener=self.book)
        if self.level == i:
            self.self_complete = False  # complete once our cascade settles
            self.engine.enqueue_source()
        else:
            self.self_complete = True   # non-sources are complete up front

    def _advance_phase(self) -> None:
        if self.book is not None and not self.book.quiet():
            raise ProtocolError(
                f"node {self.node}: advancing out of phase {self.phase} "
                f"with unsettled echoes — termination detection bug")
        self._finalize_phase()
        nxt = self.phase - 1
        if nxt < 0:
            self.phase = -1
            self.engine = None
            self.book = None
            self.done = True
            return
        self._enter_phase(nxt)

    def _handle_start(self, ph: int, frm: int) -> None:
        if frm != self.tree.parent:
            raise ProtocolError(f"node {self.node}: START from non-parent {frm}")
        if ph == self.phase - 1:
            self._advance_phase()
        elif ph >= self.phase:
            pass  # already advanced via next-phase data
        else:
            raise ProtocolError(
                f"node {self.node}: START({ph}) while in phase {self.phase} "
                f"skipped a phase — FIFO control ordering violated")
        self._forward_start(ph)

    def _forward_start(self, ph: int) -> None:
        if ph in self._start_forwarded:
            return
        self._start_forwarded.add(ph)
        for c in self.tree.children:
            self._push_control(c, (START, ph))

    def _maybe_complete(self) -> None:
        """COMPLETE convergecast: fire once self-complete and all children
        of the BFS tree reported for the current phase."""
        if self.done or self.complete_sent or not self.self_complete:
            return
        reported = self.children_complete.get(self.phase, set())
        if not reported.issuperset(self.tree.children):
            return
        self.complete_sent = True
        if self.tree.parent is not None:
            self._push_control(self.tree.parent, (COMPLETE, self.phase))
        else:
            # leader: the phase is globally over — release the next one
            self._forward_start(self.phase - 1)
            self._advance_phase()

    # ------------------------------------------------------------------
    # NodeProgram interface
    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        self.elect.on_start(ctx)

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        if self.stage == "elect":
            self.elect.on_round(ctx, inbox)
            if not self.elect.done:
                return
            self.tree = self.elect.tree()
            self.tree_neighbors = ctx.neighbors
            self.stage = "run"
            self._enter_phase(self.k - 1)
            inbox = {}

        # 1. absorb this round's mail
        for w, payload in inbox.items():
            kind = payload[0]
            if kind == DATA:
                _, ph, src, a = payload
                if ph == self.phase - 1:
                    # data outran the START wave: the leader has already
                    # certified phase `self.phase` complete, so advance now
                    self._advance_phase()
                elif ph != self.phase:
                    raise ProtocolError(
                        f"node {self.node}: phase-{ph} data while in phase "
                        f"{self.phase}")
                self.engine.accept(src, a, w, ctx.edge_weight(w))
            elif kind == ECHO:
                self.book.receive_echo(w, payload[2], payload[3])
            elif kind == COMPLETE:
                if w not in self.tree.children:
                    raise ProtocolError(
                        f"node {self.node}: COMPLETE from non-child {w}")
                self.children_complete.setdefault(payload[1], set()).add(w)
            elif kind == START:
                self._handle_start(payload[1], w)

        # 2. convergecast bookkeeping (may trigger leader phase release)
        self._maybe_complete()

        # 3. edge discipline: control messages first, one per edge ...
        sent_control = False
        for v in ctx.neighbors:
            q = self.control.get(v)
            if q:
                ctx.send(v, q.popleft())
                sent_control = True
                continue
            if self.book is not None:
                owed = self.book.pop_owed(v)
                if owed is not None:
                    ctx.send(v, (ECHO, self.phase, owed[0], owed[1]))
                    sent_control = True
        # ... then (in a control-silent round) one data broadcast
        if not sent_control and self.engine is not None:
            self.engine.serve(ctx)

    def has_pending(self) -> bool:
        if self.stage == "elect":
            return True
        if not self.done:
            return True
        return self._any_control()


# ======================================================================
# driver
# ======================================================================
@dataclass
class TZDistributedResult:
    """Everything a distributed build hands back."""

    sketches: list[TZSketch]
    hierarchy: Hierarchy
    metrics: RunMetrics
    sync: str
    max_queue_len: int
    tree_depth: Optional[int] = None  # echo mode only

    def sizes_words(self) -> list[int]:
        return [s.size_words() for s in self.sketches]


def build_tz_sketches_distributed(
        graph: Graph,
        k: Optional[int] = None,
        hierarchy: Optional[Hierarchy] = None,
        sync: str = "oracle",
        seed: SeedLike = None,
        S: Optional[int] = None,
        budget: Union[str, list[int]] = "whp",
        phase_metrics: bool = True,
        max_rounds: int = 5_000_000,
) -> TZDistributedResult:
    """Run the distributed Thorup–Zwick construction (Theorem 3.8).

    Parameters
    ----------
    graph:
        Connected weighted graph (the CONGEST network).
    k / hierarchy:
        Stretch parameter (a hierarchy is sampled with the paper's
        ``n^{-1/k}``), or an explicit hierarchy to share randomness with a
        centralized twin.
    sync:
        ``"oracle"``, ``"known_smax"`` or ``"echo"`` (see module docstring).
    S:
        Shortest-path diameter; required by ``known_smax`` only.
    budget:
        ``"whp"`` / ``"safe"`` / explicit per-phase round list, for
        ``known_smax``.
    """
    if hierarchy is None:
        if k is None:
            raise ConfigError("provide k or hierarchy")
        hierarchy = sample_hierarchy(graph.n, k, seed=seed)
    elif k is not None and k != hierarchy.k:
        raise ConfigError(f"k={k} conflicts with hierarchy.k={hierarchy.k}")
    kk = hierarchy.k
    levels = hierarchy.level

    marker_holder: list[Optional[RunMetrics]] = [None]

    if sync == "oracle":
        marker_node = 0

        def factory(u: int) -> NodeProgram:
            marker = marker_holder[0] if u == marker_node else None
            return TZOracleProgram(u, kk, int(levels[u]), phase_marker=marker)
    elif sync == "known_smax":
        if S is None:
            raise ConfigError("known_smax sync requires S")
        if isinstance(budget, str):
            budgets = phase_budgets(graph.n, kk, S, mode=budget,
                                    universe_size=int(hierarchy.universe().size))
        else:
            budgets = [int(b) for b in budget]
        marker_node = 0

        def factory(u: int) -> NodeProgram:
            marker = marker_holder[0] if u == marker_node else None
            return TZKnownSProgram(u, kk, int(levels[u]), budgets,
                                   phase_marker=marker)
    elif sync == "echo":
        # the max-ID node wins the election and drives phase transitions,
        # so it is the sharpest phase marker
        marker_node = graph.n - 1

        def factory(u: int) -> NodeProgram:
            marker = marker_holder[0] if u == marker_node else None
            return TZEchoProgram(u, graph.n, kk, int(levels[u]),
                                 phase_marker=marker)
    else:
        raise ConfigError(f"unknown sync mode {sync!r}")

    metrics = RunMetrics()
    if phase_metrics:
        marker_holder[0] = metrics
    sim = Simulator(graph, factory, seed=seed, metrics=metrics)
    res = sim.run(max_rounds=max_rounds)

    sketches = [p.sketch() for p in res.programs]
    max_q = max(p.max_queue_len for p in res.programs)
    depth = None
    if sync == "echo":
        depth = max(p.tree.depth for p in res.programs)
    return TZDistributedResult(sketches=sketches, hierarchy=hierarchy,
                               metrics=res.metrics, sync=sync,
                               max_queue_len=max_q, tree_depth=depth)


