"""Thorup–Zwick distance sketches (systems S8–S11).

* :mod:`repro.tz.hierarchy` — the sampled set hierarchy A_0 ⊇ A_1 ⊇ … ⊇ A_k.
* :mod:`repro.tz.centralized` — the centralized [TZ05] construction used as
  the differential-testing baseline (and for large-n statistics).
* :mod:`repro.tz.sketch` — the label data structure and the O(k)-time
  distance estimation of Lemma 3.2.
* :mod:`repro.tz.distributed` — the paper's contribution: Algorithm 2 run
  phase-by-phase in the CONGEST simulator (Theorem 3.8), with oracle,
  known-S and ECHO (Section 3.3) synchronization.
"""

from repro.tz.hierarchy import Hierarchy, sample_hierarchy
from repro.tz.sketch import TZSketch, estimate_distance
from repro.tz.centralized import (
    build_tz_sketches_centralized,
    compute_pivot_keys,
    compute_bunches,
    brute_force_bunches,
)
from repro.tz.distributed import build_tz_sketches_distributed, TZDistributedResult

__all__ = [
    "Hierarchy",
    "sample_hierarchy",
    "TZSketch",
    "estimate_distance",
    "build_tz_sketches_centralized",
    "compute_pivot_keys",
    "compute_bunches",
    "brute_force_bunches",
    "build_tz_sketches_distributed",
    "TZDistributedResult",
]
