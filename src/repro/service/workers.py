"""Multi-process shard serving: a worker pool behind the landmark shards.

Every :class:`~repro.service.index.IndexStore` decomposes a query batch
into per-shard probe tasks (``plan`` → ``shard_answer`` × S → ``finish``;
see the protocol contract).  :class:`ShardServer` runs that decomposition
on a **persistent** ``multiprocessing`` pool::

    master                         workers (persistent pool)
    ------                         -------------------------
    plan(us, vs) ──┬─ request[0] ─▶ shard_answer(0, ·) ─┐
                   ├─ request[1] ─▶ shard_answer(1, ·) ─┤
                   └─ request[S-1]▶ shard_answer(S-1,·) ─┤
    finish(state, responses) ◀──── ordered responses ────┘

The pool is created once and reused for every batch; ``jobs=1`` runs the
identical plan/probe/finish path in-process — no pool, no pickling — so
the decomposition itself is exercised even in single-process tests.

**Execution plane.**  ``pool=`` selects what executes the per-shard
probes when ``jobs > 1``:

* ``"proc"`` (default) — the persistent ``multiprocessing`` pool above.
  Workers are separate address spaces, so index data and per-batch
  messages must move (the memory plane below decides how).
* ``"thread"`` — a ``concurrent.futures.ThreadPoolExecutor`` sharing
  this process's address space.  ``shard_answer`` is numpy-kernel work
  that releases the GIL, so threads overlap for real — and because the
  executor sees the master's own index object there is **no pickling,
  no ring buffers, no segment attach**: dispatch cost is a function
  submission.  The ``memory=`` axis stays orthogonal (a non-heap mode
  still rebuilds the store over the packed backing, so the same bytes
  are served), but message rings are never allocated.

**Memory plane.**  ``memory=`` selects how index data and per-batch
messages move (see ``docs/architecture.md`` for the layout diagram):

* ``"heap"`` — the index ships to each worker once through the pool
  initializer; per batch, request/response arrays are pickled through
  the pool's pipes.  Simple, and fine for small batches.
* ``"shared"`` — the index is packed once into a
  ``multiprocessing.shared_memory`` segment
  (:func:`~repro.service.index.index_to_pack`) and every worker
  *attaches* to it zero-copy at pool init.  Per batch, requests and
  responses travel through two preallocated shared **ring buffers**
  (:class:`~repro.service.buffers.SharedArea`): the master memcpys each
  shard's request tree into the request ring, workers memcpy their
  response trees into their slice of the response ring, and only tiny
  descriptors (segment name + offsets + shapes) cross the pipe.  This
  removes the per-batch pickling/IPC tax that made small-batch worker
  serving lose to in-process.
* ``"mmap"`` — like ``"shared"``, but the pack lives in a memory-mapped
  scratch file (page-cache-backed; also what a binary index file loads
  into), and workers attach by path.  Message rings stay in shared
  memory.

Determinism: ``shard_answer`` is a pure function of ``(shard, request)``
and ``finish`` consumes responses by shard id (``pool.map`` preserves
order), never by completion order, so answers are bit-identical for every
``jobs`` value *and every memory mode* — the test suite asserts
jobs=1/jobs=4 and heap/shared/mmap equality for every scheme.  A
:class:`~repro.errors.QueryError` for an unresolved pair is raised by
``finish`` on the master, exactly as in-process.

Teardown is deterministic: :meth:`ShardServer.close` (or the context
manager) terminates the pool first, then unlinks the index segment and
both rings; a module-level ``atexit`` guard in
:mod:`repro.service.buffers` unlinks anything that survives an unclean
exit, so repeated ``serve-bench`` runs cannot leak ``/dev/shm``
segments.

Per-batch **phase timings** (plan / shard_answer / finish / ipc) are
accumulated on :attr:`ShardServer.timings`; ``serve-bench`` reports
them, which is how an IPC-bound configuration is diagnosed from one run.

A server is pinned to **one epoch** of its index: the dynamic-update
path (:meth:`~repro.service.engine.QueryEngine.apply_updates`) never
mutates a served store — it builds the next epoch's server (whose
workers attach to the *new* pack) while this one keeps answering, then
swaps and closes this one once its in-flight batches drain.
:meth:`ShardServer.data_plane` exposes which segments a server is
actually reading, so the swap is observable.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Optional

import numpy as np

from repro.errors import ConfigError
from repro.service import buffers
from repro.service.buffers import (SharedArea, flatten_tree, next_pow2,
                                   plan_tree, read_tree, write_tree)
from repro.service.index import (IndexStore, index_from_handle,
                                 index_from_pack, index_to_pack,
                                 parse_pair_array)

MEMORY_MODES = ("heap", "shared", "mmap")
POOL_MODES = ("proc", "thread")

#: thread-plane executor threads carry this name prefix so tests (and
#: operators reading a stack dump) can tell them from handler threads —
#: and assert none outlive their server
THREAD_POOL_PREFIX = "repro-shard"

#: floor for ring slot capacities — avoids reallocation churn on the
#: first few small batches
_MIN_RING_BYTES = 1 << 16

# ----------------------------------------------------------------------
# worker-side globals
# ----------------------------------------------------------------------
# Installed once per worker by the pool initializer: either the pickled
# index (heap mode) or a zero-copy attach to the master's pack.
_WORKER_INDEX: Optional[IndexStore] = None
# Worker-side cache of attached message segments, keyed by name; a ring
# reallocation (growth) simply shows up as a new name in the next
# batch's descriptors.
_WORKER_SEGMENTS: dict[str, Any] = {}


def _install_index(index: IndexStore) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index


def _attach_index(handle) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index_from_handle(handle)


def _segment_buffer(name: str):
    seg = _WORKER_SEGMENTS.get(name)
    if seg is None:
        seg = buffers.attach_segment(name)
        _WORKER_SEGMENTS[name] = seg
    return seg.buf


def _serve_shard(task: tuple[int, Any]) -> tuple[float, Any]:
    """Heap-mode worker: pickled request in, ``(seconds, response)`` out."""
    shard, request = task
    t0 = time.perf_counter()
    response = _WORKER_INDEX.shard_answer(shard, request)
    return time.perf_counter() - t0, response


def _serve_shard_shm(task) -> tuple:
    """Ring-mode worker: decode the request tree from the request ring,
    probe, and write the response tree into this shard's slice of the
    response ring.  Only descriptors cross the pipe.

    Returns ``("shm", seconds, spec, manifest)`` on the fast path, or
    ``("raw", seconds, response, needed_bytes)`` when the response
    outgrew its ring slice — the master then grows the ring for the
    next batch (the answer is still exact either way).
    """
    shard, (req_name, req_off, spec, req_manifest), target = task
    request = read_tree(_segment_buffer(req_name), req_off, spec,
                        req_manifest)
    t0 = time.perf_counter()
    response = _WORKER_INDEX.shard_answer(shard, request)
    elapsed = time.perf_counter() - t0
    resp_spec, leaves = flatten_tree(response)
    manifest, total = plan_tree(leaves)
    resp_name, resp_off, capacity = target
    if total > capacity:
        return ("raw", elapsed, response, total)
    write_tree(_segment_buffer(resp_name), resp_off, manifest, leaves)
    return ("shm", elapsed, resp_spec, manifest)


# ----------------------------------------------------------------------
# phase accounting
# ----------------------------------------------------------------------
@dataclass
class PhaseTimings:
    """Cumulative per-phase wall time across the batches a server ran.

    ``ipc`` is everything between plan and finish that is not shard
    compute: message encode/decode plus pool dispatch, minus the
    parallel critical path (the slowest shard's compute).  In-process
    serving has ``ipc == 0`` by construction.

    ``overlap`` is the double-buffering win of the pipelined path
    (:meth:`ShardServer.estimate_stream`): master-side seconds — batch
    *k+1*'s plan and request encode — spent while batch *k*'s shard
    probes were still in flight.  Sequential serving leaves it 0.

    ``kernel`` is the per-batch **critical path** of pure shard-kernel
    compute: the slowest shard's probe seconds, summed over batches.
    ``shard_answer`` is the *total* across shards, so with S balanced
    shards ``shard_answer ≈ S × kernel``; the dispatch wall window is
    ``kernel + ipc``.  One report therefore separates "the numpy
    kernels are slow" (``kernel`` dominates) from "moving the work
    costs more than the work" (``ipc`` dominates).
    """

    plan: float = 0.0
    shard_answer: float = 0.0
    finish: float = 0.0
    ipc: float = 0.0
    overlap: float = 0.0
    kernel: float = 0.0
    batches: int = 0

    def as_dict(self) -> dict:
        return {"plan_seconds": self.plan,
                "shard_answer_seconds": self.shard_answer,
                "finish_seconds": self.finish,
                "ipc_seconds": self.ipc,
                "overlap_seconds": self.overlap,
                "kernel_seconds": self.kernel,
                "batches": self.batches}


class ShardServer:
    """Serve batched queries from an :class:`IndexStore` with one task per
    landmark shard, fanned across a persistent worker pool.

    :param index: any built index store (all schemes).
    :param jobs: workers.  ``1`` keeps everything in-process
        (same decomposition, no pool); values above the shard count are
        clamped — a shard is the unit of work, so extra workers would
        idle.
    :param memory: ``"heap"`` (pickle IPC), ``"shared"`` (zero-copy
        attach + shared ring buffers), or ``"mmap"`` (pack in a mapped
        scratch file + shared rings); see the module docstring.  With
        ``jobs=1`` a non-heap mode still rebuilds the store over the
        packed backing, so single-process serving exercises the same
        bytes a worker would read.
    :param pool: execution plane for ``jobs > 1`` — ``"proc"`` (worker
        processes; the memory plane moves data) or ``"thread"`` (a
        ``ThreadPoolExecutor`` in this address space; the numpy shard
        kernels release the GIL, and nothing is pickled or attached).
    :param ring_slots: slots per message ring (rotated batch by batch).
    :raises ConfigError: when ``jobs < 1``, or ``memory`` / ``pool``
        is unknown.

    Use as a context manager (or call :meth:`close`) so the pool and any
    shared segments do not outlive the server::

        with ShardServer(build_index(sketches, num_shards=4), jobs=4,
                         memory="shared") as srv:
            est = srv.estimate_many(us, vs)
    """

    def __init__(self, index: IndexStore, jobs: int = 1,
                 memory: str = "heap", pool: str = "proc",
                 ring_slots: int = 2):
        # every attribute close() releases exists before anything that
        # can raise: a failed construction (bad argument, failed pack or
        # pool spawn) still reaches __del__, and the GC backstop must
        # release whatever was allocated instead of tripping over a
        # missing attribute and silently leaking the pack segment
        self._pool = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._req_ring: Optional[SharedArea] = None
        self._resp_ring: Optional[SharedArea] = None
        self._packed = None
        self._owns_pack = False
        self._resp_capacity = 0  # per-shard slice of a response slot
        self._resp_grow = 0      # deferred response-ring growth (bytes)
        self._inflight = 0       # submitted-but-uncollected batches
        self._tick = 0
        self.timings = PhaseTimings()
        # heap-pool and in-process dispatch are re-entrant, so several
        # handler threads can be inside estimate_many at once; the
        # in-flight count and timing accumulators they share must not
        # lose updates (ring mode serializes outside, but pays the same
        # uncontended lock for uniformity)
        self._state_lock = threading.Lock()
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if memory not in MEMORY_MODES:
            raise ConfigError(f"unknown memory mode {memory!r}; "
                              f"choose from {MEMORY_MODES}")
        if pool not in POOL_MODES:
            raise ConfigError(f"unknown pool mode {pool!r}; "
                              f"choose from {POOL_MODES}")
        if ring_slots < 1:
            raise ConfigError(f"ring_slots must be >= 1, got {ring_slots}")
        self.memory = memory
        self.pool = pool
        self.jobs = min(int(jobs), index.num_shards)
        self.ring_slots = int(ring_slots)

        if memory == "heap":
            self.index = index
        else:
            # reuse an already-matching pack (e.g. an mmap-loaded binary
            # index) instead of copying the arrays again
            source = getattr(index, "_pack_source", None)
            backing = "shared" if memory == "shared" else "mmap"
            if source is not None and source.pack.backing == backing:
                self._packed = source
                self.index = index
            else:
                path = None
                if backing == "mmap":
                    fd, path = tempfile.mkstemp(prefix="repro-pack-",
                                                suffix=".bin")
                    os.close(fd)
                self._packed = index_to_pack(index, backing=backing,
                                             path=path, delete_file=True)
                self._owns_pack = True
                # master serves plan/finish over the same packed bytes
                # the workers attach to
                self.index = index_from_pack(self._packed)

        if self.jobs > 1:
            if pool == "thread":
                # same address space: the executor probes the master's
                # own index object — no initializer, no data movement
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs,
                    thread_name_prefix=THREAD_POOL_PREFIX)
            elif memory == "heap":
                ctx = multiprocessing.get_context()
                self._pool = ctx.Pool(processes=self.jobs,
                                      initializer=_install_index,
                                      initargs=(self.index,))
            else:
                ctx = multiprocessing.get_context()
                self._pool = ctx.Pool(processes=self.jobs,
                                      initializer=_attach_index,
                                      initargs=(self._packed.handle(),))

    @property
    def ring_dispatch(self) -> bool:
        """True when dispatch rotates through shared message rings
        (a ``proc`` pool with a shared/mmap plane).  Ring slots are
        single-producer state (``_inflight`` / ``_tick``), so this mode
        is **not re-entrant** — callers fanning queries across threads
        must serialize it.  Heap-pool, thread-plane, and in-process
        dispatch are re-entrant (the thread plane never allocates
        rings, whatever the memory mode)."""
        return self._pool is not None and self.memory != "heap"

    @property
    def _fanout(self) -> bool:
        """True when shard probes actually leave the calling thread
        (either executor) — what the ipc/overlap accounting keys on."""
        return self._pool is not None or self._executor is not None

    # ------------------------------------------------------------------
    # ring management (master side)
    # ------------------------------------------------------------------
    def _ensure_req_ring(self, need: int) -> SharedArea:
        if self._req_ring is None or self._req_ring.slot_bytes < need:
            if self._req_ring is not None:
                self._req_ring.close()
            self._req_ring = SharedArea(
                next_pow2(max(need, _MIN_RING_BYTES)),
                slots=self.ring_slots, tag="req")
        return self._req_ring

    def _ensure_resp_ring(self, per_shard: int) -> SharedArea:
        if self._resp_ring is None or self._resp_capacity < per_shard:
            if self._resp_ring is not None:
                self._resp_ring.close()
            self._resp_capacity = next_pow2(max(per_shard, _MIN_RING_BYTES))
            self._resp_ring = SharedArea(
                self._resp_capacity * self.index.num_shards,
                slots=self.ring_slots, tag="resp")
        return self._resp_ring

    # ------------------------------------------------------------------
    # dispatch: submit (start the probes) / collect (gather responses)
    # ------------------------------------------------------------------
    def _thread_shard(self, shard: int, request) -> tuple[float, Any]:
        """Thread-plane task: probe the master's own index — the numpy
        kernel inside releases the GIL, so submissions overlap."""
        t0 = time.perf_counter()
        response = self.index.shard_answer(shard, request)
        return time.perf_counter() - t0, response

    def _submit(self, requests: list) -> tuple:
        """Start the per-shard probes; returns an opaque handle for
        :meth:`_collect`.  In-process servers defer the actual compute to
        collect time (there is nothing to overlap with)."""
        if self._executor is not None:
            handle = ("threads", [
                self._executor.submit(self._thread_shard, s, request)
                for s, request in enumerate(requests)])
        elif self._pool is None:
            return ("sync", requests)
        elif self.memory == "heap":
            handle = ("heap", self._pool.map_async(
                _serve_shard, list(enumerate(requests))))
        else:
            handle = self._submit_rings(requests)
        with self._state_lock:
            self._inflight += 1
        return handle

    def _submit_rings(self, requests: list) -> tuple:
        """Ring-transport submit: memcpy request trees into this batch's
        ring slot, hand descriptors to the pool.

        Ring (re)allocation is only safe while no other batch is in
        flight — a grow unlinks the segment workers may still be
        reading — so deferred response growth is applied here only when
        idle, and the pipelined caller flushes its pending batch first
        whenever :meth:`_ring_growth_needed` says a grow is coming.
        """
        encoded = []
        need = 0
        for request in requests:
            spec, leaves = flatten_tree(request)
            manifest, total = plan_tree(leaves)
            encoded.append((spec, leaves, manifest, total))
            need += buffers._align(total)
        if self._inflight == 0 and self._resp_grow:
            self._ensure_resp_ring(self._resp_grow)
            self._resp_grow = 0
        req_ring = self._ensure_req_ring(need)
        resp_ring = self._ensure_resp_ring(self._resp_capacity
                                           or _MIN_RING_BYTES)
        slot = self._tick % self.ring_slots
        self._tick += 1
        req_base = req_ring.slot_offset(slot)
        resp_base = resp_ring.slot_offset(slot)
        tasks = []
        cursor = 0
        for s, (spec, leaves, manifest, total) in enumerate(encoded):
            offset = req_base + cursor
            write_tree(req_ring.buffer, offset, manifest, leaves)
            cursor += buffers._align(total)
            target = (resp_ring.name,
                      resp_base + s * self._resp_capacity,
                      self._resp_capacity)
            tasks.append((s, (req_ring.name, offset, spec, manifest),
                          target))
        return ("rings", self._pool.map_async(_serve_shard_shm, tasks),
                resp_base, self._resp_capacity)

    def _ring_growth_needed(self, requests: list) -> bool:
        """Would submitting these requests reallocate a message ring?
        (Layout planning only — no blob copies.)"""
        if self._resp_grow:
            return True
        need = 0
        for request in requests:
            _, leaves = flatten_tree(request)
            _, total = plan_tree(leaves)
            need += buffers._align(total)
        return self._req_ring is None or self._req_ring.slot_bytes < need

    def _collect(self, handle: tuple) -> tuple[list, float, float]:
        """Gather one submitted batch; returns ``(responses,
        sum_of_shard_seconds, max_shard_seconds)``."""
        kind = handle[0]
        if kind == "sync":
            responses, total = [], 0.0
            for s, r in enumerate(handle[1]):
                t0 = time.perf_counter()
                responses.append(self.index.shard_answer(s, r))
                total += time.perf_counter() - t0
            return responses, total, total
        with self._state_lock:
            self._inflight -= 1
        if kind == "threads":
            raw = [future.result() for future in handle[1]]
            seconds = [dt for dt, _ in raw]
            return [resp for _, resp in raw], sum(seconds), max(seconds)
        if kind == "heap":
            raw = handle[1].get()
            seconds = [dt for dt, _ in raw]
            return [resp for _, resp in raw], sum(seconds), max(seconds)
        _, async_result, resp_base, capacity = handle
        raw = async_result.get()
        resp_ring = self._resp_ring
        responses, seconds, grow = [], [], 0
        for s, reply in enumerate(raw):
            if reply[0] == "shm":
                _, dt, resp_spec, manifest = reply
                responses.append(read_tree(
                    resp_ring.buffer, resp_base + s * capacity,
                    resp_spec, manifest))
            else:  # response outgrew its slice; pickled fallback this once
                _, dt, response, needed = reply
                responses.append(response)
                grow = max(grow, needed)
            seconds.append(dt)
        if grow:
            # grown at the next idle submit — reallocating right here
            # would unlink a ring a pipelined batch may still be using
            self._resp_grow = max(self._resp_grow, grow)
        return responses, sum(seconds), max(seconds)

    def _dispatch(self, requests: list) -> tuple[list, float, float]:
        """Run the per-shard probes start to finish (the sequential
        path: submit immediately followed by collect)."""
        return self._collect(self._submit(requests))

    # ------------------------------------------------------------------
    def estimate_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched estimates through the shard workers — bit-identical to
        ``index.estimate_many`` for every worker count and memory mode."""
        t0 = time.perf_counter()
        state, requests = self.index.plan(us, vs)
        t1 = time.perf_counter()
        responses, shard_sum, shard_max = self._dispatch(requests)
        t2 = time.perf_counter()
        try:
            answers = self.index.finish(state, responses)
        finally:
            t3 = time.perf_counter()
            tm = self.timings
            with self._state_lock:
                tm.plan += t1 - t0
                tm.shard_answer += shard_sum
                tm.finish += t3 - t2
                tm.kernel += shard_max
                if self._fanout:
                    tm.ipc += max(0.0, (t2 - t1) - shard_max)
                tm.batches += 1
        return answers

    def estimate_stream(self, batches) -> "Iterable[np.ndarray]":
        """Double-buffered pipelined serving: a generator over an
        iterable of ``(us, vs)`` batches, yielding one float64 answer
        array per batch, in order.

        While batch *k*'s shard probes run on the pool, the master
        plans and encodes batch *k+1* into the other ring slot — the
        dispatch overlap E15 showed was missing.  The hidden master
        seconds accumulate in :attr:`PhaseTimings.overlap`.  Answers
        are bit-identical to calling :meth:`estimate_many` per batch
        (the test suite asserts it); an in-process server (``jobs=1``)
        degenerates to exactly that.
        """
        # `pending` always names the one batch whose probes may be in
        # flight and uncollected — it is reassigned *before* any yield
        # or finish call, so the finally block (abandoned generator, or
        # a QueryError escaping finish) drains exactly the right handle
        pending = None  # (state, handle, t_submitted)
        try:
            for us, vs in batches:
                t0 = time.perf_counter()
                if us.shape[0] == 0:
                    state, handle = None, ("empty",)
                    t1 = t0
                else:
                    state, requests = self.index.plan(us, vs)
                    t1 = time.perf_counter()
                    if (pending is not None and self._pool is not None
                            and self.memory != "heap"
                            and (self.ring_slots < 2
                                 or self._ring_growth_needed(requests))):
                        # overlapping needs a slot per in-flight batch,
                        # and a grow would unlink a ring the in-flight
                        # batch still reads — drain it first, forgoing
                        # overlap for this one batch
                        prev, pending = pending, None
                        yield self._finish_pending(prev)
                    handle = self._submit(requests)
                t2 = time.perf_counter()
                with self._state_lock:
                    self.timings.plan += t1 - t0
                prev, pending = pending, (state, handle, t2)
                if prev is not None:
                    if self._fanout:
                        # this batch's plan+encode ran while the previous
                        # batch's probes were in flight: the overlap window
                        # (in-process "submit" defers the compute, so
                        # there is nothing to overlap with)
                        with self._state_lock:
                            self.timings.overlap += t2 - t0
                    yield self._finish_pending(prev)
            if pending is not None:
                prev, pending = pending, None
                yield self._finish_pending(prev)
        finally:
            if pending is not None:  # abandoned mid-stream: drain the
                _, handle, _ = pending  # in-flight probes, drop results
                if handle[0] != "empty":
                    try:
                        self._collect(handle)
                    except Exception:  # pragma: no cover - best effort
                        pass

    def _finish_pending(self, pending: tuple) -> np.ndarray:
        state, handle, t_submitted = pending
        tm = self.timings
        if handle[0] == "empty":
            with self._state_lock:
                tm.batches += 1
            return np.empty(0, dtype=np.float64)
        t0 = time.perf_counter()
        responses, shard_sum, shard_max = self._collect(handle)
        t1 = time.perf_counter()
        try:
            answers = self.index.finish(state, responses)
        finally:
            t2 = time.perf_counter()
            with self._state_lock:
                tm.shard_answer += shard_sum
                tm.finish += t2 - t1
                tm.kernel += shard_max
                if self._fanout:
                    tm.ipc += max(0.0, (t1 - t_submitted) - shard_max)
                tm.batches += 1
        return answers

    def dist_many(self, pairs: Iterable[tuple[int, int]] | np.ndarray,
                  ) -> np.ndarray:
        """Convenience pair-list front end (mirrors
        :meth:`~repro.service.engine.QueryEngine.dist_many`)."""
        arr = parse_pair_array(pairs)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        return self.estimate_many(arr[:, 0], arr[:, 1])

    def reset_timings(self) -> None:
        """Zero the cumulative phase timings."""
        self.timings = PhaseTimings()

    def data_plane(self) -> dict:
        """Where this server's bytes physically live: memory mode,
        effective worker count, the index pack's segment name / file
        path (non-heap modes), and the live message-ring segment names.

        Introspection for operators and tests — e.g. the epoch hot-swap
        suite asserts that after
        :meth:`~repro.service.engine.QueryEngine.apply_updates` the new
        epoch's workers serve from a *different* shared segment and the
        old epoch's segments are unlinked once its batches drain.
        """
        info: dict = {"memory": self.memory, "jobs": self.jobs,
                      "pool": self.pool}
        if self._packed is not None:
            pack = self._packed.pack
            info["pack_backing"] = pack.backing
            if pack.backing == "shared" and pack._segment is not None:
                info["pack_segment"] = pack._segment.name
            elif pack.backing == "mmap":
                info["pack_path"] = pack.path
        info["rings"] = [ring.name
                         for ring in (self._req_ring, self._resp_ring)
                         if ring is not None]
        return info

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down, then release every shared segment
        and scratch file this server created (idempotent).

        Reads its attributes defensively (``getattr`` with defaults):
        the ``__del__`` GC backstop funnels here even for an instance
        whose construction failed partway, and a missing attribute must
        not abort the cleanup before the pack segment is released.
        """
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.terminate()
            pool.join()
            self._pool = None
        executor = getattr(self, "_executor", None)
        if executor is not None:
            executor.shutdown(wait=True)
            self._executor = None
        for name in ("_req_ring", "_resp_ring"):
            ring = getattr(self, name, None)
            if ring is not None:
                ring.close()
                setattr(self, name, None)
        packed = getattr(self, "_packed", None)
        if packed is not None and getattr(self, "_owns_pack", False):
            packed.close()
        self._packed = None

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._executor is not None:
            mode = f"{self.jobs} threads"
        elif self._pool is not None:
            mode = f"{self.jobs} workers"
        else:
            mode = "in-process"
        return f"ShardServer({self.index!r}, {mode}, memory={self.memory})"
