"""Multi-process shard serving: a worker pool behind the landmark shards.

Every :class:`~repro.service.index.IndexStore` decomposes a query batch
into per-shard probe tasks (``plan`` → ``shard_answer`` × S → ``finish``;
see the protocol contract).  :class:`ShardServer` runs that decomposition
on a **persistent** ``multiprocessing`` pool::

    master                         workers (persistent pool)
    ------                         -------------------------
    plan(us, vs) ──┬─ request[0] ─▶ shard_answer(0, ·) ─┐
                   ├─ request[1] ─▶ shard_answer(1, ·) ─┤
                   └─ request[S-1]▶ shard_answer(S-1,·) ─┤
    finish(state, responses) ◀──── ordered responses ────┘

The pool is created once (the index ships to each worker through the pool
initializer, not per task) and reused for every batch.  ``jobs=1`` runs
the identical plan/probe/finish path in-process — no pool, no pickling —
so the decomposition itself is exercised even in single-process tests.

Determinism: ``shard_answer`` is a pure function of ``(shard, request)``
and ``finish`` consumes responses by shard id (``pool.map`` preserves
order), never by completion order, so answers are bit-identical for every
``jobs`` value — the test suite asserts ``jobs=1`` vs ``jobs=4`` equality
for every scheme.  A :class:`~repro.errors.QueryError` for an unresolved
pair is raised by ``finish`` on the master, exactly as in-process.

This mirrors the separable-structure parallelism of distributed solvers
like DiPOA: the per-landmark subproblems share no state, so the only
coordination is the scatter/gather around them.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Iterable, Optional

import numpy as np

from repro.errors import ConfigError
from repro.service.index import IndexStore, parse_pair_array

# Worker-global store, installed once per worker by the pool initializer
# (cheaper than pickling the index into every task).
_WORKER_INDEX: Optional[IndexStore] = None


def _install_index(index: IndexStore) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index


def _serve_shard(task: tuple[int, Any]) -> Any:
    shard, request = task
    return _WORKER_INDEX.shard_answer(shard, request)


class ShardServer:
    """Serve batched queries from an :class:`IndexStore` with one task per
    landmark shard, fanned across a persistent worker pool.

    :param index: any built index store (all schemes).
    :param jobs: worker processes.  ``1`` keeps everything in-process
        (same decomposition, no pool); values above the shard count are
        clamped — a shard is the unit of work, so extra workers would
        idle.
    :raises ConfigError: when ``jobs < 1``.

    Use as a context manager (or call :meth:`close`) so the pool does not
    outlive the server::

        with ShardServer(build_index(sketches, num_shards=4), jobs=4) as srv:
            est = srv.estimate_many(us, vs)
    """

    def __init__(self, index: IndexStore, jobs: int = 1):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.index = index
        self.jobs = min(int(jobs), index.num_shards)
        self._pool = None
        if self.jobs > 1:
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(processes=self.jobs,
                                  initializer=_install_index,
                                  initargs=(index,))

    # ------------------------------------------------------------------
    def estimate_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched estimates through the shard workers — bit-identical to
        ``index.estimate_many`` for every worker count."""
        state, requests = self.index.plan(us, vs)
        tasks = list(enumerate(requests))
        if self._pool is None:
            responses = [self.index.shard_answer(s, r) for s, r in tasks]
        else:
            responses = self._pool.map(_serve_shard, tasks)
        return self.index.finish(state, responses)

    def dist_many(self, pairs: Iterable[tuple[int, int]] | np.ndarray,
                  ) -> np.ndarray:
        """Convenience pair-list front end (mirrors
        :meth:`~repro.service.engine.QueryEngine.dist_many`)."""
        arr = parse_pair_array(pairs)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        return self.estimate_many(arr[:, 0], arr[:, 1])

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f"{self.jobs} workers" if self._pool is not None else "in-process"
        return (f"ShardServer({self.index!r}, {mode})")
