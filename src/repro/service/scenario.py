"""Event-driven churn + query scenario harness.

The update path (:mod:`repro.service.updates`) and the async serving
tier (:mod:`repro.service.transport`) are property-tested in isolation;
this module exercises them *together*, the way a live deployment would:
interleaved edge churn and query traffic replayed against any
:func:`~repro.service.transport.connect` endpoint, with a correctness
oracle asserting every answer was bit-identical to some epoch the
client could legally observe.

Three layers:

* **Trace model** — :class:`QueryEvent` / :class:`ChurnEvent` grouped
  into seeded rounds (:class:`Trace`), saved and loaded as JSONL, and
  produced by the named generators in :data:`SCENARIOS` (flash crowd,
  rolling regional churn, adversarial weight flapping, disconnect/heal
  cycles, steady-state mix).  Generators maintain a shadow copy of the
  graph while emitting changes, so every trace is valid by
  construction: ``increase`` really increases, ``remove`` targets a
  live edge, and replaying the churn stream on the seed graph is
  always well defined.

* **Runner** — :func:`run_scenario` replays a trace round by round:
  query events fan out across a thread pool of reader sessions
  (``dist_many`` and pipelined ``dist_stream``) while the writer
  session issues ``apply_updates`` hot swaps, recording per-event
  latency, the epoch each answer was pinned to vs the epochs the
  session could have observed, and the hot-swap stall time.  The
  endpoint may be ``inproc://`` / ``proc://...``, a remote
  ``tcp://host:port``, or the bare sentinel ``"tcp://"`` — serve the
  given source on a loopback listener and drive it over real sockets.

* **Oracle** — :class:`ScenarioOracle` replays the applied churn on a
  twin :class:`~repro.service.updates.UpdateableIndex`, keeping every
  epoch's store alive, and verifies post-hoc that each recorded answer
  is bitwise equal to the twin's answer at the observed epoch *and*
  that the observed epoch was legal under the monotonic-epoch rule:
  no older than the session's epoch when the query was submitted, no
  newer than the last apply started before the answer was consumed.
  At checkpoints the twin is additionally compared against a
  from-scratch :meth:`~repro.service.updates.UpdateableIndex.
  rebuild_reference` — the repair path itself stays on trial.

:func:`compare_policies` replays one trace's churn under the static
and adaptive repair policies (:func:`~repro.service.updates.
make_policy`) and reports the decisions and costs side by side — the
final indexes must stay bitwise identical, because policy choice may
only ever spend seconds, never change answers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError, QueryError
from repro.graphs.graph import Graph
from repro.rng import SeedLike, ensure_rng
from repro.service.bench import sample_query_pairs
from repro.service.transport import (OracleClient, OracleServer, connect,
                                     parse_endpoint)
from repro.service.updates import (EdgeChange, RepairPolicy, UpdateReport,
                                   UpdateableIndex, make_policy)

#: JSONL trace container version (the header line's ``"v"``).
TRACE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# trace model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryEvent:
    """A batch of ``(u, v)`` distance queries fired in ``round``.

    ``stream=True`` events are split into chunks and driven through the
    session's pipelined ``dist_stream`` (per-chunk epoch pinning);
    plain events go through one ``dist_many`` call."""

    round: int
    pairs: tuple[tuple[int, int], ...]
    stream: bool = False

    def pair_array(self) -> np.ndarray:
        return np.asarray(self.pairs, dtype=np.int64).reshape(-1, 2)


@dataclass(frozen=True)
class ChurnEvent:
    """An edge-change batch applied in ``round`` (one
    ``apply_updates`` call → at most one epoch bump)."""

    round: int
    changes: tuple[EdgeChange, ...]


Event = Union[QueryEvent, ChurnEvent]


@dataclass
class Trace:
    """A seeded, round-based event queue.

    Events carry the round they fire in; within a round the runner
    submits every query event to the reader pool first, then applies
    the churn events sequentially — so queries race the hot swap, which
    is the point.  ``seed`` and ``name`` are provenance (the generator
    inputs), not consumed at replay time."""

    name: str
    n: int
    rounds: int
    seed: int
    events: list = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.rounds < 1:
            raise ConfigError(f"a trace needs >= 1 round, got {self.rounds}")
        for ev in self.events:
            if not 0 <= ev.round < self.rounds:
                raise ConfigError(
                    f"event round {ev.round} outside [0, {self.rounds})")
            if isinstance(ev, QueryEvent):
                if not ev.pairs:
                    raise ConfigError("empty query event")
                for u, v in ev.pairs:
                    if not (0 <= u < self.n and 0 <= v < self.n):
                        raise ConfigError(
                            f"query pair ({u}, {v}) outside the "
                            f"{self.n}-node graph")

    # -- shape ---------------------------------------------------------
    @property
    def query_events(self) -> list[QueryEvent]:
        return [e for e in self.events if isinstance(e, QueryEvent)]

    @property
    def churn_events(self) -> list[ChurnEvent]:
        return [e for e in self.events if isinstance(e, ChurnEvent)]

    def by_round(self) -> dict[int, list[tuple[int, Event]]]:
        """Events grouped by round, each with its index into
        :attr:`events` (the id the runner and oracle share)."""
        out: dict[int, list[tuple[int, Event]]] = {}
        for idx, ev in enumerate(self.events):
            out.setdefault(ev.round, []).append((idx, ev))
        return out

    # -- persistence ---------------------------------------------------
    def save_jsonl(self, path) -> None:
        """One header line, then one line per event, in order."""
        from repro.oracle.serialization import change_to_dict

        with open(path, "w", encoding="ascii") as fh:
            header = {"kind": "trace", "v": TRACE_FORMAT_VERSION,
                      "name": self.name, "n": self.n,
                      "rounds": self.rounds, "seed": self.seed,
                      "meta": self.meta}
            fh.write(json.dumps(header, separators=(",", ":")) + "\n")
            for ev in self.events:
                if isinstance(ev, QueryEvent):
                    line = {"kind": "query", "round": ev.round,
                            "stream": ev.stream,
                            "pairs": [[int(u), int(v)]
                                      for u, v in ev.pairs]}
                else:
                    line = {"kind": "churn", "round": ev.round,
                            "changes": [change_to_dict(c)
                                        for c in ev.changes]}
                fh.write(json.dumps(line, separators=(",", ":")) + "\n")

    @classmethod
    def load_jsonl(cls, path) -> "Trace":
        from repro.oracle.serialization import change_from_dict

        with open(path, "r", encoding="ascii") as fh:
            lines = [ln for ln in (ln.strip() for ln in fh) if ln]
        if not lines:
            raise ConfigError(f"{path}: empty trace file")
        header = json.loads(lines[0])
        if header.get("kind") != "trace":
            raise ConfigError(f"{path}: not a trace file "
                              f"(first line kind={header.get('kind')!r})")
        if header.get("v") != TRACE_FORMAT_VERSION:
            raise ConfigError(f"{path}: trace format v{header.get('v')}, "
                              f"this build reads v{TRACE_FORMAT_VERSION}")
        events: list[Event] = []
        for ln in lines[1:]:
            data = json.loads(ln)
            kind = data.get("kind")
            if kind == "query":
                events.append(QueryEvent(
                    round=int(data["round"]),
                    pairs=tuple((int(u), int(v))
                                for u, v in data["pairs"]),
                    stream=bool(data.get("stream", False))))
            elif kind == "churn":
                events.append(ChurnEvent(
                    round=int(data["round"]),
                    changes=tuple(change_from_dict(c)
                                  for c in data["changes"])))
            else:
                raise ConfigError(
                    f"{path}: unknown trace event kind {kind!r}")
        return cls(name=str(header["name"]), n=int(header["n"]),
                   rounds=int(header["rounds"]), seed=int(header["seed"]),
                   events=events, meta=dict(header.get("meta", {})))


# ----------------------------------------------------------------------
# trace generators
# ----------------------------------------------------------------------
def _require_size(graph: Graph, name: str) -> None:
    if graph.n < 2 or graph.m < 1:
        raise ConfigError(
            f"{name} needs a graph with >= 2 nodes and >= 1 edge")


def _query_pairs(rng, n: int, count: int) -> tuple[tuple[int, int], ...]:
    """``count`` uniform pairs with ``u != v``."""
    us = rng.integers(0, n, size=count)
    vs = rng.integers(0, n - 1, size=count)
    vs = np.where(vs >= us, vs + 1, vs)
    return tuple((int(u), int(v)) for u, v in zip(us, vs))


def _pairs_avoiding(rng, n: int, count: int,
                    avoid: set) -> tuple[tuple[int, int], ...]:
    out: list[tuple[int, int]] = []
    for _ in range(count * 20):
        if len(out) >= count:
            break
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v and u not in avoid and v not in avoid:
            out.append((u, v))
    return tuple(out)


def _apply_to_shadow(work: Graph, changes: Sequence[EdgeChange]) -> None:
    """Mirror a change batch onto the generator's shadow graph so the
    next batch is emitted against the post-churn state."""
    for c in changes:
        if c.op == "insert":
            work.add_edge(c.u, c.v, c.weight)
        elif c.op == "remove":
            work.remove_edge(c.u, c.v)
        else:
            work.set_weight(c.u, c.v, c.weight)


def _perturb_edges(rng, work: Graph, count: int,
                   edges: Optional[list] = None) -> list[EdgeChange]:
    """Up to ``count`` ``set`` perturbations of distinct live edges."""
    if edges is None:
        edges = list(work.edges())
    changes: list[EdgeChange] = []
    used: set[tuple[int, int]] = set()
    for _ in range(count * 4):
        if len(changes) >= count or not edges:
            break
        u, v, w = edges[int(rng.integers(0, len(edges)))]
        key = (min(u, v), max(u, v))
        if key in used:
            continue
        nw = w * float(rng.uniform(0.5, 2.0))
        if nw == w or not nw > 0:
            continue
        used.add(key)
        changes.append(EdgeChange("set", u, v, nw))
    return changes


def trace_steady_mix(graph: Graph, *, rounds: int = 16, seed: SeedLike = 0,
                     query_batch: int = 24, churn_batch: int = 3,
                     stream_every: int = 4) -> Trace:
    """Steady-state production mix: a query batch every round (every
    ``stream_every``-th one pipelined), a small mixed churn batch
    (set / increase / decrease / insert) every other round."""
    _require_size(graph, "steady-mix")
    rng = ensure_rng(seed)
    work = graph.copy()
    n = work.n
    events: list[Event] = []
    for r in range(rounds):
        stream = stream_every > 0 and (r % stream_every) == stream_every - 1
        events.append(QueryEvent(r, _query_pairs(rng, n, query_batch),
                                 stream=stream))
        if r % 2 != 1:
            continue
        edges = list(work.edges())
        changes: list[EdgeChange] = []
        used: set[tuple[int, int]] = set()
        for _ in range(churn_batch):
            roll = float(rng.random())
            if roll < 0.85 and edges:
                u, v, w = edges[int(rng.integers(0, len(edges)))]
                key = (min(u, v), max(u, v))
                if key in used:
                    continue
                used.add(key)
                if roll < 0.45:
                    nw = w * float(rng.uniform(0.6, 1.8))
                    if nw != w and nw > 0:
                        changes.append(EdgeChange("set", u, v, nw))
                elif roll < 0.65:
                    changes.append(EdgeChange(
                        "increase", u, v, w * float(rng.uniform(1.5, 3.0))))
                else:
                    changes.append(EdgeChange(
                        "decrease", u, v, w * float(rng.uniform(0.3, 0.7))))
            else:
                # an insert can never disconnect anything
                for _ in range(8):
                    u = int(rng.integers(0, n))
                    v = int(rng.integers(0, n))
                    key = (min(u, v), max(u, v))
                    if u != v and not work.has_edge(u, v) and key not in used:
                        used.add(key)
                        changes.append(EdgeChange(
                            "insert", u, v, float(rng.uniform(0.5, 2.0))))
                        break
        if changes:
            _apply_to_shadow(work, changes)
            events.append(ChurnEvent(r, tuple(changes)))
    return Trace("steady-mix", n, rounds, _seed_int(seed), events,
                 meta={"scenario": "steady-mix"})


def _seed_int(seed: SeedLike) -> int:
    """The integer recorded in trace provenance (0 for None)."""
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    return 0


def trace_flash_crowd(graph: Graph, *, rounds: int = 15, seed: SeedLike = 0,
                      base_batch: int = 8, crowd_batch: int = 48,
                      churn_batch: int = 2) -> Trace:
    """A query storm: background traffic every round, then a middle
    third where each round adds two crowd-sized batches (one of them
    pipelined) while light churn keeps swapping epochs underneath."""
    _require_size(graph, "flash-crowd")
    rng = ensure_rng(seed)
    work = graph.copy()
    n = work.n
    lo = rounds // 3
    hi = max(lo + 1, (2 * rounds) // 3)
    events: list[Event] = []
    for r in range(rounds):
        events.append(QueryEvent(r, _query_pairs(rng, n, base_batch)))
        if lo <= r < hi:
            events.append(QueryEvent(r, _query_pairs(rng, n, crowd_batch)))
            events.append(QueryEvent(r, _query_pairs(rng, n, crowd_batch),
                                     stream=True))
        if r % 3 == 2:
            changes = _perturb_edges(rng, work, churn_batch)
            if changes:
                _apply_to_shadow(work, changes)
                events.append(ChurnEvent(r, tuple(changes)))
    return Trace("flash-crowd", n, rounds, _seed_int(seed), events,
                 meta={"scenario": "flash-crowd",
                       "crowd_rounds": [lo, hi]})


def trace_rolling_churn(graph: Graph, *, rounds: int = 12,
                        seed: SeedLike = 0, regions: int = 4,
                        churn_batch: int = 4,
                        query_batch: int = 24) -> Trace:
    """Rolling regional churn: the node range is cut into ``regions``
    contiguous blocks and a perturbation wave sweeps across them over
    the trace while uniform query traffic continues everywhere."""
    _require_size(graph, "rolling-churn")
    rng = ensure_rng(seed)
    work = graph.copy()
    n = work.n
    regions = max(1, min(int(regions), n))
    span = -(-n // regions)  # ceil
    events: list[Event] = []
    for r in range(rounds):
        events.append(QueryEvent(r, _query_pairs(rng, n, query_batch),
                                 stream=(r % 3 == 1)))
        active = (r * regions) // rounds
        region_edges = [(u, v, w) for u, v, w in work.edges()
                        if u // span == active or v // span == active]
        changes = _perturb_edges(rng, work, churn_batch, edges=region_edges)
        if changes:
            _apply_to_shadow(work, changes)
            events.append(ChurnEvent(r, tuple(changes)))
    return Trace("rolling-churn", n, rounds, _seed_int(seed), events,
                 meta={"scenario": "rolling-churn", "regions": regions})


def trace_weight_flap(graph: Graph, *, rounds: int = 12, seed: SeedLike = 0,
                      flappers: int = 3, query_batch: int = 24,
                      factor: float = 3.0) -> Trace:
    """Adversarial weight flapping: a fixed set of edges alternates
    between its original weight and ``factor``× it every single round
    — the maximally repair-hostile churn (the same frontier dirties
    again and again) — while half the query traffic targets the
    flapping edges' endpoints."""
    _require_size(graph, "weight-flap")
    if not factor > 1.0:
        raise ConfigError(f"flap factor must be > 1, got {factor}")
    rng = ensure_rng(seed)
    work = graph.copy()
    n = work.n
    edges = list(work.edges())
    take = min(int(flappers), len(edges))
    pick = rng.choice(len(edges), size=take, replace=False)
    flap = [edges[int(i)] for i in pick]  # (u, v, original weight)
    endpoints = sorted({x for u, v, _ in flap for x in (u, v)})
    events: list[Event] = []
    for r in range(rounds):
        targeted: list[tuple[int, int]] = []
        for e in endpoints[:max(1, query_batch // 2)]:
            other = int(rng.integers(0, n - 1))
            targeted.append((e, other + 1 if other >= e else other))
        background = _query_pairs(
            rng, n, max(1, query_batch - len(targeted)))
        events.append(QueryEvent(r, tuple(targeted) + background,
                                 stream=(r % 4 == 2)))
        if r % 2 == 0:
            changes = tuple(EdgeChange("increase", u, v, w0 * factor)
                            for u, v, w0 in flap)
        else:
            changes = tuple(EdgeChange("decrease", u, v, w0)
                            for u, v, w0 in flap)
        _apply_to_shadow(work, changes)
        events.append(ChurnEvent(r, changes))
    return Trace("weight-flap", n, rounds, _seed_int(seed), events,
                 meta={"scenario": "weight-flap", "factor": factor,
                       "flapping_edges": [[u, v] for u, v, _ in flap]})


def trace_disconnect_heal(graph: Graph, *, rounds: int = 12,
                          seed: SeedLike = 0, query_batch: int = 16,
                          victims: int = 2) -> Trace:
    """Disconnect/heal cycles: every 4 rounds a victim node has all its
    incident edges removed (isolating it — queries touching it must
    yield ``QueryError`` parity on every transport), then exactly the
    same edges are re-inserted two rounds later.  While a victim is
    down, one query batch deliberately targets it and one avoids it."""
    _require_size(graph, "disconnect-heal")
    rng = ensure_rng(seed)
    work = graph.copy()
    n = work.n
    # prefer low-degree victims: cutting them is cheap and they are
    # least likely to be articulation points stranding bystanders
    cands = sorted(range(n), key=lambda u: (work.degree(u), u))
    cands = cands[:max(8, victims * 4)]
    take = min(max(1, int(victims)), len(cands))
    pick = rng.choice(len(cands), size=take, replace=False)
    vlist = [cands[int(i)] for i in pick]
    removed: dict[int, list[tuple[int, int, float]]] = {}
    events: list[Event] = []
    for r in range(rounds):
        phase = r % 4
        victim = vlist[(r // 4) % len(vlist)]
        if victim in removed:
            others = {victim}
            down = []
            for _ in range(6):
                o = int(rng.integers(0, n - 1))
                o = o + 1 if o >= victim else o
                down.append((victim, o))
            events.append(QueryEvent(r, tuple(down)))
            clean = _pairs_avoiding(rng, n, query_batch, {victim})
            if clean:
                events.append(QueryEvent(r, clean))
        else:
            events.append(QueryEvent(r, _query_pairs(rng, n, query_batch),
                                     stream=(phase == 3)))
        if phase == 0 and victim not in removed and work.degree(victim) > 0:
            cut = [(victim, o, w)
                   for o, w in sorted(work.neighbors(victim).items())]
            changes = tuple(EdgeChange("remove", u, v) for u, v, _ in cut)
            removed[victim] = cut
            _apply_to_shadow(work, changes)
            events.append(ChurnEvent(r, changes))
        elif phase == 2 and victim in removed:
            heal = removed.pop(victim)
            changes = tuple(EdgeChange("insert", u, v, w)
                            for u, v, w in heal)
            _apply_to_shadow(work, changes)
            events.append(ChurnEvent(r, changes))
    return Trace("disconnect-heal", n, rounds, _seed_int(seed), events,
                 meta={"scenario": "disconnect-heal", "victims": vlist})


#: the named scenarios ``generate_trace`` / ``repro scenario`` accept
SCENARIOS: dict[str, Callable[..., Trace]] = {
    "flash-crowd": trace_flash_crowd,
    "rolling-churn": trace_rolling_churn,
    "weight-flap": trace_weight_flap,
    "disconnect-heal": trace_disconnect_heal,
    "steady-mix": trace_steady_mix,
}


def generate_trace(name: str, graph: Graph, *, seed: SeedLike = 0,
                   rounds: Optional[int] = None, **kwargs) -> Trace:
    """Generate a named scenario's trace for ``graph`` (see
    :data:`SCENARIOS`; ``rounds=None`` keeps the scenario default)."""
    try:
        gen = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}") from None
    if rounds is not None:
        kwargs["rounds"] = int(rounds)
    return gen(graph, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
@dataclass
class QueryRecord:
    """One consumed answer (a ``dist_many`` batch or one ``dist_stream``
    chunk) with everything the oracle needs to judge it."""

    event_index: int
    round: int
    chunk: int
    pairs: np.ndarray
    answers: Optional[np.ndarray]
    error: Optional[str]
    epoch_observed: Optional[int]
    epoch_at_submit: int
    applies_started_at_submit: int
    applies_started_at_consume: int
    latency_s: float
    overlapped: bool


@dataclass
class ApplyRecord:
    """One ``apply_updates`` call: the server's report and the
    wall-clock stall the writer saw."""

    event_index: int
    round: int
    changes: int
    report: UpdateReport
    seconds: float


class _RunState:
    """Shared between the writer loop and the reader threads.  Plain
    int reads/writes — the GIL makes the snapshots the readers take
    well-defined, and ``applies_started`` is bumped *before* the apply
    call so a consumed answer can never have been served by an epoch
    the counter does not yet cover."""

    __slots__ = ("applies_started", "apply_inflight")

    def __init__(self):
        self.applies_started = 0
        self.apply_inflight = 0


def _split_stream(arr: np.ndarray) -> list[np.ndarray]:
    if arr.shape[0] < 2:
        return [arr]
    return np.array_split(arr, min(4, arr.shape[0]))


def _drive_query(session: OracleClient, slot_lock: threading.Lock,
                 serial_lock: Optional[threading.Lock], ev: QueryEvent,
                 idx: int, state: _RunState) -> list[QueryRecord]:
    """Run one query event on its session slot; returns the records."""
    recs: list[QueryRecord] = []
    arr = ev.pair_array()
    guard = serial_lock if serial_lock is not None else nullcontext()
    with slot_lock, guard:
        if not ev.stream:
            e_sub = session.epoch
            a_sub = state.applies_started
            t0 = time.perf_counter()
            try:
                answers = session.dist_many(arr)
            except QueryError as exc:
                lat = time.perf_counter() - t0
                a_con = state.applies_started
                recs.append(QueryRecord(
                    idx, ev.round, 0, arr, None, str(exc), None, e_sub,
                    a_sub, a_con, lat,
                    a_con > a_sub or state.apply_inflight > 0))
            else:
                lat = time.perf_counter() - t0
                a_con = state.applies_started
                recs.append(QueryRecord(
                    idx, ev.round, 0, arr, answers, None,
                    session.last_result_epoch, e_sub, a_sub, a_con, lat,
                    a_con > a_sub or state.apply_inflight > 0))
            return recs
        chunks = _split_stream(arr)
        e_sub = session.epoch
        a_sub = state.applies_started
        t_prev = time.perf_counter()
        i = 0
        try:
            for answers in session.dist_stream(iter(chunks)):
                now = time.perf_counter()
                a_con = state.applies_started
                recs.append(QueryRecord(
                    idx, ev.round, i, chunks[i], answers, None,
                    session.last_result_epoch, e_sub, a_sub, a_con,
                    now - t_prev,
                    a_con > a_sub or state.apply_inflight > 0))
                t_prev = now
                i += 1
        except QueryError as exc:
            now = time.perf_counter()
            a_con = state.applies_started
            pairs = chunks[i] if i < len(chunks) else arr
            recs.append(QueryRecord(
                idx, ev.round, i, pairs, None, str(exc), None, e_sub,
                a_sub, a_con, now - t_prev,
                a_con > a_sub or state.apply_inflight > 0))
    return recs


def _pct_ms(vals) -> dict:
    """``{count, p50_ms, p99_ms, max_ms}`` over second-valued samples."""
    vals = [float(v) for v in vals]
    if not vals:
        return {"count": 0, "p50_ms": None, "p99_ms": None, "max_ms": None}
    arr = np.sort(np.asarray(vals, dtype=np.float64))
    return {"count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p99_ms": float(np.percentile(arr, 99) * 1e3),
            "max_ms": float(arr[-1] * 1e3)}


@dataclass
class ScenarioResult:
    """Everything one :func:`run_scenario` replay recorded."""

    trace: Trace
    endpoint: str
    queries: list
    applies: list
    staleness: dict
    seconds: float
    oracle_report: Optional[dict] = None

    @property
    def violations(self) -> list:
        if self.oracle_report is None:
            return []
        return list(self.oracle_report.get("violations", ()))

    @property
    def ok(self) -> bool:
        """True when the oracle (if armed) found zero violations."""
        return not self.violations

    def summary(self) -> dict:
        """A JSON-ready digest (what ``repro scenario`` prints and the
        E19 benchmark aggregates)."""
        lat_all = [r.latency_s for r in self.queries if r.error is None]
        lat_hot = [r.latency_s for r in self.queries
                   if r.error is None and r.overlapped]
        lat_quiet = [r.latency_s for r in self.queries
                     if r.error is None and not r.overlapped]
        errors = sum(1 for r in self.queries if r.error is not None)
        stale = sum(1 for r in self.queries
                    if r.epoch_observed is not None
                    and r.epoch_observed < r.epoch_at_submit)
        modes: dict[str, int] = {}
        for a in self.applies:
            modes[a.report.mode] = modes.get(a.report.mode, 0) + 1
        staleness = {k: v for k, v in self.staleness.items()
                     if k != "windows"}
        staleness["window_ms"] = _pct_ms(self.staleness.get("windows", ()))
        return {
            "trace": {"name": self.trace.name, "n": self.trace.n,
                      "rounds": self.trace.rounds,
                      "seed": self.trace.seed,
                      "events": {"query": len(self.trace.query_events),
                                 "churn": len(self.trace.churn_events)}},
            "endpoint": self.endpoint,
            "seconds": self.seconds,
            "queries": {"records": len(self.queries), "errors": errors,
                        "regressive_epochs": stale,
                        "latency_ms": _pct_ms(lat_all),
                        "latency_under_churn_ms": _pct_ms(lat_hot),
                        "latency_quiet_ms": _pct_ms(lat_quiet)},
            "hotswap": {"applies": len(self.applies), "modes": modes,
                        "policy": (self.applies[-1].report.policy
                                   if self.applies else None),
                        "stall_ms": _pct_ms(a.seconds
                                            for a in self.applies)},
            "staleness": staleness,
            "oracle": self.oracle_report,
        }


def run_scenario(trace: Trace, endpoint: str = "inproc://", *,
                 source=None, oracle: Optional["ScenarioOracle"] = None,
                 query_threads: int = 2,
                 pipeline_depth: Optional[int] = None,
                 timeout: float = 30.0) -> ScenarioResult:
    """Replay ``trace`` against an endpoint and record everything.

    :param endpoint: ``inproc://`` / ``proc://...`` (``source``
        required; one shared server, reader sessions on top), a remote
        ``tcp://host:port`` (``source`` forbidden — the server owns the
        index), or the bare sentinel ``"tcp://"``: serve ``source`` on
        a fresh loopback listener and drive it over real sockets.
    :param source: the :class:`~repro.service.updates.UpdateableIndex`
        to serve for non-remote endpoints (traces with churn need an
        updateable server wherever they run).
    :param oracle: an armed :class:`ScenarioOracle` verifies the run
        post-hoc and its report lands in ``result.oracle_report``.
    :param query_threads: reader sessions (and pool threads) the query
        events fan out across.

    Within a round every query event is submitted to the reader pool
    before the churn events are applied sequentially on the writer
    session — queries race the hot swap by construction.  Rounds are
    joined before the next one starts, so a trace's round structure is
    a real happens-before structure.
    """
    if query_threads < 1:
        raise ConfigError(f"query_threads must be >= 1, got {query_threads}")
    ep = endpoint.strip()
    server: Optional[OracleServer] = None
    owns_server = False
    writer: Optional[OracleClient] = None
    sessions: list[OracleClient] = []
    serial_lock: Optional[threading.Lock] = None
    t_run = time.perf_counter()
    try:
        if ep == "tcp://":
            if source is None:
                raise ConfigError(
                    "the bare tcp:// sentinel serves a local source on a "
                    "loopback listener — pass source=")
            server = OracleServer(source)
            owns_server = True
            host, port = server.serve("127.0.0.1:0", block=False)
            target = f"tcp://{host}:{port}"
            writer = connect(target, timeout=timeout,
                             pipeline_depth=pipeline_depth)
            sessions = [connect(target, timeout=timeout,
                                pipeline_depth=pipeline_depth)
                        for _ in range(query_threads)]
        elif parse_endpoint(ep).transport in ("tcp", "cluster"):
            if source is not None:
                raise ConfigError(
                    "a tcp://host:port (or cluster://) session carries "
                    "no data — drop source= (or use the bare 'tcp://' "
                    "sentinel to loopback-serve it)")
            target = ep
            writer = connect(ep, timeout=timeout,
                             pipeline_depth=pipeline_depth)
            sessions = [connect(ep, timeout=timeout,
                                pipeline_depth=pipeline_depth)
                        for _ in range(query_threads)]
        else:
            if source is None:
                raise ConfigError(f"{ep!r} needs a source= to serve")
            target = ep
            writer = connect(ep, source)  # owns the server it creates
            server = writer._transport._server
            sessions = [server.client(ep) for _ in range(query_threads)]
            if server._engine.serial_dispatch:
                serial_lock = threading.Lock()
        if trace.n != writer.n:
            raise ConfigError(
                f"trace is for an n={trace.n} graph but the endpoint "
                f"serves n={writer.n}")

        state = _RunState()
        slot_locks = [threading.Lock() for _ in sessions]
        queries: list[QueryRecord] = []
        applies: list[ApplyRecord] = []
        by_round = trace.by_round()
        next_slot = 0
        with ThreadPoolExecutor(max_workers=query_threads,
                                thread_name_prefix="scenario-query") as pool:
            for r in range(trace.rounds):
                futures = []
                churn: list[tuple[int, ChurnEvent]] = []
                for idx, ev in by_round.get(r, ()):
                    if isinstance(ev, QueryEvent):
                        slot = next_slot % len(sessions)
                        next_slot += 1
                        futures.append(pool.submit(
                            _drive_query, sessions[slot], slot_locks[slot],
                            serial_lock, ev, idx, state))
                    else:
                        churn.append((idx, ev))
                for idx, ev in churn:
                    state.applies_started += 1
                    state.apply_inflight += 1
                    t0 = time.perf_counter()
                    try:
                        report = writer.apply_updates(list(ev.changes))
                    finally:
                        state.apply_inflight -= 1
                    applies.append(ApplyRecord(
                        idx, r, len(ev.changes), report,
                        time.perf_counter() - t0))
                for fut in futures:
                    queries.extend(fut.result())

        staleness = {"results": 0, "stale_results": 0, "max_epoch_lag": 0,
                     "window_count": 0, "window_max_s": 0.0, "windows": []}
        for s in sessions + [writer]:
            st = s.staleness_stats()
            staleness["results"] += st["results"]
            staleness["stale_results"] += st["stale_results"]
            staleness["max_epoch_lag"] = max(staleness["max_epoch_lag"],
                                             st["max_epoch_lag"])
            staleness["window_count"] += st["window_count"]
            staleness["window_max_s"] = max(staleness["window_max_s"],
                                            st["window_max_s"])
            staleness["windows"].extend(st["window_seconds"])
    finally:
        for s in sessions:
            s.close()
        if writer is not None:
            writer.close()
        if owns_server and server is not None:
            server.close()
    result = ScenarioResult(trace=trace, endpoint=target, queries=queries,
                            applies=applies, staleness=staleness,
                            seconds=time.perf_counter() - t_run)
    if oracle is not None:
        result.oracle_report = oracle.verify(trace, result)
    return result


# ----------------------------------------------------------------------
# correctness oracle
# ----------------------------------------------------------------------
class ScenarioOracle:
    """Judge a recorded run against a twin index, epoch by epoch.

    Construction builds the same
    :class:`~repro.service.updates.UpdateableIndex` the server under
    test started from — same graph, scheme, seed, shard count and
    parameters, which the bit-identity invariant makes a *bitwise* twin
    of the served epoch 0.  :meth:`verify` then replays the recorded
    churn, keeping every epoch's store object alive (hot swaps never
    mutate a previous epoch's store), and checks each recorded answer:

    * the observed epoch must exist and be **legal** — at least the
      session's epoch when the query was submitted (monotonic-epoch
      rule) and at most the epoch produced by the last apply that had
      started before the answer was consumed;
    * the answers must be **bit-identical** to the twin store of that
      epoch (``QueryError`` results must likewise reproduce on some
      legal epoch);
    * every ``checkpoint_every`` applies the twin's repaired index is
      compared against a from-scratch
      :meth:`~repro.service.updates.UpdateableIndex.rebuild_reference`
      on sampled pairs, so the oracle itself cannot drift.

    One oracle verifies one run (the twin is consumed by the replay).
    """

    def __init__(self, graph: Graph, *, scheme: str = "tz",
                 seed: SeedLike = 0, num_shards: int = 1,
                 checkpoint_every: int = 4, checkpoint_pairs: int = 64,
                 **params):
        self._twin = UpdateableIndex(graph, scheme, seed,
                                     num_shards=num_shards, **params)
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_pairs = int(checkpoint_pairs)
        self._used = False

    @staticmethod
    def _eval(store, arr: np.ndarray):
        us = np.ascontiguousarray(arr[:, 0])
        vs = np.ascontiguousarray(arr[:, 1])
        try:
            return "ok", store.estimate_many(us, vs)
        except QueryError:
            return "error", None

    def _checkpoint(self, violations: list, at: int) -> None:
        twin = self._twin
        ref = twin.rebuild_reference()
        pairs = sample_query_pairs(twin.graph.n, self.checkpoint_pairs,
                                   seed=at)
        got_kind, got = self._eval(twin.index, pairs)
        want_kind, want = self._eval(ref, pairs)
        if got_kind != want_kind or (
                got_kind == "ok"
                and (got.shape != want.shape
                     or got.tobytes() != want.tobytes())):
            violations.append({
                "kind": "checkpoint-mismatch", "after_apply": at,
                "epoch": twin.epoch,
                "detail": f"repaired index != reference rebuild "
                          f"({got_kind} vs {want_kind})"})

    def verify(self, trace: Trace, result: ScenarioResult) -> dict:
        if self._used:
            raise ConfigError(
                "this ScenarioOracle already verified a run — the twin "
                "is consumed; build a fresh one")
        self._used = True
        twin = self._twin
        stores = {twin.epoch: twin.index}
        epochs_after = [twin.epoch]
        violations: list[dict] = []
        checkpoints = 0
        for i, ap in enumerate(result.applies):
            ev = trace.events[ap.event_index]
            rep = twin.apply(list(ev.changes))
            if rep.epoch != ap.report.epoch:
                violations.append({
                    "kind": "epoch-divergence", "event": ap.event_index,
                    "twin": rep.epoch, "server": ap.report.epoch,
                    "detail": "twin replay and server disagree on the "
                              "epoch sequence — runs not comparable"})
                break
            stores[rep.epoch] = twin.index
            epochs_after.append(rep.epoch)
            if self.checkpoint_every > 0 \
                    and (i + 1) % self.checkpoint_every == 0:
                checkpoints += 1
                self._checkpoint(violations, i + 1)
        checkpoints += 1
        self._checkpoint(violations, len(result.applies))
        checked = 0
        for rec in result.queries:
            checked += 1
            hi_idx = min(rec.applies_started_at_consume,
                         len(epochs_after) - 1)
            lo = rec.epoch_at_submit
            hi = epochs_after[hi_idx]
            legal = [e for e in stores if lo <= e <= hi]
            where = {"event": rec.event_index, "round": rec.round,
                     "chunk": rec.chunk}
            if rec.error is not None:
                if not any(self._eval(stores[e], rec.pairs)[0] == "error"
                           for e in legal):
                    violations.append({
                        "kind": "error-without-cause", **where,
                        "lo": lo, "hi": hi,
                        "detail": f"client saw QueryError ({rec.error}) "
                                  f"but no legal epoch reproduces it"})
                continue
            eo = rec.epoch_observed
            if eo is None or eo not in stores:
                violations.append({
                    "kind": "unknown-epoch", **where, "observed": eo,
                    "detail": "answer pinned to an epoch the replay "
                              "never produced"})
                continue
            if not lo <= eo <= hi:
                violations.append({
                    "kind": "illegal-epoch", **where, "observed": eo,
                    "lo": lo, "hi": hi,
                    "detail": "epoch outside the monotonic-rule window "
                              "the session could legally observe"})
                continue
            kind, want = self._eval(stores[eo], rec.pairs)
            if kind != "ok":
                violations.append({
                    "kind": "answer-where-oracle-errors", **where,
                    "epoch": eo,
                    "detail": "client got answers where the twin raises "
                              "QueryError"})
            elif (want.shape != rec.answers.shape
                    or want.tobytes() != rec.answers.tobytes()):
                bad = int(np.flatnonzero(want != rec.answers)[0]) \
                    if want.shape == rec.answers.shape else -1
                violations.append({
                    "kind": "bitwise-mismatch", **where, "epoch": eo,
                    "first_bad_pair": bad,
                    "detail": "answers not bit-identical to the twin "
                              "store of the observed epoch"})
        return {"checked": checked, "applies": len(result.applies),
                "checkpoints": checkpoints,
                "epochs": sorted(stores),
                "violations": violations}


# ----------------------------------------------------------------------
# one-call front door + policy comparison
# ----------------------------------------------------------------------
def run_named_scenario(name: str, graph: Graph, *, scheme: str = "tz",
                       seed: SeedLike = 0, rounds: Optional[int] = None,
                       trace_seed: Optional[SeedLike] = None,
                       endpoint: str = "inproc://",
                       policy: Union[RepairPolicy, str, None] = None,
                       num_shards: int = 1, query_threads: int = 2,
                       oracle: bool = True, checkpoint_every: int = 4,
                       trace: Optional[Trace] = None,
                       pipeline_depth: Optional[int] = None,
                       timeout: float = 30.0,
                       **params) -> ScenarioResult:
    """Generate (or take) a trace, build the server source and the
    oracle twin from the same ``(graph, scheme, seed, params)``, and
    replay.  ``policy`` is a :class:`~repro.service.updates.
    RepairPolicy` or a :func:`~repro.service.updates.make_policy` name
    for the *served* index (the oracle twin always verifies bitwise, so
    the policy can only change seconds).  For remote ``tcp://host:port``
    endpoints the server must have been built from the same inputs (the
    ``repro serve --updateable`` daemon on the same edge list) or the
    oracle will flag every answer."""
    if trace is None:
        trace = generate_trace(name, graph,
                               seed=seed if trace_seed is None
                               else trace_seed,
                               rounds=rounds)
    oracle_obj = (ScenarioOracle(graph, scheme=scheme, seed=seed,
                                 num_shards=num_shards,
                                 checkpoint_every=checkpoint_every,
                                 **params)
                  if oracle else None)
    ep = endpoint.strip()
    remote = ((ep != "tcp://" and ep.startswith("tcp://"))
              or ep.startswith("cluster://"))
    if remote:
        source = None
    else:
        if isinstance(policy, str):
            policy = make_policy(policy)
        source = UpdateableIndex(graph, scheme, seed,
                                 num_shards=num_shards, policy=policy,
                                 **params)
    return run_scenario(trace, ep, source=source, oracle=oracle_obj,
                        query_threads=query_threads,
                        pipeline_depth=pipeline_depth, timeout=timeout)


def compare_policies(graph: Graph, trace: Trace, *, scheme: str = "tz",
                     seed: SeedLike = 0, num_shards: int = 1,
                     policies: Sequence[str] = ("static", "adaptive"),
                     **params) -> dict:
    """Replay one trace's churn under each named repair policy on its
    own :class:`~repro.service.updates.UpdateableIndex` and report the
    decisions and costs side by side.

    The final indexes are cross-checked bitwise on sampled pairs —
    policy choice must only ever change seconds, never answers."""
    out: dict[str, dict] = {}
    finals = {}
    for pname in policies:
        upd = UpdateableIndex(graph, scheme, seed, num_shards=num_shards,
                              policy=make_policy(pname), **params)
        modes: dict[str, int] = {}
        secs: list[float] = []
        t0 = time.perf_counter()
        for ev in trace.churn_events:
            rep = upd.apply(list(ev.changes))
            modes[rep.mode] = modes.get(rep.mode, 0) + 1
            secs.append(rep.seconds.get("total", 0.0))
        out[pname] = {"policy": pname,
                      "applies": len(trace.churn_events),
                      "modes": modes,
                      "final_epoch": upd.epoch,
                      "apply_seconds_total": time.perf_counter() - t0,
                      "apply_ms": _pct_ms(secs),
                      "describe": upd.policy.describe()}
        finals[pname] = upd
    pairs = sample_query_pairs(graph.n, min(128, 4 * graph.n), seed=0)
    answers = {pname: ScenarioOracle._eval(upd.index, pairs)
               for pname, upd in finals.items()}
    kinds = {k for k, _ in answers.values()}
    identical = len(kinds) == 1 and (
        kinds == {"error"}
        or len({a.tobytes() for _, a in answers.values()}) == 1)
    return {"policies": out, "bitwise_identical": bool(identical)}


# ----------------------------------------------------------------------
# live-subprocess serving (the acceptance topology)
# ----------------------------------------------------------------------
@contextmanager
def served_subprocess(graph_path, *, scheme: str = "tz",
                      seed: int = 0, shards: int = 1,
                      policy: Optional[str] = None,
                      k: Optional[int] = None,
                      eps: Optional[float] = None,
                      timeout: float = 60.0,
                      extra_args: Sequence[str] = ()) -> Iterator[str]:
    """Spawn ``python -m repro serve GRAPH --updateable ...`` on a free
    loopback port and yield its ``tcp://host:port`` address; the
    daemon is terminated on exit.

    The child runs this checkout's :mod:`repro` (``PYTHONPATH`` is
    injected), so a scenario oracle built from
    ``read_edgelist(graph_path)`` with the same scheme/seed/params is a
    bitwise twin of what the daemon serves — note the *file* is the
    common ground truth: edge lists store weights at ``%.12g``, so
    build the oracle from the file, not from a pre-write graph object.
    """
    argv = [sys.executable, "-m", "repro", "serve", str(graph_path),
            "--updateable", "--scheme", scheme, "--seed", str(seed),
            "--shards", str(shards), "--addr", "127.0.0.1:0"]
    if policy is not None:
        argv += ["--policy", policy]
    if k is not None:
        argv += ["--k", str(k)]
    if eps is not None:
        argv += ["--eps", str(eps)]
    argv += list(extra_args)
    src = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "") \
        if env.get("PYTHONPATH") else src
    proc = subprocess.Popen(argv, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True, env=env)
    try:
        deadline = time.monotonic() + timeout
        address = None
        lines: list[str] = []
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
                continue
            lines.append(line)
            if " on tcp://" in line:
                address = line.rsplit(" on ", 1)[1].strip()
                break
        if address is None:
            raise ConfigError(
                "serve subprocess did not come up within "
                f"{timeout:.0f}s: {''.join(lines)!r}")
        yield address
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - hard stop
            proc.kill()
            proc.wait(timeout=10)
