"""Incremental index updates on edge-weight changes.

Every index the serving layer builds (:mod:`repro.service.index`) is a
frozen snapshot of one graph.  Real networks change, so this module adds
the **dynamic-update subsystem**: :class:`UpdateableIndex` accepts a
stream of :class:`EdgeChange` events (``increase`` / ``decrease`` /
``set`` weight, plus ``insert`` / ``remove`` where the scheme's
semantics allow) and repairs the affected sketch entries in place of a
from-scratch rebuild.

The repair is organized around two frontiers:

* the **dirty-source frontier** — for each changed edge ``{a, b}`` one
  shortest-path sweep from each endpoint decides, per node ``v``,
  whether *any* distance out of ``v`` can have moved: a weight increase
  matters to ``v`` only if the old edge was on a near-optimal ``v``-path
  (``d(v, a) + w_old <= d(v, b)`` or symmetrically, padded by a
  conservative float margin), a decrease only if the new edge opens a
  shorter route (``d(v, a) + w_new < d(v, b)`` or symmetrically).  Every
  scheme's sketch of a *clean* node is a pure function of that node's
  unchanged distance row (plus fixed random artifacts), so clean
  sketches are reused byte-for-byte.
* the **dirty-shard frontier** — only sketch entries owned by dirty
  nodes can change, so the index refresh
  (:func:`~repro.service.index.refresh_index`) rebuilds only the
  landmark shards holding a dirty owner's old or new entries; every
  clean shard's arrays and hash tables carry over to the new epoch by
  reference.  For the Thorup–Zwick family the dirty bunches themselves
  are recomputed from the Section 3.1 definition against the dirty
  nodes' own Dijkstra rows (see :func:`repair_tz_sketches`), never by
  re-growing the clean landmarks' trees.

Whether a batch is repaired or rebuilt is a :class:`RepairPolicy` call:
the default :class:`StaticThresholdPolicy` rebuilds past a fixed dirty
fraction (``rebuild_threshold``, default 0.25 — the PR 4 behavior),
while :class:`AdaptiveCostPolicy` learns the actual repair/rebuild
seconds of the running workload and picks the predicted-cheaper path
per batch (falling back to the static threshold until it has samples).
Localized repair only wins while the frontier is small, and either
fallback guarantees the cost is never worse than a rebuild by more than
the frontier sweep.

**The hard invariant** (property-tested per scheme × memory backing):
after ``apply``, the updated index answers *bit-identically* to an index
rebuilt from scratch on the mutated graph with the same random artifacts
(hierarchy / density nets / schedule), including
:class:`~repro.errors.QueryError` parity when an update disconnects the
graph.  Repairs therefore recompute with the *same primitives* the
builders certify — ``compute_pivot_keys`` for the pivot tables, the
definition-based bunch scan the differential tests prove equal to
cluster growing, ``scipy``'s Dijkstra rows for the slack schemes'
tables — never with a "close enough" shortcut.

Epoch semantics: every effective ``apply`` produces a **new**
:class:`~repro.service.index.IndexStore` (clean shards shared
structurally, affected shards rebuilt) and bumps :attr:`epoch`; the old
store object is never mutated, which is what lets a serving session
hot-swap epochs while in-flight batches finish on the old pack.  Serve
a live index by passing it as the source of
:func:`repro.service.transport.connect` (any transport) or of an
:class:`~repro.service.transport.OracleServer` —
``client.apply_updates(changes)`` then swaps with zero downtime, and a
TCP server pushes the epoch bump to every connected session
(``python -m repro serve GRAPH --updateable`` is the daemon form).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field, fields
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.errors import ConfigError, GraphError, QueryError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp
from repro.rng import SeedLike, ensure_rng
from repro.service.index import IndexStore, build_index, refresh_index
from repro.slack.cdg import CDGSketch, build_cdg_centralized, _net_hierarchy
from repro.slack.density_net import (DensityNet, nearest_in_set_centralized,
                                     sample_density_net)
from repro.slack.graceful import GracefulSketch, graceful_schedule
from repro.slack.stretch3 import Stretch3Sketch, build_stretch3_centralized
from repro.tz.centralized import (build_tz_sketches_centralized, cluster_of,
                                  compute_pivot_keys)
from repro.tz.hierarchy import Hierarchy, sample_hierarchy
from repro.tz.sketch import TZSketch

#: ops an :class:`EdgeChange` can carry
CHANGE_OPS = ("set", "increase", "decrease", "insert", "remove")

#: default dirty-fraction beyond which apply() falls back to a rebuild
REBUILD_THRESHOLD_DEFAULT = 0.25

#: relative pad on the dirtiness tests — float path sums computed from
#: the two ends of a path can differ by a few ulps, so the frontier
#: tests over-approximate by this margin (more dirty nodes, never fewer)
_MARGIN_REL = 1e-9

#: policy names :func:`make_policy` accepts (the CLI surface)
POLICY_NAMES = ("static", "adaptive")


# ----------------------------------------------------------------------
# repair-vs-rebuild policies
# ----------------------------------------------------------------------
class RepairPolicy:
    """Decides, per change batch, whether :meth:`UpdateableIndex.apply`
    repairs the dirty frontier or falls back to a full rebuild.

    The decision is a pure performance choice — the module invariant
    (updated index ≡ from-scratch rebuild, bitwise) holds on either
    path, so a policy can never affect answers, only seconds.
    Subclasses implement :meth:`decide` and may use the measurement
    callbacks (:meth:`note_build`, :meth:`observe`) to learn the actual
    repair/rebuild costs of the workload they are running on.
    """

    name = "policy"

    def decide(self, dirty: int, n: int) -> str:
        """``"repair"`` or ``"rebuild"`` for a batch whose dirty-source
        frontier holds ``dirty`` of ``n`` nodes."""
        raise NotImplementedError

    def note_build(self, seconds: float, n: int) -> None:
        """Called once, after the initial from-scratch sketch build —
        the first (and before any rebuild the only) cost sample of the
        rebuild path."""

    def observe(self, mode: str, dirty: int, n: int,
                seconds: float) -> None:
        """Called after every effective apply with the measured
        repair/rebuild phase seconds (frontier and index-refresh time
        excluded — both paths pay those)."""

    def describe(self) -> dict:
        """A JSON-ready snapshot of the policy state (what E19 and the
        scenario runner report)."""
        return {"policy": self.name}


class StaticThresholdPolicy(RepairPolicy):
    """The PR 4 behavior: rebuild when the dirty fraction exceeds a
    fixed threshold (default :data:`REBUILD_THRESHOLD_DEFAULT`) —
    the fallback every adaptive policy degrades to before it has
    measurements."""

    name = "static"

    def __init__(self, threshold: float = REBUILD_THRESHOLD_DEFAULT):
        if not (0.0 <= threshold <= 1.0):
            raise ConfigError(f"rebuild threshold must be in [0, 1], "
                              f"got {threshold}")
        self.threshold = float(threshold)

    def decide(self, dirty: int, n: int) -> str:
        frac = dirty / n if n else 0.0
        return "rebuild" if frac > self.threshold else "repair"

    def describe(self) -> dict:
        return {"policy": self.name, "threshold": self.threshold}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticThresholdPolicy({self.threshold})"


class AdaptiveCostPolicy(RepairPolicy):
    """Pick repair vs rebuild per batch from *measured* costs.

    E16 shows the repair-vs-rebuild crossover is sharp but
    workload-dependent — a fixed dirty-fraction threshold is wrong on
    one side or the other for any given graph family.  This policy
    models the two paths from its own observations:

    * rebuild cost ≈ a constant per batch (a full build touches all
      ``n`` sketches regardless of the frontier), seeded from the
      initial build via :meth:`note_build` and refined by an
      exponentially-weighted moving average over observed rebuilds;
    * repair cost ≈ ``seconds_per_dirty × dirty`` (the repair scales
      with the frontier), the per-dirty-source rate EWMA'd over
      observed repairs.

    A batch is repaired when the predicted repair cost is at most the
    predicted rebuild cost.  Until both sides have at least one sample
    the policy defers to the static-threshold fallback, so cold-start
    behavior is exactly the PR 4 default.  Every decision is logged in
    :attr:`decisions` with its predictions and basis ("model" or
    "fallback") — the adaptive-vs-static evidence E19 reports.
    """

    name = "adaptive"

    def __init__(self, fallback_threshold: float = REBUILD_THRESHOLD_DEFAULT,
                 smoothing: float = 0.5):
        if not (0.0 < smoothing <= 1.0):
            raise ConfigError(f"smoothing must be in (0, 1], "
                              f"got {smoothing}")
        self.fallback = StaticThresholdPolicy(fallback_threshold)
        self.smoothing = float(smoothing)
        self.rebuild_seconds: Optional[float] = None
        self.repair_per_dirty: Optional[float] = None
        self.decisions: list[dict] = []

    def _blend(self, old: Optional[float], new: float) -> float:
        if old is None:
            return float(new)
        return (1.0 - self.smoothing) * old + self.smoothing * new

    def decide(self, dirty: int, n: int) -> str:
        pred_repair = (None if self.repair_per_dirty is None
                       else self.repair_per_dirty * dirty)
        pred_rebuild = self.rebuild_seconds
        if pred_repair is None or pred_rebuild is None:
            mode = self.fallback.decide(dirty, n)
            basis = "fallback"
        else:
            mode = "repair" if pred_repair <= pred_rebuild else "rebuild"
            basis = "model"
        self.decisions.append({
            "dirty": int(dirty), "n": int(n), "mode": mode, "basis": basis,
            "predicted_repair_s": pred_repair,
            "predicted_rebuild_s": pred_rebuild})
        return mode

    def note_build(self, seconds: float, n: int) -> None:
        if seconds > 0.0:
            self.rebuild_seconds = float(seconds)

    def observe(self, mode: str, dirty: int, n: int,
                seconds: float) -> None:
        if seconds <= 0.0:
            return
        if mode == "rebuild":
            self.rebuild_seconds = self._blend(self.rebuild_seconds,
                                               seconds)
        elif mode == "repair" and dirty > 0:
            self.repair_per_dirty = self._blend(self.repair_per_dirty,
                                                seconds / dirty)

    def describe(self) -> dict:
        return {"policy": self.name,
                "fallback_threshold": self.fallback.threshold,
                "rebuild_seconds": self.rebuild_seconds,
                "repair_per_dirty": self.repair_per_dirty,
                "decisions": list(self.decisions)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AdaptiveCostPolicy(rebuild_s={self.rebuild_seconds}, "
                f"per_dirty_s={self.repair_per_dirty}, "
                f"decisions={len(self.decisions)})")


def make_policy(name: str,
                rebuild_threshold: Optional[float] = None) -> RepairPolicy:
    """The CLI-facing policy factory: ``"static"`` →
    :class:`StaticThresholdPolicy`, ``"adaptive"`` →
    :class:`AdaptiveCostPolicy` (with the threshold as its cold-start
    fallback)."""
    threshold = (REBUILD_THRESHOLD_DEFAULT if rebuild_threshold is None
                 else rebuild_threshold)
    if name == "static":
        return StaticThresholdPolicy(threshold)
    if name == "adaptive":
        return AdaptiveCostPolicy(fallback_threshold=threshold)
    raise ConfigError(f"unknown repair policy {name!r}; "
                      f"choose from {POLICY_NAMES}")


# ----------------------------------------------------------------------
# the change stream
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeChange:
    """One edge mutation.

    :param op: ``"set"`` / ``"increase"`` / ``"decrease"`` change the
        weight of an existing edge (direction-checked for the latter
        two); ``"insert"`` adds a new edge; ``"remove"`` deletes one.
    :param u,v: endpoints (order irrelevant — edges are undirected).
    :param weight: the new weight (ignored for ``"remove"``).
    """

    op: str
    u: int
    v: int
    weight: Optional[float] = None

    def __post_init__(self):
        if self.op not in CHANGE_OPS:
            raise ConfigError(f"unknown change op {self.op!r}; "
                              f"choose from {CHANGE_OPS}")
        if self.op != "remove":
            w = self.weight
            if w is None or not (float(w) > 0) or not np.isfinite(w):
                raise ConfigError(
                    f"{self.op} needs a positive finite weight, "
                    f"got {self.weight!r}")
        if self.u == self.v:
            raise ConfigError(f"self-loop change on node {self.u}")

    def as_dict(self) -> dict:
        d = {"op": self.op, "u": self.u, "v": self.v}
        if self.op != "remove":
            d["weight"] = float(self.weight)
        return d

    @classmethod
    def from_dict(cls, data: Mapping) -> "EdgeChange":
        try:
            return cls(op=str(data["op"]), u=int(data["u"]),
                       v=int(data["v"]), weight=data.get("weight"))
        except KeyError as exc:
            raise ConfigError(f"edge change missing field {exc}") from None


def save_changes_jsonl(changes: Iterable[EdgeChange], path) -> None:
    """Persist a change stream as JSON lines (one tagged change per
    line; the envelope lives in :mod:`repro.oracle.serialization` with
    the library's other wire formats)."""
    from repro.oracle.serialization import change_to_dict

    with open(path, "w", encoding="ascii") as fh:
        for c in changes:
            fh.write(json.dumps(change_to_dict(c), separators=(",", ":")))
            fh.write("\n")


def load_changes_jsonl(path) -> list[EdgeChange]:
    """Load a change stream written by :func:`save_changes_jsonl`."""
    from repro.oracle.serialization import change_from_dict

    out = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(change_from_dict(json.loads(line)))
    return out


def sample_weight_changes(graph: Graph, count: int, seed: SeedLike = 0,
                          low: float = 0.5, high: float = 2.0,
                          ) -> list[EdgeChange]:
    """A reproducible batch of ``count`` random weight perturbations:
    distinct edges, each weight scaled by a uniform factor in
    ``[low, high]`` (the workload of ``update-bench`` / E16)."""
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    edges = list(graph.edges())
    if not edges:
        raise ConfigError("graph has no edges to perturb")
    rng = ensure_rng(seed)
    picks = rng.choice(len(edges), size=min(count, len(edges)),
                       replace=False)
    out = []
    for j in picks:
        u, v, w = edges[int(j)]
        factor = float(rng.uniform(low, high))
        out.append(EdgeChange(op="set", u=u, v=v,
                              weight=max(w * factor, 1e-12)))
    return out


# ----------------------------------------------------------------------
# the dirty-source frontier
# ----------------------------------------------------------------------
def _endpoint_rows(graph: Graph, a: int, b: int) -> tuple[np.ndarray,
                                                          np.ndarray]:
    """``(d(a, ·), d(b, ·))`` on the current graph (the frontier sweep)."""
    if graph.n == 1:  # degenerate, no edges possible anyway
        z = np.zeros(1)
        return z, z
    rows = _csgraph_dijkstra(graph.to_csr(), directed=False,
                             indices=[a, b])
    return rows[0], rows[1]


def _dirty_for_change(d_a: np.ndarray, d_b: np.ndarray, w_old: float,
                      w_new: float) -> np.ndarray:
    """Boolean dirty mask for one weight change (``inf`` spellings cover
    insert — ``w_old = inf`` — and remove — ``w_new = inf``).

    Conservative: a node is kept *clean* only when no near-optimal path
    out of it can touch the edge, padded by :data:`_MARGIN_REL`.
    """
    both_far = np.isinf(d_a) & np.isinf(d_b)
    margin = _MARGIN_REL * (1.0 + np.where(np.isfinite(d_a), d_a, 0.0)
                            + np.where(np.isfinite(d_b), d_b, 0.0))
    dirty = np.zeros(d_a.shape[0], dtype=bool)
    if w_new < w_old:  # decrease / insert: a new route may open
        dirty |= (d_a + w_new < d_b + margin) | (d_b + w_new < d_a + margin)
    if w_new > w_old:  # increase / remove: an old route may close
        dirty |= (d_a + w_old <= d_b + margin) | (d_b + w_old <= d_a + margin)
    dirty &= ~both_far
    return dirty


def dirty_frontier(graph: Graph, changes: Sequence[EdgeChange],
                   ) -> np.ndarray:
    """Apply ``changes`` to ``graph`` **in place**, returning the sorted
    array of dirty sources — nodes whose distance row may have moved.

    Each change is tested against the graph state it lands on (two
    endpoint Dijkstra sweeps per change), so a batch composes exactly
    like replaying the changes one by one.

    :raises GraphError: for an ``insert`` of an existing edge, a
        ``remove``/weight change of a missing one, or an ``increase`` /
        ``decrease`` in the wrong direction — raised **before** any
        mutation lands, so a bad stream leaves the graph untouched.
    """
    shadow = graph.copy()  # validate the whole stream before mutating
    for c in changes:
        if not (0 <= c.u < shadow.n and 0 <= c.v < shadow.n):
            raise GraphError(f"change endpoints ({c.u}, {c.v}) out of "
                             f"range [0, {shadow.n})")
        if c.op == "insert":
            if shadow.has_edge(c.u, c.v):
                raise GraphError(
                    f"insert: edge ({c.u}, {c.v}) already exists "
                    f"(use set/increase/decrease)")
            shadow.add_edge(c.u, c.v, c.weight)
        elif c.op == "remove":
            shadow.remove_edge(c.u, c.v)
        else:
            w_old = shadow.weight(c.u, c.v)
            if c.op == "increase" and not c.weight > w_old:
                raise GraphError(
                    f"increase on ({c.u}, {c.v}): {c.weight} <= {w_old}")
            if c.op == "decrease" and not c.weight < w_old:
                raise GraphError(
                    f"decrease on ({c.u}, {c.v}): {c.weight} >= {w_old}")
            shadow.set_weight(c.u, c.v, c.weight)

    # the shadow pass above is the single validation point; from here on
    # every change is known to be legal against the state it lands on
    dirty = np.zeros(graph.n, dtype=bool)
    for c in changes:
        if c.op == "insert":
            w_old, w_new = np.inf, float(c.weight)
        elif c.op == "remove":
            w_old, w_new = graph.weight(c.u, c.v), np.inf
        else:
            w_old, w_new = graph.weight(c.u, c.v), float(c.weight)
        if w_new == w_old:
            continue
        d_a, d_b = _endpoint_rows(graph, c.u, c.v)
        dirty |= _dirty_for_change(d_a, d_b, w_old, w_new)
        if c.op == "remove":
            graph.remove_edge(c.u, c.v)
        elif c.op == "insert":
            graph.add_edge(c.u, c.v, w_new)
        else:
            graph.set_weight(c.u, c.v, w_new)
    return np.flatnonzero(dirty)


def _dijkstra_rows(graph: Graph, sources: Sequence[int]) -> np.ndarray:
    """Distance rows for ``sources`` — bitwise the corresponding rows of
    :func:`~repro.graphs.metrics.apsp` (same solver, same CSR)."""
    if graph.n == 1:
        return np.zeros((len(sources), 1))
    return np.atleast_2d(_csgraph_dijkstra(graph.to_csr(), directed=False,
                                           indices=list(sources)))


# ----------------------------------------------------------------------
# Thorup–Zwick repair (shared by the tz scheme and the CDG net labels)
# ----------------------------------------------------------------------
def repair_tz_sketches(graph: Graph, hierarchy: Hierarchy,
                       dirty: Sequence[int],
                       dist_rows: Optional[np.ndarray] = None,
                       ) -> dict[int, TZSketch]:
    """Recompute the TZ sketches of ``dirty`` nodes on the (already
    mutated) graph, bit-identical to a full
    :func:`~repro.tz.centralized.build_tz_sketches_centralized` rerun.

    The pivot tables are recomputed with the builder's own multi-source
    sweeps (cheap: ``k`` Dijkstras — the part of the build whose cost
    does not scale with the dirty set).  Bunch entries are direction-
    sensitive at the ulp level (a float path sum depends on which end
    the Dijkstra ran from), so every stored distance is recomputed in
    the **builder's direction — from the landmark**:

    * top-level landmarks (``A_{k-1}``, whose clusters are untruncated
      and belong to every bunch) contribute one from-landmark Dijkstra
      row each — bitwise what the untruncated
      :func:`~repro.tz.centralized.cluster_of` stores, at a fixed cost
      independent of the dirty set;
    * sub-top candidate landmarks — the only ones whose (small,
      truncated) clusters could hold a dirty node, discovered by a
      margin-padded threshold scan of the dirty nodes' own rows — are
      re-grown with :func:`~repro.tz.centralized.cluster_of` itself.

    The dirty nodes' from-source rows steer *which* clusters are
    re-grown; they never supply a stored float.

    :param dist_rows: optional pre-computed Dijkstra rows for ``dirty``
        (row ``j`` is node ``dirty[j]``); computed here when omitted.
    :returns: ``{node: new TZSketch}`` for exactly the dirty nodes.
    """
    dirty = sorted(int(v) for v in dirty)
    if not dirty:
        return {}
    k = hierarchy.k
    pivot_keys = compute_pivot_keys(graph, hierarchy)
    if dist_rows is None:
        dist_rows = _dijkstra_rows(graph, dirty)

    # margin-padded discovery of the sub-top clusters that could hold a
    # dirty node: candidate w at level i iff d(v, w) <= d(v, A_{i+1}) + pad
    roots: set[int] = set()
    for j, v in enumerate(dirty):
        row = dist_rows[j]
        for i in range(k - 1):
            members = hierarchy.exact_level(i)
            if members.size == 0:
                continue
            thr = pivot_keys[i + 1][v]
            if thr.is_inf():
                near = members[np.isfinite(row[members])]
            else:
                pad = _MARGIN_REL * (1.0 + thr.dist)
                near = members[row[members] <= thr.dist + pad]
            roots.update(int(w) for w in near)
    clusters: dict[int, tuple[int, dict[int, float]]] = {}
    for w in sorted(roots):
        lvl = hierarchy.level_of(w)
        clusters[w] = (lvl, cluster_of(graph, w, lvl, pivot_keys[lvl + 1]))

    top = hierarchy.exact_level(k - 1)
    top_rows = (_dijkstra_rows(graph, [int(w) for w in top])
                if top.size else None)

    out: dict[int, TZSketch] = {}
    for j, v in enumerate(dirty):
        # canonical (level, landmark) insertion order, matching
        # merge_cluster_tables, so dict iteration order is reproducible
        entries = sorted(((lvl, w, c[v])
                          for w, (lvl, c) in clusters.items() if v in c),
                         key=lambda e: (e[0], e[1]))
        bunch: dict[int, tuple[float, int]] = {
            w: (d, lvl) for lvl, w, d in entries}
        for jj, w in enumerate(top):
            d = top_rows[jj, v]
            if np.isfinite(d):
                bunch[int(w)] = (float(d), k - 1)
        pivots = tuple((pivot_keys[i][v].node, pivot_keys[i][v].dist)
                       for i in range(k))
        out[v] = TZSketch(node=v, k=k, pivots=pivots, bunch=bunch)
    return out


# ----------------------------------------------------------------------
# per-scheme build/repair strategies (fixed random artifacts)
# ----------------------------------------------------------------------
class _TZState:
    scheme = "tz"

    def __init__(self, hierarchy: Hierarchy):
        self.hierarchy = hierarchy

    def build(self, graph: Graph) -> list[TZSketch]:
        sketches, _ = build_tz_sketches_centralized(
            graph, hierarchy=self.hierarchy)
        return sketches

    def repair(self, graph: Graph, sketches: list, dirty: np.ndarray,
               ) -> tuple[list, set[int]]:
        fresh = repair_tz_sketches(graph, self.hierarchy, dirty)
        out = list(sketches)
        for v, s in fresh.items():
            out[v] = s
        return out, set(fresh)


class _Stretch3State:
    scheme = "stretch3"

    def __init__(self, net: DensityNet, eps: float):
        self.net = net
        self.eps = float(eps)

    def build(self, graph: Graph,
              dist_matrix: Optional[np.ndarray] = None) -> list:
        sketches, _ = build_stretch3_centralized(
            graph, self.eps, net=self.net, dist_matrix=dist_matrix)
        return sketches

    def repair(self, graph: Graph, sketches: list, dirty: np.ndarray,
               dist_rows: Optional[np.ndarray] = None,
               ) -> tuple[list, set[int]]:
        dirty = [int(v) for v in dirty]
        if dist_rows is None:
            dist_rows = _dijkstra_rows(graph, dirty)
        members = list(self.net.members)
        out = list(sketches)
        for j, v in enumerate(dirty):
            row = dist_rows[j]
            out[v] = Stretch3Sketch(
                node=v, eps=self.eps,
                entries={w: float(row[w]) for w in members})
        return out, set(dirty)


class _CDGState:
    scheme = "cdg"

    def __init__(self, net: DensityNet, hierarchy: Hierarchy, eps: float,
                 k: int):
        self.net = net
        self.hierarchy = hierarchy
        self.eps = float(eps)
        self.k = int(k)

    def build(self, graph: Graph,
              dist_matrix: Optional[np.ndarray] = None) -> list[CDGSketch]:
        sketches, _, _ = build_cdg_centralized(
            graph, self.eps, self.k, net=self.net,
            hierarchy=self.hierarchy, dist_matrix=dist_matrix)
        return sketches

    def repair(self, graph: Graph, sketches: list, dirty: np.ndarray,
               dist_rows: Optional[np.ndarray] = None,
               ) -> tuple[list, set[int]]:
        dirty = [int(v) for v in dirty]
        if dist_rows is None:
            dist_rows = _dijkstra_rows(graph, dirty)
        members = list(self.net.members)
        member_set = set(members)
        # every net member is its own gateway (d(w, w) = 0 always wins),
        # so member w's current label is sketches[w].label
        labels = {w: sketches[w].label for w in members}
        net_dirty = [v for v in dirty if v in member_set]
        if net_dirty:
            rows_idx = {v: j for j, v in enumerate(dirty)}
            sub_rows = dist_rows[[rows_idx[v] for v in net_dirty]]
            fresh = repair_tz_sketches(graph, self.hierarchy, net_dirty,
                                       dist_rows=sub_rows)
            labels.update(fresh)
        gateways = nearest_in_set_centralized(dist_rows, members)
        new_gw = {v: gateways[j] for j, v in enumerate(dirty)}
        out = list(sketches)
        touched: set[int] = set()
        for u, s in enumerate(sketches):
            if u in new_gw:
                gd, gw = new_gw[u]
            else:
                gd, gw = s.gateway_dist, s.gateway
            if gw < 0:
                raise QueryError(
                    f"update strands node {u} from the density net "
                    f"(no reachable member); rebuild with a net covering "
                    f"every component")
            lbl = labels[gw]
            if u in new_gw or lbl is not s.label:
                out[u] = CDGSketch(node=u, eps=self.eps, k=self.k,
                                   gateway=gw, gateway_dist=gd, label=lbl)
                touched.add(u)
        return out, touched


class _GracefulState:
    scheme = "graceful"

    def __init__(self, schedule: list, components: list[_CDGState]):
        self.schedule = schedule
        self.components = components

    def build(self, graph: Graph) -> list[GracefulSketch]:
        d = apsp(graph)
        per_level = [c.build(graph, dist_matrix=d) for c in self.components]
        return [GracefulSketch(node=u,
                               components=tuple(lvl[u] for lvl in per_level))
                for u in range(graph.n)]

    def repair(self, graph: Graph, sketches: list, dirty: np.ndarray,
               ) -> tuple[list, set[int]]:
        dirty_list = [int(v) for v in dirty]
        rows = _dijkstra_rows(graph, dirty_list)
        touched: set[int] = set()
        per_level = []
        for i, comp in enumerate(self.components):
            comp_sketches = [s.components[i] for s in sketches]
            repaired, comp_touched = comp.repair(graph, comp_sketches,
                                                 dirty, dist_rows=rows)
            per_level.append(repaired)
            touched |= comp_touched
        out = list(sketches)
        for u in touched:
            out[u] = GracefulSketch(
                node=u, components=tuple(lvl[u] for lvl in per_level))
        return out, touched


def _make_state(graph: Graph, scheme: str, seed: SeedLike, params: dict):
    """Sample the scheme's random artifacts exactly as
    :func:`~repro.oracle.api.build_sketches` would for the same seed, and
    wrap them in the matching repair strategy."""
    rng = ensure_rng(seed)
    n = graph.n
    if scheme == "tz":
        hierarchy = params.get("hierarchy")
        if hierarchy is None:
            k = params.get("k")
            if k is None:
                raise ConfigError("tz scheme needs k (or a hierarchy)")
            hierarchy = sample_hierarchy(n, k, seed=rng)
        return _TZState(hierarchy)
    if scheme == "stretch3":
        eps = params.get("eps")
        if eps is None:
            raise ConfigError("stretch3 scheme needs eps")
        net = params.get("net") or sample_density_net(n, eps, seed=rng)
        return _Stretch3State(net, eps)
    if scheme == "cdg":
        eps, k = params.get("eps"), params.get("k")
        if eps is None or k is None:
            raise ConfigError("cdg scheme needs eps and k")
        net = params.get("net") or sample_density_net(n, eps, seed=rng)
        hierarchy = (params.get("hierarchy")
                     or _net_hierarchy(graph, net, eps, k, rng))
        return _CDGState(net, hierarchy, eps, k)
    if scheme == "graceful":
        schedule = params.get("schedule") or graceful_schedule(n)
        components = []
        for eps, k in schedule:
            net = sample_density_net(n, eps, seed=rng)
            hierarchy = _net_hierarchy(graph, net, eps, k, rng)
            components.append(_CDGState(net, hierarchy, eps, k))
        return _GracefulState(schedule, components)
    raise ConfigError(f"scheme {scheme!r} has no update strategy")


# ----------------------------------------------------------------------
# the updateable index
# ----------------------------------------------------------------------
@dataclass
class UpdateReport:
    """What one :meth:`UpdateableIndex.apply` did."""

    mode: str               # "noop" | "repair" | "rebuild"
    epoch: int              # epoch after the apply
    changes: int            # changes applied to the graph
    dirty: int              # dirty-source frontier size
    touched: int            # sketches actually replaced
    n: int
    dirty_fraction: float
    seconds: dict = field(default_factory=dict)
    policy: str = "static"  # name of the policy that made the call

    def as_dict(self) -> dict:
        return {"mode": self.mode, "epoch": self.epoch,
                "changes": self.changes, "dirty": self.dirty,
                "touched": self.touched, "n": self.n,
                "dirty_fraction": self.dirty_fraction,
                "seconds": dict(self.seconds),
                "policy": self.policy}

    _WIRE_DEFAULTS = {"mode": "unknown", "epoch": 0, "changes": 0,
                      "dirty": 0, "touched": 0, "n": 0,
                      "dirty_fraction": 0.0, "policy": "static"}

    @classmethod
    def from_wire(cls, data: Mapping) -> "UpdateReport":
        """Construct tolerantly from a wire dict: unknown keys (a newer
        server reporting fields this build does not know) are ignored,
        missing ones fall back to neutral defaults — protocol version
        skew must degrade the report, not crash the session."""
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in dict(data).items() if k in known}
        for name, default in cls._WIRE_DEFAULTS.items():
            kwargs.setdefault(name, default)
        return cls(**kwargs)


class UpdateableIndex:
    """A live index over a mutable graph: apply edge changes, get a new
    epoch's :class:`~repro.service.index.IndexStore`.

    :param graph: the starting graph (copied; later mutations happen on
        the copy via :meth:`apply`).
    :param scheme: ``"tz"`` | ``"stretch3"`` | ``"cdg"`` | ``"graceful"``
        (centralized builds only — the artifacts are sampled once from
        ``seed`` and pinned for the index's lifetime, so a from-scratch
        rebuild is always well defined).
    :param num_shards: landmark shard count of every epoch's store.
    :param rebuild_threshold: dirty fraction above which :meth:`apply`
        falls back to a full rebuild (ignored when ``policy`` is given).
    :param policy: a :class:`RepairPolicy` deciding repair vs rebuild
        per batch; ``None`` keeps the PR 4 behavior — a
        :class:`StaticThresholdPolicy` at ``rebuild_threshold``.
    :param sketches: optionally, the already-built sketch set for this
        exact (graph, artifacts) pair — skips the initial build.
    :param params: scheme parameters (``k`` / ``eps`` / ``hierarchy`` /
        ``net`` / ``schedule``), as for
        :func:`~repro.oracle.api.build_sketches`.
    """

    def __init__(self, graph: Graph, scheme: str = "tz",
                 seed: SeedLike = None, num_shards: int = 1,
                 rebuild_threshold: float = REBUILD_THRESHOLD_DEFAULT,
                 sketches: Optional[list] = None,
                 policy: Optional[RepairPolicy] = None, **params):
        if not (0.0 <= rebuild_threshold <= 1.0):
            raise ConfigError(f"rebuild_threshold must be in [0, 1], "
                              f"got {rebuild_threshold}")
        self.graph = graph.copy()
        self.scheme = scheme
        self.num_shards = int(num_shards)
        self.rebuild_threshold = float(rebuild_threshold)
        self.policy: RepairPolicy = (
            policy if policy is not None
            else StaticThresholdPolicy(rebuild_threshold))
        self._state = _make_state(self.graph, scheme, seed, params)
        t_build = time.perf_counter()
        built_here = sketches is None
        self.sketches = (list(sketches) if sketches is not None
                         else self._state.build(self.graph))
        if len(self.sketches) != self.graph.n:
            raise ConfigError(
                f"{len(self.sketches)} sketches for a "
                f"{self.graph.n}-node graph")
        self.index: IndexStore = build_index(self.sketches,
                                             num_shards=self.num_shards)
        if built_here:
            # the initial build is the first cost sample of the rebuild
            # path; a pre-built sketch set measured only the index
            # packing, which would wildly understate a rebuild
            self.policy.note_build(time.perf_counter() - t_build,
                                   self.graph.n)
        self.epoch = 0
        self.last_report: Optional[UpdateReport] = None

    # ------------------------------------------------------------------
    def apply(self, changes: Sequence[EdgeChange]) -> UpdateReport:
        """Apply a change batch and refresh the index.

        Repairs (or rebuilds, past the threshold) the sketch set and
        installs a **new** index object — the previous epoch's store is
        left untouched for readers still on it.  Bit-identity with a
        from-scratch rebuild is the module invariant; see the module
        docstring.

        Atomic: the changes land on a working copy of the graph, and
        all state (graph, sketches, index, epoch) commits together only
        after the repair succeeds — an exception anywhere (a bad
        change, a repair that strands a node from a density net) leaves
        the index exactly as it was.
        """
        t0 = time.perf_counter()
        changes = list(changes)
        work = self.graph.copy()
        dirty = dirty_frontier(work, changes)
        t1 = time.perf_counter()
        n = work.n
        frac = dirty.size / n if n else 0.0
        secs = {"frontier": t1 - t0}
        if dirty.size == 0:
            self.graph = work  # weights may still have moved (harmlessly)
            secs["total"] = time.perf_counter() - t0
            report = UpdateReport(mode="noop", epoch=self.epoch,
                                  changes=len(changes), dirty=0, touched=0,
                                  n=n, dirty_fraction=0.0, seconds=secs,
                                  policy=self.policy.name)
            self.last_report = report
            return report
        mode = self.policy.decide(int(dirty.size), n)
        if mode not in ("repair", "rebuild"):
            raise ConfigError(
                f"policy {self.policy.name!r} returned {mode!r}; "
                f"a decision must be 'repair' or 'rebuild'")
        if mode == "rebuild":
            sketches = self._state.build(work)
            touched = set(range(n))
            t2 = time.perf_counter()
            index = build_index(sketches, num_shards=self.num_shards)
        else:
            sketches, touched = self._state.repair(work, self.sketches,
                                                   dirty)
            t2 = time.perf_counter()
            index = refresh_index(self.index, sketches, touched)
        t3 = time.perf_counter()
        secs.update({"repair": t2 - t1, "index": t3 - t2, "total": t3 - t0})
        self.policy.observe(mode, int(dirty.size), n, t2 - t1)
        self.graph = work
        self.sketches = sketches
        self.index = index
        self.epoch += 1
        report = UpdateReport(mode=mode, epoch=self.epoch,
                              changes=len(changes), dirty=int(dirty.size),
                              touched=len(touched), n=n,
                              dirty_fraction=frac, seconds=secs,
                              policy=self.policy.name)
        self.last_report = report
        return report

    def rebuild_reference(self) -> IndexStore:
        """A from-scratch build on the **current** graph with the same
        pinned artifacts — the oracle the bit-identity invariant (and
        ``update-bench``) compares against.  Does not mutate state."""
        sketches = self._state.build(self.graph)
        return build_index(sketches, num_shards=self.num_shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UpdateableIndex({self.scheme}, n={self.graph.n}, "
                f"epoch={self.epoch}, shards={self.num_shards})")


# ----------------------------------------------------------------------
# the measurement harness (update-bench / E16)
# ----------------------------------------------------------------------
def run_update_benchmark(graph: Graph, scheme: str = "tz",
                         seed: SeedLike = 0,
                         batch_sizes: Sequence[int] = (1, 4, 16),
                         num_shards: int = 1,
                         rebuild_threshold: float = 1.0,
                         verify_pairs: int = 2000,
                         **params) -> dict:
    """Incremental update vs full rebuild, per change-batch size.

    For each batch size: build a fresh :class:`UpdateableIndex`, apply a
    reproducible batch of random weight perturbations, time the apply,
    then time a from-scratch rebuild on the mutated graph and verify the
    two indexes are **identical** (``==`` plus bitwise-equal estimates
    on a sampled workload).  Returns a JSON-ready report; the
    ``identical`` flag covers every row.
    """
    from repro.service.bench import sample_query_pairs

    rows = []
    identical = True
    for size in batch_sizes:
        upd = UpdateableIndex(graph, scheme=scheme, seed=seed,
                              num_shards=num_shards,
                              rebuild_threshold=rebuild_threshold, **params)
        changes = sample_weight_changes(graph, size, seed=hash(size) % 2**31)
        # sample_weight_changes clamps to the edge count; report what ran
        t0 = time.perf_counter()
        report = upd.apply(changes)
        t_update = time.perf_counter() - t0
        t0 = time.perf_counter()
        rebuilt = upd.rebuild_reference()
        t_rebuild = time.perf_counter() - t0
        pairs = sample_query_pairs(graph.n, min(verify_pairs, graph.n ** 2),
                                   seed=size)
        same = bool(upd.index == rebuilt) and bool(np.array_equal(
            upd.index.estimate_many(pairs[:, 0], pairs[:, 1]),
            rebuilt.estimate_many(pairs[:, 0], pairs[:, 1])))
        identical &= same
        rows.append({
            "batch": int(size), "changes": len(changes),
            "mode": report.mode,
            "dirty": report.dirty, "touched": report.touched,
            "update_seconds": t_update, "rebuild_seconds": t_rebuild,
            "speedup": t_rebuild / t_update if t_update > 0 else np.inf,
            "identical": same,
        })
    return {"scheme": scheme, "n": graph.n, "m": graph.m,
            "shards": int(num_shards), "rows": rows,
            "identical": identical}
