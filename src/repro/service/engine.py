"""The batched query engine: ``dist_many`` over a built sketch set.

:class:`QueryEngine` is the serving-layer front end.  Every scheme in the
library has a vectorized :class:`~repro.service.index.IndexStore`
(:class:`~repro.service.index.TZIndex`,
:class:`~repro.service.index.Stretch3Index`,
:class:`~repro.service.index.CDGIndex`,
:class:`~repro.service.index.GracefulIndex`), so batches route through a
pre-built store by default; ``use_index=False`` forces the plain loop
over the sketches' single-pair queries (still benefiting from the result
cache).  Either way the answers are exactly the ones the one-pair-at-a-
time API produces — batching is a performance feature, never a semantic
one.

An indexed engine always runs the shard decomposition through a
:class:`~repro.service.workers.ShardServer` (in-process for ``jobs=1``,
a persistent process pool for ``jobs > 1``), which is also where the
per-phase timings (``plan`` / ``shard_answer`` / ``finish`` / ``ipc``)
accumulate.  ``memory=`` picks the data plane: ``"heap"`` (plain
arrays / pickle IPC), ``"shared"`` (the index packed into shared memory,
workers attached zero-copy, messages through shared ring buffers), or
``"mmap"`` (the pack in a memory-mapped scratch file).  Answers stay
bit-identical for every worker count and memory mode.  Call
:meth:`~QueryEngine.close` (or use the engine as a context manager) to
shut the pool down and release the segments.

:meth:`QueryEngine.from_index` serves a pre-built (e.g. binary-loaded)
store directly, without the sketch set.

**Epochs.**  :meth:`QueryEngine.from_updateable` serves a live
:class:`~repro.service.updates.UpdateableIndex`;
:meth:`QueryEngine.apply_updates` then hot-swaps epochs: the next
epoch's store (and, for ``jobs > 1``, its worker pool — workers attach
to the new epoch's pack) is prepared while traffic continues, the swap
is one pointer flip under the engine lock, and in-flight batches finish
on the epoch they started on (the old server is closed only when its
last batch drains).  Every batch is served by exactly one epoch — no
torn reads — and the result cache is epoch-stamped: it is cleared at
the swap, and a stale batch's write-backs are dropped.

The LRU result cache keys on the *ordered* pair ``(u, v)``: the paper's
level-scan query is not symmetric under swapping the endpoints (both
directions can hit at the same level with different routes), and the
engine's contract is bit-identity with the single-query path, so ``(u, v)``
and ``(v, u)`` are cached separately.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, QueryError
from repro.service.index import (IndexStore, build_index, index_class_for,
                                 parse_pair_array)
from repro.service.workers import ShardServer
from repro.tz.sketch import TZSketch, estimate_distance


def _warn_deprecated(what: str) -> None:
    """The one deprecation funnel for the legacy engine construction
    paths — each public entry point fires it exactly once per call (the
    layered classmethods pass ``_deprecation=False`` internally, so a
    ``from_updateable`` never double-warns through ``from_index``)."""
    warnings.warn(
        f"{what} is deprecated; open a serving session with "
        f"repro.service.transport.connect('inproc://', source) "
        f"(or proc:// / tcp://) instead",
        DeprecationWarning, stacklevel=3)


@dataclass
class CacheStats:
    """Hit/miss accounting for the engine's result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryEngine:
    """Answer distance queries — singly or in batches — from one sketch set.

    .. deprecated::
        ``QueryEngine`` (and its ``from_index`` / ``from_updateable``
        constructors) is the legacy session surface.  New code opens a
        session with :func:`repro.service.transport.connect` — the same
        engine mechanics behind a transport-agnostic
        :class:`~repro.service.transport.OracleClient` (``inproc://``,
        ``proc://``, ``tcp://``).  Constructing one directly emits a
        single :class:`DeprecationWarning`; the transport layer builds
        its engines through the internal non-warning path.

    :param sketches: one sketch per node.  Any homogeneous set of a
        library scheme gets its vectorized index; mixed or unknown sets
        get the generic loop.
    :param cache_size: capacity of the LRU result cache; ``0`` disables
        caching.
    :param num_shards: landmark shard count for the index (layout knob;
        answers are shard-independent).  With ``jobs > 1`` it is also the
        number of parallel probe tasks per batch.
    :param use_index: ``None`` (default) auto-detects; ``False`` forces
        the generic loop; ``True`` requires an indexable set (the scheme
        registry's :attr:`~repro.oracle.schemes.SchemeSpec.supports_batch`
        is the intended source of this value — see
        :meth:`~repro.oracle.api.BuiltSketches.engine`).
    :param jobs: workers behind the landmark shards (``1`` =
        everything in-process).  Requires an indexed engine; values above
        ``num_shards`` are clamped (a shard is the unit of work) and the
        attribute reflects the effective count.
    :param memory: the serving data plane — ``"heap"``, ``"shared"``, or
        ``"mmap"`` (see :class:`~repro.service.workers.ShardServer`).
        Non-heap modes require an indexed engine.
    :param pool: the shard execution plane for ``jobs > 1`` —
        ``"proc"`` (worker processes) or ``"thread"`` (a GIL-releasing
        thread pool in this address space); see
        :class:`~repro.service.workers.ShardServer`.
    :raises ConfigError: on an empty set, negative cache size,
        ``use_index=True`` without an indexable set, or ``jobs``/
        ``memory`` without an index.
    """

    def __init__(self, sketches: Sequence[Any], cache_size: int = 65536,
                 num_shards: int = 1, use_index: Optional[bool] = None,
                 jobs: int = 1, memory: str = "heap", pool: str = "proc", *,
                 _deprecation: bool = True):
        if _deprecation:
            _warn_deprecated("QueryEngine(sketches=...)")
        if not sketches:
            raise ConfigError("cannot serve an empty sketch set")
        # scalar parameter errors must not cost an index build first
        if cache_size < 0:
            raise ConfigError(f"cache_size must be >= 0, got {cache_size}")
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.sketches = list(sketches)
        self.n = len(self.sketches)
        index: Optional[IndexStore] = None
        indexable = index_class_for(self.sketches) is not None
        if use_index is True and not indexable:
            raise ConfigError(
                "use_index=True needs a homogeneous sketch set of a "
                "library scheme")
        if use_index is not False and indexable:
            index = build_index(self.sketches, num_shards=num_shards)
        self._init_serving(index, cache_size=cache_size, jobs=jobs,
                           memory=memory, pool=pool)

    @classmethod
    def from_index(cls, index: IndexStore, cache_size: int = 65536,
                   jobs: int = 1, memory: str = "heap", pool: str = "proc",
                   *, _deprecation: bool = True) -> "QueryEngine":
        """Serve a pre-built store directly (no sketch set needed — e.g.
        an index loaded from a binary container, possibly mmap-backed).

        :meth:`reference_query` then falls back to the store's own
        single-pair path, so the bench harness's identity cross-check
        still compares batch-of-Q against one-at-a-time answers.
        """
        if _deprecation:
            _warn_deprecated("QueryEngine.from_index")
        self = cls.__new__(cls)
        self.sketches = None
        self.n = index.n
        self._init_serving(index, cache_size=cache_size, jobs=jobs,
                           memory=memory, pool=pool)
        return self

    @classmethod
    def from_updateable(cls, updateable, cache_size: int = 65536,
                        jobs: int = 1, memory: str = "heap",
                        pool: str = "proc", *,
                        _deprecation: bool = True) -> "QueryEngine":
        """Serve a live :class:`~repro.service.updates.UpdateableIndex`,
        enabling :meth:`apply_updates` epoch hot-swaps."""
        if _deprecation:
            _warn_deprecated("QueryEngine.from_updateable")
        self = cls.from_index(updateable.index, cache_size=cache_size,
                              jobs=jobs, memory=memory, pool=pool,
                              _deprecation=False)
        self._updateable = updateable
        self.epoch = updateable.epoch  # share one epoch clock
        return self

    def _init_serving(self, index: Optional[IndexStore], cache_size: int,
                      jobs: int, memory: str, pool: str = "proc") -> None:
        if cache_size < 0:
            raise ConfigError(f"cache_size must be >= 0, got {cache_size}")
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.cache_size = int(cache_size)
        self.jobs = int(jobs)
        self._jobs_requested = int(jobs)
        self.memory = memory
        self.pool = pool
        self.index = index
        self._server: Optional[ShardServer] = None
        # epoch bookkeeping: dist_many snapshots (epoch, server) under
        # the lock, and a retired epoch's server is closed only once its
        # last in-flight batch drains
        self._lock = threading.Lock()
        self.epoch = 0
        self._active: dict[int, int] = {}
        self._retired: dict[int, ShardServer] = {}
        self._updateable = None
        if index is not None:
            self._server = ShardServer(index, jobs=self.jobs, memory=memory,
                                       pool=pool)
            # the server may rebuild the store over a packed backing —
            # serve (and expose) that store, and reflect the clamped
            # worker count (a shard is the unit of work)
            self.index = self._server.index
            self.jobs = self._server.jobs
        elif self.jobs > 1:
            raise ConfigError(
                "jobs > 1 needs an indexed engine "
                "(do not pass use_index=False)")
        elif memory != "heap":
            raise ConfigError(
                f"memory={memory!r} needs an indexed engine "
                "(do not pass use_index=False)")
        self._cache: OrderedDict[tuple[int, int], float] = OrderedDict()
        self.stats = CacheStats()

    @property
    def serial_dispatch(self) -> bool:
        """True when concurrent ``dist_many`` calls must be serialized
        by the caller: ring-mode shard dispatch (shared/mmap pool) is
        single-producer.  Heap-pool and in-process engines answer
        concurrent batches safely — the engine lock already guards the
        cache and epoch bookkeeping."""
        server = self._server
        return server is not None and server.ring_dispatch

    # ------------------------------------------------------------------
    # epoch bookkeeping
    # ------------------------------------------------------------------
    def index_snapshot(self) -> tuple[Optional[IndexStore], int]:
        """The ``(store, epoch)`` pair currently serving, read
        atomically — a hot swap installs both under the same lock, so
        the pair is always consistent, and stores are never mutated, so
        the returned store stays valid even after a subsequent swap
        (how the transport layer labels an index blob with the epoch
        that actually produced it)."""
        with self._lock:
            return self.index, self.epoch

    def shard_answers_pinned(self, shards, requests) -> tuple[tuple, int]:
        """Serve raw per-shard probe requests — ``(responses, epoch)``.

        This is the fleet fan-out hook: a :class:`ClusterClient
        <repro.service.cluster.ClusterClient>` plans a batch client-side
        and ships each host only the requests for the shards it owns;
        ``shard_answer`` is a pure function of ``(shard data, request)``,
        so the responses are bit-identical to the ones an in-process
        ``estimate_many`` would have produced.  The whole probe batch is
        answered by one atomically-snapshotted ``(store, epoch)`` pair.

        :raises ConfigError: on a non-indexed engine.
        """
        index, epoch = self.index_snapshot()
        if index is None:
            raise ConfigError("shard probes need an indexed engine")
        responses = tuple(index.shard_answer(int(s), r)
                          for s, r in zip(shards, requests))
        return responses, epoch

    def _acquire_epoch(self) -> tuple[int, Optional[ShardServer]]:
        """Pin the current epoch for one batch (it will be served wholly
        by this epoch's server, even if a swap lands mid-flight)."""
        with self._lock:
            epoch, server = self.epoch, self._server
            self._active[epoch] = self._active.get(epoch, 0) + 1
            return epoch, server

    def _release_epoch(self, epoch: int) -> None:
        with self._lock:
            self._active[epoch] -= 1
            drained = (self._active[epoch] == 0
                       and epoch in self._retired)
            server = self._retired.pop(epoch) if drained else None
            if drained:
                del self._active[epoch]
        if server is not None:
            server.close()

    def _compute_many(self, us: np.ndarray, vs: np.ndarray,
                      server: Optional[ShardServer]) -> np.ndarray:
        if server is not None:
            return server.estimate_many(us, vs)
        if us.size and (min(us.min(), vs.min()) < 0
                        or max(us.max(), vs.max()) >= self.n):
            raise QueryError(f"node id out of range [0, {self.n})")
        out = np.empty(us.shape[0], dtype=np.float64)
        sketches = self.sketches
        for j in range(us.shape[0]):
            su, sv = sketches[int(us[j])], sketches[int(vs[j])]
            # a TZ set can land here via use_index=False: its pairwise
            # query is the free function, not an estimate_to method
            out[j] = (estimate_distance(su, sv) if isinstance(su, TZSketch)
                      else su.estimate_to(sv))
        return out

    def _cache_put(self, key: tuple[int, int], value: float) -> None:
        cache = self._cache
        if key in cache:
            cache.move_to_end(key)
            return
        cache[key] = value
        if len(cache) > self.cache_size:
            cache.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def dist(self, u: int, v: int) -> float:
        """One estimate, through the cache and the indexed path."""
        return float(self.dist_many([(u, v)])[0])

    def dist_many(self, pairs: Iterable[tuple[int, int]] | np.ndarray,
                  ) -> np.ndarray:
        """Estimates for a batch of ``(u, v)`` pairs, in input order.

        Accepts any iterable of pairs or a ``(Q, 2)`` integer array;
        returns a float64 array of length Q.  Cached answers are reused;
        the misses are computed in one vectorized pass (fanned across the
        shard workers when the engine was built with ``jobs > 1``).

        The whole batch is answered by one epoch: the serving store is
        pinned at batch start, and a concurrent :meth:`apply_updates`
        only affects batches issued after its swap.
        """
        return self.dist_many_pinned(pairs)[0]

    def dist_many_pinned(self, pairs: Iterable[tuple[int, int]] | np.ndarray,
                         ) -> tuple[np.ndarray, int]:
        """:meth:`dist_many` plus the epoch that served the batch —
        ``(answers, epoch)``.

        The transport layer's result frames carry this epoch, so a
        remote client can re-pin a mid-swap batch to the epoch that
        actually answered it rather than guessing from the server's
        current clock.
        """
        arr = parse_pair_array(pairs)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64), self.epoch
        q = arr.shape[0]
        epoch, server = self._acquire_epoch()
        try:
            if self.cache_size == 0:
                return (self._compute_many(arr[:, 0], arr[:, 1], server),
                        epoch)

            out = np.empty(q, dtype=np.float64)
            with self._lock:
                # a batch pinned to a retired epoch must not read the
                # new epoch's cache — hits are epoch-guarded just like
                # the write-backs below, or one batch could mix epochs
                use_cache = epoch == self.epoch and bool(self._cache)
                miss_rows: list[int] = []
                if not use_cache:
                    miss_rows = list(range(q))
                    self.stats.misses += q
                else:
                    cache = self._cache
                    for j in range(q):
                        key = (int(arr[j, 0]), int(arr[j, 1]))
                        hit = cache.get(key)
                        if hit is not None:
                            cache.move_to_end(key)
                            out[j] = hit
                            self.stats.hits += 1
                        else:
                            miss_rows.append(j)
                            self.stats.misses += 1
            if miss_rows:
                rows = np.asarray(miss_rows, dtype=np.int64)
                vals = self._compute_many(arr[rows, 0], arr[rows, 1],
                                          server)
                out[rows] = vals
                with self._lock:
                    # epoch-stamped write-back: a batch that started
                    # before a swap must not poison the new epoch's cache
                    if epoch == self.epoch:
                        for j, val in zip(miss_rows, vals):
                            self._cache_put((int(arr[j, 0]),
                                             int(arr[j, 1])), float(val))
            return out, epoch
        finally:
            self._release_epoch(epoch)

    def dist_stream(self, batches: Iterable) -> Iterator[np.ndarray]:
        """Pipelined batched serving: a generator over an iterable of
        pair batches, yielding one float64 answer array per batch, in
        order.

        With a worker pool behind the engine this is the
        double-buffered path (:meth:`ShardServer.estimate_stream
        <repro.service.workers.ShardServer.estimate_stream>`): batch
        *k+1*'s plan and request encode overlap batch *k*'s shard
        probes, and the hidden seconds show up as ``overlap_seconds``
        in :meth:`phase_timings`.  The result cache is bypassed (a
        streaming sweep is the cold-cache workload) and the **whole
        stream** is pinned to one epoch — a concurrent
        :meth:`apply_updates` only affects streams opened after its
        swap.  Answers are bit-identical to calling :meth:`dist_many`
        per batch on a cold cache.
        """
        for answers, _ in self.dist_stream_pinned(batches):
            yield answers

    def dist_stream_pinned(self, batches: Iterable,
                           ) -> Iterator[tuple[np.ndarray, int]]:
        """:meth:`dist_stream` plus the pinned epoch — yields
        ``(answers, epoch)`` per batch.  The whole stream is served by
        one epoch (pinned at first pull), so the epoch is constant
        across the stream; exposing it per batch lets a transport
        report the true per-result pin instead of reading the server's
        live clock (which a concurrent :meth:`apply_updates` may have
        advanced mid-stream)."""
        epoch, server = self._acquire_epoch()
        try:
            if server is None:
                for pairs in batches:
                    arr = parse_pair_array(pairs)
                    if arr.size == 0:
                        yield np.empty(0, dtype=np.float64), epoch
                    else:
                        yield (self._compute_many(arr[:, 0], arr[:, 1],
                                                  None), epoch)
                return

            def split(feed):
                for pairs in feed:
                    arr = parse_pair_array(pairs)
                    yield arr[:, 0], arr[:, 1]

            for answers in server.estimate_stream(split(batches)):
                yield answers, epoch
        finally:
            self._release_epoch(epoch)

    # ------------------------------------------------------------------
    def apply_updates(self, changes) -> "Any":
        """Apply an edge-change batch to the underlying
        :class:`~repro.service.updates.UpdateableIndex` and hot-swap to
        the new epoch's store.

        The next epoch's server (pack + worker pool; shared-memory
        workers attach to the new epoch's segment) is built *before* the
        swap, so traffic never pauses; in-flight batches complete on the
        old epoch, whose server is closed when its last batch drains.
        The result cache is cleared — cached answers are per-epoch.

        :returns: the :class:`~repro.service.updates.UpdateReport`.
        :raises ConfigError: for an engine not built with
            :meth:`from_updateable`.
        """
        if self._updateable is None:
            raise ConfigError(
                "apply_updates needs an engine built with "
                "QueryEngine.from_updateable")
        report = self._updateable.apply(changes)
        if report.mode == "noop":
            return report
        new_server = ShardServer(self._updateable.index,
                                 jobs=self._jobs_requested,
                                 memory=self.memory, pool=self.pool)
        with self._lock:
            old_epoch, old_server = self.epoch, self._server
            self._server = new_server
            self.index = new_server.index
            self.jobs = new_server.jobs
            self.epoch = report.epoch  # the updateable's clock
            self._cache.clear()
            drained = self._active.get(old_epoch, 0) == 0
            if not drained and old_server is not None:
                self._retired[old_epoch] = old_server
            if drained:
                self._active.pop(old_epoch, None)
        if drained and old_server is not None:
            old_server.close()
        return report

    # ------------------------------------------------------------------
    def reference_query(self, u: int, v: int) -> float:
        """The unbatched, uncached reference answer (differential tests and
        the benchmark's single-query baseline).

        With a sketch set this is the scheme's own single-pair query
        (fully independent of the index); an index-only engine
        (:meth:`from_index`) uses the store's single-pair path instead.
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise QueryError(f"node id out of range [0, {self.n})")
        if self.sketches is None:
            return float(self.index.estimate(u, v))
        su, sv = self.sketches[u], self.sketches[v]
        if isinstance(su, TZSketch):
            return estimate_distance(su, sv)
        return su.estimate_to(sv)

    def phase_timings(self) -> Optional[dict]:
        """Cumulative plan/shard_answer/finish/ipc seconds from the shard
        server (``None`` for an unindexed engine)."""
        if self._server is None:
            return None
        return self._server.timings.as_dict()

    def reset_phase_timings(self) -> None:
        """Zero the per-phase counters (no-op for unindexed engines)."""
        if self._server is not None:
            self._server.reset_timings()

    def clear_cache(self) -> None:
        """Drop all cached results and reset the hit/miss counters."""
        with self._lock:
            self._cache.clear()
            self.stats = CacheStats()

    def close(self) -> None:
        """Shut the shard server down — worker pool, shared segments,
        scratch files, plus any retired epochs' servers (idempotent)."""
        with self._lock:
            servers = list(self._retired.values())
            self._retired.clear()
            if self._server is not None:
                servers.append(self._server)
        for server in servers:
            server.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = (type(self.index).__name__ if self.index is not None
                else "generic")
        tail = f", jobs={self.jobs}" if self.jobs > 1 else ""
        if self.memory != "heap":
            tail += f", memory={self.memory}"
        return (f"QueryEngine(n={self.n}, {kind}, "
                f"cache={len(self._cache)}/{self.cache_size}{tail})")
