"""The serving layer: batched queries and parallel sketch construction.

The paper's end product is a distance *oracle*: preprocess once, then
answer ``dist(u, v)`` queries with stretch ``<= 2k - 1``.  This package
makes the oracle servable at scale:

* :class:`~repro.service.index.TZIndex` — sketch entries pre-indexed into
  flat landmark tables (with per-landmark sharding) so a batch of Q
  queries is one vectorized pass,
* :class:`~repro.service.engine.QueryEngine` — ``dist`` / ``dist_many``
  with an LRU result cache, falling back to a generic loop for non-TZ
  schemes,
* :func:`~repro.service.parallel.build_tz_sketches_parallel` — the
  centralized preprocessing fanned across worker processes with a
  deterministic (byte-identical) merge,
* :func:`~repro.service.bench.run_serve_benchmark` — the measurement
  harness behind ``repro serve-bench`` and experiment E14.

Batching and parallelism are performance features only: every answer is
bit-identical to the one-pair-at-a-time reference path.
"""

from repro.service.bench import run_serve_benchmark, sample_query_pairs
from repro.service.engine import CacheStats, QueryEngine
from repro.service.index import TZIndex
from repro.service.parallel import build_tz_sketches_parallel, default_jobs

__all__ = [
    "CacheStats",
    "QueryEngine",
    "TZIndex",
    "build_tz_sketches_parallel",
    "default_jobs",
    "run_serve_benchmark",
    "sample_query_pairs",
]
