"""The serving layer: sessions over pluggable transports, shard
workers, parallel builds.

The paper's end product is a distance *oracle*: preprocess once, then
answer ``dist(u, v)`` queries with a bounded stretch.  This package makes
the oracle servable at scale — for **every** scheme in the library.
The front door is :func:`~repro.service.transport.connect`::

    from repro.service import connect

    with connect("proc://jobs=4;memory=shared", built) as client:
        answers = client.dist_many(pairs)

* :mod:`repro.service.transport` — the session API:
  :class:`OracleClient` (``dist`` / ``dist_many`` / ``dist_stream`` /
  ``apply_updates`` / ``stats``) over ``inproc://`` (this process),
  ``proc://jobs=N;memory=shared`` (a local worker pool), or
  ``tcp://host:port`` (a remote :class:`OracleServer` — the
  ``python -m repro serve`` daemon — speaking a length-prefixed binary
  frame protocol built on the array-tree codec).  Answers are
  bit-identical across transports, and epoch hot swaps propagate to
  connected TCP clients without a reconnect,
* :mod:`repro.service.buffers` — the zero-copy memory plane:
  :class:`BufferPack` lays every store's arrays out in one contiguous
  buffer backed by heap memory, a shared-memory segment, or a
  memory-mapped file, with picklable attach handles and the array-tree
  codec behind the shared message rings,
* :mod:`repro.service.index` — the :class:`IndexStore` protocol and one
  pre-built vectorized store per scheme (:class:`TZIndex`,
  :class:`Stretch3Index`, :class:`CDGIndex`, :class:`GracefulIndex`),
  each decomposing a batch into per-landmark-shard probe tasks and
  splitting into a pure-logic view over packed arrays
  (:func:`index_to_pack` / :func:`index_from_pack`),
* :class:`~repro.service.engine.QueryEngine` — the engine every session
  hosts (LRU result cache, epoch pinning); constructing one directly is
  the deprecated legacy path,
* :class:`~repro.service.workers.ShardServer` — the shard execution
  plane: a persistent ``multiprocessing`` pool (``pool="proc"``) or a
  GIL-releasing ``ThreadPoolExecutor`` in this address space
  (``pool="thread"`` — no pickling, no rings, no attach) running the
  shard probes (``jobs=1`` is an in-process fallback with the identical
  dataflow); ``memory="shared"`` attaches process workers to the pack
  zero-copy and moves requests/responses through preallocated shared
  ring buffers instead of pickles,
* :mod:`repro.service.cluster` — the fleet subsystem:
  :class:`ClusterClient` scatters shard probes across N shard-range
  ``OracleServer`` hosts (``cluster://h1:p1,h2:p2`` endpoints) and
  combines the partials client-side, bit-identical to one full host;
  :func:`build_distributed` scatters construction the same way and
  gathers per-range RPIX blobs,
* :mod:`repro.service.updates` — the dynamic-update subsystem:
  :class:`UpdateableIndex` applies edge-change streams by repairing
  only the dirty frontier (bit-identical to a from-scratch rebuild,
  automatic rebuild fallback), and
  :meth:`QueryEngine.apply_updates <repro.service.engine.QueryEngine.apply_updates>`
  hot-swaps the resulting epochs with zero downtime,
* :func:`~repro.service.parallel.build_tz_sketches_parallel` — the
  centralized preprocessing fanned across worker processes with a
  deterministic (byte-identical) merge,
* :func:`~repro.service.bench.run_serve_benchmark` /
  :func:`~repro.service.updates.run_update_benchmark` — the measurement
  harnesses behind ``repro serve-bench`` / ``repro update-bench`` and
  experiments E14/E15/E16.

Batching and parallelism are performance features only: every answer is
bit-identical to the one-pair-at-a-time reference path, for any shard
count and any worker count.  See ``docs/architecture.md`` for the layer
map and ``docs/serving.md`` for the operator's guide.
"""

from repro.service.bench import (run_connect_benchmark, run_load_benchmark,
                                 run_serve_benchmark, sample_query_pairs)
from repro.service.buffers import BufferPack, PackedIndex, PackHandle
from repro.service.cluster import (ClusterClient, ClusterSpec,
                                   apply_updates_distributed,
                                   build_distributed, build_shard_range,
                                   even_ranges, loopback_fleet,
                                   run_cluster_benchmark)
from repro.service.engine import CacheStats, QueryEngine
from repro.service.index import (CDGIndex, GracefulIndex, IndexStore,
                                 Stretch3Index, TZIndex, build_index,
                                 index_class_for, index_from_handle,
                                 index_from_pack, index_to_pack,
                                 refresh_index, restrict_index_shards,
                                 scheme_name_of, scheme_name_of_index)
from repro.service.parallel import build_tz_sketches_parallel, default_jobs
from repro.service.scenario import (SCENARIOS, ChurnEvent, QueryEvent,
                                    ScenarioOracle, ScenarioResult, Trace,
                                    compare_policies, generate_trace,
                                    run_named_scenario, run_scenario,
                                    served_subprocess)
from repro.service.transport import (TRANSPORTS, Endpoint, EpochStaleness,
                                     OracleClient, OracleServer,
                                     PipelineStats, connect, parse_endpoint)
from repro.service.updates import (POLICY_NAMES, AdaptiveCostPolicy,
                                   EdgeChange, RepairPolicy,
                                   StaticThresholdPolicy, UpdateReport,
                                   UpdateableIndex, dirty_frontier,
                                   load_changes_jsonl, make_policy,
                                   run_update_benchmark,
                                   sample_weight_changes, save_changes_jsonl)
from repro.service.workers import (MEMORY_MODES, POOL_MODES, PhaseTimings,
                                   ShardServer)

__all__ = [
    "AdaptiveCostPolicy",
    "BufferPack",
    "ChurnEvent",
    "ClusterClient",
    "ClusterSpec",
    "Endpoint",
    "EpochStaleness",
    "OracleClient",
    "OracleServer",
    "POLICY_NAMES",
    "QueryEvent",
    "RepairPolicy",
    "SCENARIOS",
    "ScenarioOracle",
    "ScenarioResult",
    "StaticThresholdPolicy",
    "TRANSPORTS",
    "Trace",
    "compare_policies",
    "connect",
    "generate_trace",
    "make_policy",
    "parse_endpoint",
    "run_connect_benchmark",
    "run_named_scenario",
    "run_scenario",
    "scheme_name_of_index",
    "served_subprocess",
    "CDGIndex",
    "CacheStats",
    "EdgeChange",
    "GracefulIndex",
    "IndexStore",
    "MEMORY_MODES",
    "POOL_MODES",
    "PackHandle",
    "PackedIndex",
    "PhaseTimings",
    "PipelineStats",
    "QueryEngine",
    "ShardServer",
    "Stretch3Index",
    "TZIndex",
    "UpdateReport",
    "UpdateableIndex",
    "apply_updates_distributed",
    "build_distributed",
    "build_index",
    "build_shard_range",
    "build_tz_sketches_parallel",
    "default_jobs",
    "dirty_frontier",
    "even_ranges",
    "index_class_for",
    "index_from_handle",
    "index_from_pack",
    "index_to_pack",
    "load_changes_jsonl",
    "loopback_fleet",
    "refresh_index",
    "restrict_index_shards",
    "run_cluster_benchmark",
    "run_load_benchmark",
    "run_serve_benchmark",
    "run_update_benchmark",
    "sample_query_pairs",
    "sample_weight_changes",
    "save_changes_jsonl",
    "scheme_name_of",
]
