"""Zero-copy buffer packs: the serving data plane's memory layer.

Every pre-built :class:`~repro.service.index.IndexStore` is, physically,
a handful of contiguous numpy arrays plus a little scalar metadata.  This
module separates that physical layout from the query logic:

* :class:`BufferPack` — a named dict of contiguous arrays laid out in
  **one** buffer, which can be backed by ordinary heap memory, a
  ``multiprocessing.shared_memory`` segment, or a memory-mapped file.
  The arrays a pack hands out are read-only views — attaching never
  copies, and no attached process can corrupt another's answers.
* :class:`PackHandle` — a tiny picklable token (segment name / file
  path + the array manifest) that another process turns back into a
  pack with :meth:`BufferPack.attach`, zero-copy.
* :class:`PackedIndex` — a pack plus the index type tag and scalar
  metadata; the unit :func:`repro.service.index.index_from_pack`
  rebuilds a store from.
* the **array-tree codec** (:func:`flatten_tree` / :func:`plan_tree` /
  :func:`write_tree` / :func:`read_tree`) — encodes the nested tuples
  of ndarrays that flow through ``plan``/``shard_answer``/``finish``
  into a raw buffer region and back, so shard requests and responses
  can travel through preallocated shared ring buffers instead of
  pickles (see :class:`SharedArea` and
  :class:`~repro.service.workers.ShardServer`).

Determinism contract: a pack stores exact bytes, so a store rebuilt from
any backing answers **bit-identically** to the heap-built original — the
backing-equivalence test suite asserts this for every scheme.

Teardown: shared segments created by this process are tracked in a
module registry and unlinked both by :meth:`BufferPack.close` /
:meth:`SharedArea.close` and by an ``atexit`` guard, so repeated
benchmark runs cannot leak ``/dev/shm`` segments even on unclean exits.
"""

from __future__ import annotations

import atexit
import json
import mmap as _mmaplib
import os
import secrets
import struct
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory as _shm
from typing import Any, Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigError

#: the three physical backings every pack supports
BACKINGS = ("heap", "shared", "mmap")

#: array blobs are aligned to cache-line boundaries inside the buffer
ALIGNMENT = 64


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


# ----------------------------------------------------------------------
# shared-segment registry + atexit guard (deterministic /dev/shm cleanup)
# ----------------------------------------------------------------------
_LIVE_SEGMENTS: set[str] = set()
_REGISTRY_LOCK = threading.Lock()
# Segments whose close() found live exported views: keep the SharedMemory
# object referenced so its __del__ never runs (it would raise a noisy
# BufferError).  The name is already unlinked; the mapping is freed at
# process exit, exactly when the views die.
_ZOMBIE_SEGMENTS: list = []


def _register_segment(name: str) -> None:
    with _REGISTRY_LOCK:
        _LIVE_SEGMENTS.add(name)


def _forget_segment(name: str) -> None:
    with _REGISTRY_LOCK:
        _LIVE_SEGMENTS.discard(name)


def live_segment_names() -> list[str]:
    """Names of shared segments created by this process and not yet
    unlinked (introspection for tests and leak checks)."""
    with _REGISTRY_LOCK:
        return sorted(_LIVE_SEGMENTS)


@atexit.register
def _cleanup_segments() -> None:  # pragma: no cover - exit-path guard
    for name in list(_LIVE_SEGMENTS):
        try:
            seg = _shm.SharedMemory(name=name)
            seg.close()
            seg.unlink()
        except Exception:
            pass
        _forget_segment(name)


def _new_segment_name(tag: str) -> str:
    # short: POSIX shm names are limited (NAME_MAX, and 31 chars on macOS)
    return f"rp-{tag}-{secrets.token_hex(4)}"


try:  # the POSIX shm syscalls SharedMemory itself is built on
    import _posixshmem
except ImportError:  # pragma: no cover - Windows
    _posixshmem = None


class _AttachedSegment:
    """A tracker-neutral, non-owning attach to a named POSIX segment.

    Exposes the same ``name``/``buf``/``close()`` surface as
    ``SharedMemory`` but goes through ``shm_open`` + ``mmap`` directly,
    so the attaching process's ``resource_tracker`` never hears about a
    segment it does not own.  (``SharedMemory(name=...)`` registers even
    pure attaches; in a pool worker that either leaks a registration —
    "leaked shared_memory" noise after the worker is terminated — or,
    with a fork-shared tracker, collides with the creator's own
    register/unregister pairing.)

    ``readonly=True`` maps the pages ``PROT_READ`` — the OS, not just a
    numpy flag, then guarantees the attacher cannot scribble on the
    creator's data (how index packs are attached); message rings need
    ``readonly=False`` since workers write response trees into them.
    """

    def __init__(self, name: str, readonly: bool = False):
        self.name = name
        flags = os.O_RDONLY if readonly else os.O_RDWR
        fd = _posixshmem.shm_open("/" + name, flags, mode=0)
        try:
            size = os.fstat(fd).st_size
            access = (_mmaplib.ACCESS_READ if readonly
                      else _mmaplib.ACCESS_DEFAULT)
            self._mmap = _mmaplib.mmap(fd, size, access=access)
        finally:
            os.close(fd)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        try:
            self.buf.release()
            self._mmap.close()
        except (BufferError, ValueError):  # live exported views
            pass


def attach_segment(name: str, readonly: bool = False):
    """Attach to an existing segment as a **non-owner** (the creator
    alone stays responsible for the unlink)."""
    if _posixshmem is not None:
        return _AttachedSegment(name, readonly=readonly)
    return _shm.SharedMemory(name=name)  # pragma: no cover - Windows


# ----------------------------------------------------------------------
# layout planning
# ----------------------------------------------------------------------
def plan_layout(arrays: Mapping[str, np.ndarray],
                ) -> tuple[tuple[tuple[str, str, tuple, int], ...], int]:
    """Lay named arrays out in one buffer.

    Returns ``(manifest, total_bytes)`` where each manifest row is
    ``(name, dtype_str, shape, offset)`` and offsets are
    :data:`ALIGNMENT`-aligned.  Iteration order (= dict insertion order)
    is the layout order, so the layout is deterministic.  The geometry
    is exactly :func:`plan_tree`'s (the message codec) with names glued
    on — one layout rule for packs and rings alike.
    """
    names = [str(name) for name in arrays]
    rows, total = plan_tree([np.ascontiguousarray(a)
                             for a in arrays.values()])
    return tuple((name, dt, shape, off)
                 for name, (dt, shape, off) in zip(names, rows)), total


def _view_array(buffer, dtype: str, shape: tuple, offset: int) -> np.ndarray:
    """A read-only ndarray view over ``buffer`` at a manifest row (the
    one materialization rule shared by packs and message decoding)."""
    count = 1
    for dim in shape:
        count *= dim
    if count == 0:
        view = np.empty(shape, dtype=np.dtype(dtype))
    else:
        view = np.frombuffer(buffer, dtype=np.dtype(dtype), count=count,
                             offset=offset).reshape(shape)
    if view.flags.writeable:
        view.flags.writeable = False
    return view


@dataclass(frozen=True)
class PackHandle:
    """Picklable attach token for a :class:`BufferPack`.

    ``shared`` packs travel as a segment name, ``mmap`` packs as a file
    path plus the blob base offset, and ``heap`` packs carry the raw
    bytes (a copy — the fallback when no shared backing exists).
    """

    backing: str
    manifest: tuple
    nbytes: int
    segment: Optional[str] = None
    path: Optional[str] = None
    base: int = 0
    data: Optional[bytes] = None


class BufferPack:
    """A named dict of contiguous, read-only numpy arrays over one buffer.

    Build one with :meth:`from_arrays` (copies the inputs into the chosen
    backing once) or :meth:`attach` (zero-copy, from another process's
    :class:`PackHandle`).  Index by name: ``pack["pivot_ids"]``.

    :param manifest: ``(name, dtype_str, shape, offset)`` rows.
    :param nbytes: total laid-out payload size.
    :param backing: one of :data:`BACKINGS`.
    """

    def __init__(self, manifest: Sequence, nbytes: int, backing: str, *,
                 buffer, segment=None, mm=None, path: Optional[str] = None,
                 base: int = 0, owner: bool = False,
                 delete_file: bool = False):
        self.manifest = tuple((str(n), str(d), tuple(s), int(o))
                              for n, d, s, o in manifest)
        self.nbytes = int(nbytes)
        self.backing = backing
        self.base = int(base)
        self.path = path
        self._buffer = buffer
        self._segment = segment
        self._mm = mm
        self._owner = bool(owner)
        self._delete_file = bool(delete_file)
        self._closed = False
        self._index = {n: (d, s, o) for n, d, s, o in self.manifest}
        self._views: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray],
                    backing: str = "heap", *, path: Optional[str] = None,
                    delete_file: bool = False) -> "BufferPack":
        """Copy named arrays into one freshly allocated buffer.

        :param backing: ``"heap"`` (ordinary memory), ``"shared"``
            (a ``multiprocessing.shared_memory`` segment), or ``"mmap"``
            (a file at ``path``, created/truncated and memory-mapped).
        :param path: required for ``"mmap"``.
        :param delete_file: with ``"mmap"``, delete the file on
            :meth:`close` (scratch-file semantics).
        :raises ConfigError: on an unknown backing or a missing path.
        """
        if backing not in BACKINGS:
            raise ConfigError(
                f"unknown pack backing {backing!r}; choose from {BACKINGS}")
        manifest, total = plan_layout(arrays)
        size = max(total, 1)
        if backing == "heap":
            pack = cls(manifest, total, backing,
                       buffer=memoryview(bytearray(size)), owner=True)
        elif backing == "shared":
            seg = _shm.SharedMemory(name=_new_segment_name("pack"),
                                    create=True, size=size)
            _register_segment(seg.name)
            pack = cls(manifest, total, backing, buffer=seg.buf,
                       segment=seg, owner=True)
        else:
            if path is None:
                raise ConfigError("mmap backing needs a file path")
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o600)
            try:
                os.ftruncate(fd, size)
                mm = _mmaplib.mmap(fd, size)
            finally:
                os.close(fd)
            pack = cls(manifest, total, backing, buffer=memoryview(mm),
                       mm=mm, path=path, owner=True, delete_file=delete_file)
        write_tree(pack._buffer, 0,
                   [(dt, shape, off) for _, dt, shape, off in manifest],
                   [np.ascontiguousarray(a) for a in arrays.values()])
        return pack

    @classmethod
    def attach(cls, handle: PackHandle) -> "BufferPack":
        """Open an existing pack from its handle, zero-copy.

        Shared segments and mapped files are opened read-only (no
        attached process can scribble on another's index); a ``heap``
        handle simply wraps the bytes it carries.
        """
        if handle.backing == "shared":
            seg = attach_segment(handle.segment, readonly=True)
            return cls(handle.manifest, handle.nbytes, "shared",
                       buffer=seg.buf, segment=seg, base=handle.base)
        if handle.backing == "mmap":
            fd = os.open(handle.path, os.O_RDONLY)
            try:
                size = os.fstat(fd).st_size
                mm = _mmaplib.mmap(fd, size, access=_mmaplib.ACCESS_READ)
            finally:
                os.close(fd)
            return cls(handle.manifest, handle.nbytes, "mmap",
                       buffer=memoryview(mm), mm=mm, path=handle.path,
                       base=handle.base)
        if handle.backing == "heap":
            return cls(handle.manifest, handle.nbytes, "heap",
                       buffer=memoryview(handle.data), base=handle.base)
        raise ConfigError(f"unknown pack backing {handle.backing!r}")

    def handle(self) -> PackHandle:
        """The picklable attach token for this pack (heap packs copy
        their payload into the handle — the no-shared-backing fallback)."""
        if self.backing == "shared":
            return PackHandle("shared", self.manifest, self.nbytes,
                              segment=self._segment.name, base=self.base)
        if self.backing == "mmap":
            return PackHandle("mmap", self.manifest, self.nbytes,
                              path=self.path, base=self.base)
        lo = self.base
        return PackHandle("heap", self.manifest, self.nbytes,
                          data=bytes(self._buffer[lo:lo + self.nbytes]))

    # ------------------------------------------------------------------
    # the dict-of-arrays face
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> np.ndarray:
        view = self._views.get(name)
        if view is None:
            dt, shape, off = self._index[name]
            view = _view_array(self._buffer, dt, shape, self.base + off)
            self._views[name] = view
        return view

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def names(self) -> list[str]:
        return [row[0] for row in self.manifest]

    def as_dict(self) -> dict[str, np.ndarray]:
        """All arrays as a plain ``{name: view}`` dict (views, no copies)."""
        return {name: self[name] for name in self.names()}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backing (idempotent).

        The creator of a shared segment / scratch mapped file also
        unlinks it.  If some store still holds live views the OS mapping
        stays alive until those views are garbage-collected, but the
        name is removed immediately — nothing accumulates in
        ``/dev/shm`` across runs.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        if self._segment is not None:
            name = self._segment.name
            try:
                self._segment.close()
            except BufferError:  # live views exported; mapping outlives us
                _ZOMBIE_SEGMENTS.append(self._segment)
            if self._owner:
                try:
                    self._segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
                _forget_segment(name)
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass
            if self._owner and self._delete_file and self.path:
                try:
                    os.unlink(self.path)
                except OSError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "BufferPack":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BufferPack({len(self.manifest)} arrays, "
                f"{self.nbytes} bytes, {self.backing})")


@dataclass
class PackedIndex:
    """A :class:`BufferPack` plus what a store needs besides raw arrays:
    the index type tag (``"tz_index"`` …) and the scalar metadata."""

    tag: str
    meta: dict
    pack: BufferPack

    def handle(self) -> tuple[str, dict, PackHandle]:
        """Picklable form: ``(tag, meta, pack handle)``."""
        return (self.tag, self.meta, self.pack.handle())

    def close(self) -> None:
        self.pack.close()

    def __enter__(self) -> "PackedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# the array-tree codec (shard requests/responses without pickle)
# ----------------------------------------------------------------------
def flatten_tree(tree: Any) -> tuple[Any, list[np.ndarray]]:
    """Flatten a nested tuple-of-ndarrays into ``(spec, leaves)``.

    The spec mirrors the tuple structure with leaf indexes at the
    ndarray positions; :func:`build_tree` inverts it.  This covers every
    request/response shape the four stores produce (a bare array, a
    tuple of arrays, or tuples of tuples for the graceful store).
    """
    leaves: list[np.ndarray] = []

    def walk(node):
        if isinstance(node, tuple):
            return tuple(walk(child) for child in node)
        leaves.append(np.ascontiguousarray(node))
        return len(leaves) - 1

    return walk(tree), leaves


def build_tree(spec: Any, leaves: Sequence[np.ndarray]) -> Any:
    """Rebuild the nested structure :func:`flatten_tree` flattened."""
    if isinstance(spec, tuple):
        return tuple(build_tree(child, leaves) for child in spec)
    return leaves[spec]


def plan_tree(leaves: Sequence[np.ndarray],
              ) -> tuple[tuple[tuple[str, tuple, int], ...], int]:
    """Layout for the flattened leaves: ``((dtype, shape, offset), ...)``
    plus the total byte span (offsets are :data:`ALIGNMENT`-aligned)."""
    manifest = []
    offset = 0
    for arr in leaves:
        offset = _align(offset)
        manifest.append((arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    return tuple(manifest), offset


def write_tree(buffer, base: int, manifest: Sequence,
               leaves: Sequence[np.ndarray]) -> None:
    """Copy the leaves into ``buffer`` at ``base`` per the manifest."""
    for (dt, shape, off), arr in zip(manifest, leaves):
        if arr.nbytes:
            dst = np.frombuffer(buffer, dtype=arr.dtype, count=arr.size,
                                offset=base + off)
            dst[:] = arr.reshape(-1)


def read_tree(buffer, base: int, spec: Any, manifest: Sequence) -> Any:
    """Rebuild an array tree as read-only views over ``buffer``."""
    return build_tree(spec, [_view_array(buffer, dt, shape, base + off)
                             for dt, shape, off in manifest])


def _spec_from_json(node):
    """Invert JSON's tuple->list coercion on a :func:`flatten_tree` spec."""
    if isinstance(node, list):
        return tuple(_spec_from_json(child) for child in node)
    return int(node)


def tree_to_bytes(tree: Any) -> bytes:
    """Encode an array tree as one self-contained byte string.

    Layout: ``u32 head_len | head JSON (spec + manifest) | pad to
    ALIGNMENT | raw leaf blobs`` — the leaves are laid out exactly as
    :func:`plan_tree`/:func:`write_tree` lay them into a ring slot, so
    this is the array-tree codec with the descriptor glued on instead of
    travelling out of band.  The wire form of the TCP transport's query/
    result frames (:mod:`repro.service.transport`).
    """
    spec, leaves = flatten_tree(tree)
    manifest, total = plan_tree(leaves)
    head = json.dumps({"spec": spec, "manifest": manifest},
                      separators=(",", ":")).encode("ascii")
    base = _align(4 + len(head))
    buf = bytearray(base + total)
    struct.pack_into("<I", buf, 0, len(head))
    buf[4:4 + len(head)] = head
    write_tree(memoryview(buf), base, manifest, leaves)
    return bytes(buf)


def tree_from_bytes(data) -> Any:
    """Decode :func:`tree_to_bytes` output back into an array tree.

    The leaves are read-only ndarray views over ``data`` — no blob
    copy; callers that need to outlive the buffer copy explicitly.
    """
    view = memoryview(data)
    if len(view) < 4:
        raise ConfigError("truncated array-tree message")
    (head_len,) = struct.unpack_from("<I", view, 0)
    if 4 + head_len > len(view):
        raise ConfigError("truncated array-tree message")
    try:
        head = json.loads(bytes(view[4:4 + head_len]).decode("ascii"))
        spec = _spec_from_json(head["spec"])
        manifest = tuple((str(dt), tuple(int(d) for d in shape), int(off))
                         for dt, shape, off in head["manifest"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        raise ConfigError("corrupt array-tree message header") from None
    base = _align(4 + head_len)
    return read_tree(view, base, spec, manifest)


class SharedArea:
    """A shared segment cut into ``slots`` equal ring slots.

    The master allocates one for requests and one for responses and
    rotates through the slots batch by batch; messages are written with
    :func:`write_tree` and read back (in either process) with
    :func:`read_tree`.  Attach from a worker with :meth:`attach_buffer`
    — the descriptor travelling through the (tiny, pickled) task tuple
    carries the segment name, so reallocation/growth is just a new
    segment name appearing in the next batch's descriptors.
    """

    def __init__(self, slot_bytes: int, slots: int = 2, tag: str = "ring"):
        if slot_bytes < 1 or slots < 1:
            raise ConfigError("SharedArea wants slot_bytes >= 1, slots >= 1")
        self.slot_bytes = int(slot_bytes)
        self.slots = int(slots)
        self._segment = _shm.SharedMemory(
            name=_new_segment_name(tag), create=True,
            size=self.slot_bytes * self.slots)
        _register_segment(self._segment.name)
        self._closed = False

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def buffer(self):
        return self._segment.buf

    def slot_offset(self, slot: int) -> int:
        return (slot % self.slots) * self.slot_bytes

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        name = self._segment.name
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - live views
            _ZOMBIE_SEGMENTS.append(self._segment)
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _forget_segment(name)

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


def next_pow2(value: int) -> int:
    """The smallest power of two >= ``value`` (ring capacity sizing)."""
    size = 1
    while size < value:
        size <<= 1
    return size
