"""One session-oriented serving API over pluggable transports.

The SarmaDP12 oracle is a distributed system: preprocess once, then
answer ``dist(u, v)`` under heavy traffic.  This module re-centers the
serving surface on two objects and one factory:

* :class:`OracleServer` — hosts one :class:`~repro.service.index.IndexStore`
  epoch (optionally a live :class:`~repro.service.updates.UpdateableIndex`)
  behind a transport listener.  :meth:`OracleServer.local` wraps today's
  in-process/pooled :class:`~repro.service.workers.ShardServer`;
  :meth:`OracleServer.serve` listens on TCP with a length-prefixed
  binary frame protocol that reuses the
  :mod:`~repro.service.buffers` array-tree codec for query/result
  payloads.
* :class:`OracleClient` — the session handle every caller holds:
  ``dist`` / ``dist_many`` / ``dist_stream`` / ``apply_updates`` /
  ``stats`` / ``close``, identical across transports.
* :func:`connect` — the single entry point, taking a URL-style endpoint
  spec::

      connect("inproc://", source)                   # this process, jobs=1
      connect("proc://jobs=4;memory=shared", source) # local worker pool
      connect("tcp://host:port")                     # a remote OracleServer

  ``source`` is whatever the local transports should serve (a sketch
  list, a :class:`~repro.oracle.api.BuiltSketches`, a pre-built store,
  or an :class:`~repro.service.updates.UpdateableIndex`); a ``tcp://``
  session carries no data — the server owns the index.

One dataflow contract, many executors: the plan / shard_answer / finish
decomposition (and the engine's epoch pinning, caching, and hot-swap
mechanics) is the same code for every transport, so answers are
**bit-identical** across ``inproc`` / ``proc`` / ``tcp`` — including
:class:`~repro.errors.QueryError` parity on disconnected graphs — and
an :meth:`OracleClient.apply_updates` hot swap propagates to every
connected TCP client without a reconnect (the server pushes an
epoch-bump frame; in-flight batches stay pinned to the epoch that
served them, which every result frame names).

Wire protocol (version 1).  A frame is ``u32 frame_len | u32 head_len |
head JSON | body``; the body is :func:`~repro.service.buffers.tree_to_bytes`
output for query/result frames, the raw ``RPIX`` binary index container
for the index-fetch frame, and empty otherwise.  The server greets each
connection with a ``hello`` frame (n, scheme, epoch, shards); ``epoch``
frames are pushed to every connection after a hot swap; errors travel
as typed frames and re-raise client-side as the same
:mod:`repro.errors` class.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

import numpy as np

from repro.errors import ConfigError, QueryError, ReproError
from repro.service.buffers import tree_from_bytes, tree_to_bytes
from repro.service.engine import QueryEngine
from repro.service.index import (parse_pair_array, scheme_name_of,
                                 scheme_name_of_index)
from repro.service.updates import UpdateReport

#: transports :func:`connect` understands
TRANSPORTS = ("inproc", "proc", "tcp")

#: frame protocol version (carried by the hello frame)
PROTOCOL_VERSION = 1

#: options each local transport accepts in its endpoint spec
_ENDPOINT_OPTIONS = {
    "inproc": ("memory", "shards", "cache"),
    "proc": ("jobs", "memory", "shards", "cache"),
}

_FRAME_PREFIX = struct.Struct("<II")

#: frames larger than this are rejected before allocation (a corrupt
#: length prefix must not look like a 4 GB read)
MAX_FRAME_BYTES = 1 << 31


# ----------------------------------------------------------------------
# endpoint specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """A parsed endpoint spec (see :func:`parse_endpoint`)."""

    transport: str
    host: Optional[str] = None
    port: Optional[int] = None
    options: dict = field(default_factory=dict)

    def describe(self) -> str:
        if self.transport == "tcp":
            return f"tcp://{self.host}:{self.port}"
        opts = ";".join(f"{k}={v}" for k, v in sorted(self.options.items()))
        return f"{self.transport}://{opts}"


def parse_endpoint(spec: str) -> Endpoint:
    """Parse a URL-style endpoint spec.

    Grammar::

        spec    := transport "://" rest
        rest    := host ":" port          (tcp)
                 | [option (";" option)*] (inproc, proc)
        option  := key "=" value

    ``inproc`` accepts ``memory`` / ``shards`` / ``cache``; ``proc``
    additionally ``jobs``.  Integer-valued options are validated here,
    so a typo fails at :func:`connect` time, not mid-serve.

    :raises ConfigError: on an unknown transport, malformed address, or
        unknown/malformed option.
    """
    if not isinstance(spec, str) or "://" not in spec:
        raise ConfigError(
            f"endpoint spec must look like 'transport://...', got {spec!r}")
    transport, _, rest = spec.partition("://")
    if transport not in TRANSPORTS:
        raise ConfigError(f"unknown transport {transport!r}; "
                          f"choose from {TRANSPORTS}")
    if transport == "tcp":
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.lstrip("-").isdigit():
            raise ConfigError(
                f"tcp endpoint wants tcp://host:port, got {spec!r}")
        port_num = int(port)
        if not (0 <= port_num <= 65535):
            raise ConfigError(f"tcp port out of range in {spec!r}")
        return Endpoint("tcp", host=host, port=port_num)
    options: dict = {}
    allowed = _ENDPOINT_OPTIONS[transport]
    for item in rest.split(";") if rest else ():
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key or not value:
            raise ConfigError(
                f"bad endpoint option {item!r} in {spec!r} "
                f"(want key=value)")
        if key not in allowed:
            raise ConfigError(
                f"{transport}:// does not take option {key!r}; "
                f"allowed: {', '.join(allowed)}")
        if key in ("jobs", "shards", "cache"):
            try:
                options[key] = int(value)
            except ValueError:
                raise ConfigError(
                    f"endpoint option {key}={value!r} is not an "
                    f"integer") from None
        else:
            options[key] = value
    return Endpoint(transport, options=options)


def _parse_addr(addr: str) -> tuple[str, int]:
    """A listen address is a tcp endpoint without the scheme — same
    validation (including the port range), same failure class."""
    try:
        endpoint = parse_endpoint(f"tcp://{addr}")
    except ConfigError:
        raise ConfigError(
            f"listen address wants 'host:port', got {addr!r}") from None
    return endpoint.host, endpoint.port


# ----------------------------------------------------------------------
# frame plumbing
# ----------------------------------------------------------------------
def _send_frame(sock: socket.socket, head: dict, body: bytes = b"") -> None:
    head_json = json.dumps(head, separators=(",", ":")).encode("utf-8")
    frame_len = 4 + len(head_json) + len(body)
    sock.sendall(_FRAME_PREFIX.pack(frame_len, len(head_json))
                 + head_json + body)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("oracle connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    frame_len, head_len = _FRAME_PREFIX.unpack(_recv_exact(sock, 8))
    if not (4 + head_len <= frame_len <= MAX_FRAME_BYTES):
        raise ConnectionError(f"corrupt frame header "
                              f"({frame_len}/{head_len} bytes)")
    data = _recv_exact(sock, frame_len - 4)
    try:
        head = json.loads(data[:head_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise ConnectionError("corrupt frame head") from None
    return head, data[head_len:]


#: error classes that cross the wire as themselves; anything else
#: arrives as the base ReproError
_WIRE_ERRORS = {cls.__name__: cls for cls in (QueryError, ConfigError)}


def _error_to_frame(exc: BaseException) -> dict:
    return {"kind": "error", "etype": type(exc).__name__,
            "message": str(exc)}


def _error_from_frame(head: dict) -> ReproError:
    cls = _WIRE_ERRORS.get(head.get("etype"), ReproError)
    return cls(str(head.get("message", "remote error")))


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class _Connection:
    """One accepted TCP connection: the socket plus a write lock so
    pushed epoch frames never interleave with a handler's reply."""

    __slots__ = ("sock", "lock")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.lock = threading.Lock()


class OracleServer:
    """Host one index epoch behind a transport.

    :param source: what to serve —

        * a per-node sketch list (or a
          :class:`~repro.oracle.api.BuiltSketches`): the index is built
          here with ``num_shards`` shards;
        * a pre-built :class:`~repro.service.index.IndexStore` (e.g.
          loaded from a binary container): served as-is, shard layout
          baked in;
        * an :class:`~repro.service.updates.UpdateableIndex`: serves the
          live epoch and enables :meth:`apply_updates` hot swaps.

    :param jobs: worker processes behind the landmark shards (``1`` =
        in-process) — exactly
        :class:`~repro.service.workers.ShardServer`'s knob.
    :param memory: the data plane (``"heap"`` / ``"shared"`` /
        ``"mmap"``).
    :param num_shards: landmark shard count when building from
        sketches; must match (or be omitted for) a pre-built source.
    :param cache_size: LRU result-cache capacity of the hosted engine.

    The same server object backs every transport: :meth:`client` hands
    out in-process sessions (what ``inproc://`` / ``proc://`` bind to),
    :meth:`serve` adds a TCP listener speaking the frame protocol.  Use
    as a context manager or :meth:`close` to release the pool, shared
    segments, listener, and connections.
    """

    def __init__(self, source: Any, *, jobs: int = 1, memory: str = "heap",
                 num_shards: Optional[int] = None, cache_size: int = 65536):
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        # ring-mode dispatch rotates through shared slots and is not
        # re-entrant — remote connections serialize their queries here
        self._query_lock = threading.Lock()
        self._closed = False
        self.address: Optional[tuple[str, int]] = None

        kind, payload = self._normalize_source(source)
        if num_shards is not None and num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if kind == "updateable":
            self._engine = QueryEngine.from_updateable(
                payload, cache_size=cache_size, jobs=jobs, memory=memory,
                _deprecation=False)
        elif kind == "index":
            self._engine = QueryEngine.from_index(
                payload, cache_size=cache_size, jobs=jobs, memory=memory,
                _deprecation=False)
        else:
            self._engine = QueryEngine(
                payload, cache_size=cache_size,
                num_shards=num_shards or max(int(jobs), 1),
                jobs=jobs, memory=memory, _deprecation=False)
        if (kind in ("updateable", "index") and num_shards is not None
                and self._engine.index is not None
                and num_shards != self._engine.index.num_shards):
            shards = self._engine.index.num_shards
            self._engine.close()
            raise ConfigError(
                f"this source bakes its shard layout in ({shards} "
                f"shards); drop num_shards or pass {shards}")
        self.scheme = self._scheme_of(kind, payload)
        self.updateable = kind == "updateable"

    @staticmethod
    def _normalize_source(source: Any) -> tuple[str, Any]:
        from repro.oracle.api import BuiltSketches
        from repro.service.updates import UpdateableIndex

        if isinstance(source, UpdateableIndex):
            return "updateable", source
        if isinstance(source, BuiltSketches):
            return "sketches", source.sketches
        if isinstance(source, (list, tuple)):
            return "sketches", list(source)
        if hasattr(source, "plan") and hasattr(source, "estimate_many"):
            return "index", source
        raise ConfigError(
            f"cannot serve a {type(source).__name__}: want a sketch "
            f"list, BuiltSketches, IndexStore, or UpdateableIndex")

    @staticmethod
    def _scheme_of(kind: str, payload: Any) -> Optional[str]:
        if kind == "updateable":
            return payload.scheme
        if kind == "index":
            return scheme_name_of_index(payload)
        return scheme_name_of(payload)

    @classmethod
    def local(cls, source: Any, *, jobs: int = 1, memory: str = "heap",
              num_shards: Optional[int] = None,
              cache_size: int = 65536) -> "OracleServer":
        """A server wrapping today's in-process/pooled
        :class:`~repro.service.workers.ShardServer` — the host behind
        ``inproc://`` (``jobs=1``) and ``proc://`` endpoints.  Identical
        to the constructor; the name states the topology."""
        return cls(source, jobs=jobs, memory=memory, num_shards=num_shards,
                   cache_size=cache_size)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._engine.n

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    @property
    def num_shards(self) -> int:
        index = self._engine.index
        return index.num_shards if index is not None else 1

    @property
    def jobs(self) -> int:
        """Effective worker count (clamped to the shard count)."""
        return self._engine.jobs

    def client(self, endpoint: str = "inproc://",
               owns_server: bool = False) -> "OracleClient":
        """An in-process session over this server (no serialization, no
        socket — the ``inproc``/``proc`` data path)."""
        return OracleClient(_LocalTransport(self, owns_server=owns_server),
                            endpoint=endpoint)

    def apply_updates(self, changes) -> UpdateReport:
        """Apply an edge-change batch to the hosted
        :class:`~repro.service.updates.UpdateableIndex`, hot-swap the
        epoch (in-flight batches finish on the epoch they started on),
        and push an epoch-bump frame to every connected TCP client.

        :raises ConfigError: when the server hosts a static source.
        """
        report = self._engine.apply_updates(changes)
        if report.mode != "noop":
            self._broadcast({"kind": "epoch", "epoch": report.epoch})
        return report

    def stats(self) -> dict:
        """A JSON-ready snapshot: size, scheme, epoch, worker/memory
        configuration, cache counters, cumulative phase timings, and the
        number of live TCP connections."""
        engine = self._engine
        cache = engine.stats
        with self._conn_lock:
            connections = len(self._conns)
        return {
            "n": engine.n,
            "scheme": self.scheme,
            "epoch": engine.epoch,
            "updateable": self.updateable,
            "shards": self.num_shards,
            "jobs": engine.jobs,
            "memory": engine.memory,
            "cache_size": engine.cache_size,
            "cache": {"hits": cache.hits, "misses": cache.misses,
                      "evictions": cache.evictions},
            "phases": engine.phase_timings(),
            "connections": connections,
        }

    # ------------------------------------------------------------------
    # the TCP listener
    # ------------------------------------------------------------------
    def serve(self, addr: str = "127.0.0.1:0", *, block: bool = True,
              backlog: int = 16) -> tuple[str, int]:
        """Listen for frame-protocol clients on ``addr`` (``host:port``;
        port ``0`` picks a free one).

        Returns the bound ``(host, port)``.  With ``block=True`` (the
        daemon mode ``python -m repro serve`` runs) the call accepts
        until :meth:`close`; ``block=False`` accepts on a background
        thread and returns immediately — the in-test topology.
        """
        if self._closed:
            raise ConfigError("server is closed")
        if self._listener is not None:
            raise ConfigError(
                f"server is already listening on "
                f"{self.address[0]}:{self.address[1]}")
        host, port = _parse_addr(addr)
        listener = socket.create_server((host, port), backlog=backlog)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        if block:
            try:
                self._accept_loop(listener)
            finally:
                self.close()
        else:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, args=(listener,), daemon=True,
                name="oracle-accept")
            self._accept_thread.start()
        return self.address

    def wait(self) -> None:
        """Block until the background accept loop exits (daemon use)."""
        if self._accept_thread is not None:
            self._accept_thread.join()

    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                sock, _ = listener.accept()
            except OSError:  # listener closed — clean shutdown
                return
            threading.Thread(target=self._serve_connection, args=(sock,),
                             daemon=True, name="oracle-conn").start()

    def _serve_connection(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _Connection(sock)
        try:
            # hello goes out before the connection can receive epoch
            # broadcasts — a client's first frame must be the hello, and
            # the hello already carries the current epoch
            self._send(conn, {
                "kind": "hello", "v": PROTOCOL_VERSION, "n": self.n,
                "scheme": self.scheme, "epoch": self.epoch,
                "shards": self.num_shards, "updateable": self.updateable})
            with self._conn_lock:
                self._conns.add(conn)
            if self._closed:  # lost the race with close(): bail out
                raise ConnectionError("server closed")
            while True:
                head, body = _recv_frame(sock)
                if head.get("kind") == "close":
                    return
                try:
                    reply_head, reply_body = self._handle(head, body)
                except Exception as exc:
                    reply_head, reply_body = _error_to_frame(exc), b""
                self._send(conn, reply_head, reply_body)
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _handle(self, head: dict, body: bytes) -> tuple[dict, bytes]:
        kind = head.get("kind")
        if kind == "query":
            pairs = np.asarray(tree_from_bytes(body))
            with self._query_lock:
                answers, epoch = self._engine.dist_many_pinned(pairs)
            return ({"kind": "result", "epoch": int(epoch)},
                    tree_to_bytes(answers))
        if kind == "apply":
            from repro.oracle.serialization import change_from_dict

            changes = [change_from_dict(item)
                       for item in head.get("changes", ())]
            report = self.apply_updates(changes)
            return {"kind": "report", "report": report.as_dict()}, b""
        if kind == "stats":
            return {"kind": "stats_reply", "stats": self.stats()}, b""
        if kind == "fetch_index":
            from repro.oracle.serialization import index_binary_bytes

            # snapshot (store, epoch) atomically — a concurrent hot
            # swap must not label the old epoch's bytes with the new
            # epoch number; the old store is immutable, so serializing
            # it outside any lock is safe
            index, epoch = self._engine.index_snapshot()
            if index is None:  # pragma: no cover - generic sketch set
                raise ConfigError("server has no index to fetch")
            return ({"kind": "index_blob", "epoch": int(epoch)},
                    index_binary_bytes(index))
        raise ConfigError(f"unknown frame kind {kind!r}")

    def _send(self, conn: _Connection, head: dict,
              body: bytes = b"") -> None:
        with conn.lock:
            _send_frame(conn.sock, head, body)

    def _broadcast(self, head: dict) -> None:
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                self._send(conn, head)
            except OSError:
                pass  # its reader thread will reap the connection

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop listening, drop every connection, and shut the hosted
        engine down — pool, shared segments, scratch files (idempotent)."""
        self._closed = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        with self._conn_lock:
            conns, self._conns = list(self._conns), set()
        for conn in conns:
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._engine.close()

    def __enter__(self) -> "OracleServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = (f"tcp://{self.address[0]}:{self.address[1]}"
                 if self.address else "local")
        return (f"OracleServer({self.scheme or '?'}, n={self.n}, "
                f"epoch={self.epoch}, {where})")


# ----------------------------------------------------------------------
# transports (the client side)
# ----------------------------------------------------------------------
class _LocalTransport:
    """In-process binding to an :class:`OracleServer` — the ``inproc``
    and ``proc`` data path (no serialization at all)."""

    name = "local"

    def __init__(self, server: OracleServer, owns_server: bool):
        self._server = server
        self._owns_server = owns_server

    @property
    def n(self) -> int:
        return self._server.n

    @property
    def scheme(self) -> Optional[str]:
        return self._server.scheme

    @property
    def epoch(self) -> int:
        return self._server.epoch

    def dist_many(self, pairs) -> np.ndarray:
        return self._server._engine.dist_many(pairs)

    def dist_stream(self, batches) -> Iterator[np.ndarray]:
        return self._server._engine.dist_stream(batches)

    def apply_updates(self, changes) -> UpdateReport:
        return self._server.apply_updates(changes)

    def stats(self) -> dict:
        return self._server.stats()

    def fetch_index(self, path: Optional[str]):
        index = self._server._engine.index
        if index is None:
            raise ConfigError("session has no index to fetch")
        if path is not None:
            from repro.oracle.serialization import save_index_binary

            save_index_binary(index, path)
        return index

    def close(self) -> None:
        if self._owns_server:
            self._server.close()


class _TcpTransport:
    """Frame-protocol client: one socket, synchronous request/reply,
    pushed ``epoch`` frames folded into the session state whenever they
    arrive."""

    name = "tcp"

    def __init__(self, endpoint: Endpoint,
                 timeout: Optional[float] = None):
        try:
            self._sock = socket.create_connection(
                (endpoint.host, endpoint.port), timeout=timeout)
        except OSError as exc:
            raise ConfigError(
                f"cannot connect to {endpoint.describe()}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._closed = False
        head, _ = _recv_frame(self._sock)
        if head.get("kind") != "hello":
            self._sock.close()
            raise ConfigError(f"{endpoint.describe()} is not an oracle "
                              f"server (no hello frame)")
        if head.get("v") != PROTOCOL_VERSION:
            self._sock.close()
            raise ConfigError(
                f"protocol version mismatch: server speaks "
                f"{head.get('v')}, client {PROTOCOL_VERSION}")
        self.n = int(head["n"])
        self.scheme = head.get("scheme")
        self.epoch = int(head["epoch"])
        self.num_shards = int(head["shards"])
        self.updateable = bool(head["updateable"])

    def _request(self, head: dict, body: bytes = b"") -> tuple[dict, bytes]:
        with self._lock:
            _send_frame(self._sock, head, body)
            while True:
                reply, payload = _recv_frame(self._sock)
                kind = reply.get("kind")
                if kind == "epoch":  # pushed hot-swap notification
                    self.epoch = int(reply["epoch"])
                    continue
                if kind == "error":
                    raise _error_from_frame(reply)
                return reply, payload

    def dist_many(self, pairs) -> np.ndarray:
        arr = parse_pair_array(pairs)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        head, body = self._request({"kind": "query"}, tree_to_bytes(arr))
        if head.get("kind") != "result":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        # the batch is pinned to the epoch that served it, even when an
        # epoch push for a newer one arrived while it was in flight
        self.epoch = int(head["epoch"])
        return np.array(tree_from_bytes(body), dtype=np.float64)

    def dist_stream(self, batches) -> Iterator[np.ndarray]:
        for pairs in batches:
            yield self.dist_many(pairs)

    def apply_updates(self, changes) -> UpdateReport:
        from repro.oracle.serialization import change_to_dict

        head, _ = self._request({
            "kind": "apply",
            "changes": [change_to_dict(c) for c in changes]})
        if head.get("kind") != "report":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        report = UpdateReport(**head["report"])
        self.epoch = report.epoch
        return report

    def stats(self) -> dict:
        head, _ = self._request({"kind": "stats"})
        if head.get("kind") != "stats_reply":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        return head["stats"]

    def fetch_index(self, path: Optional[str]):
        from repro.oracle.serialization import load_index_binary

        head, blob = self._request({"kind": "fetch_index"})
        if head.get("kind") != "index_blob":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        if path is None:
            # no attach target: materialize in memory via a scratch file
            fd, tmp = tempfile.mkstemp(prefix="repro-fetch-", suffix=".rpix")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                return load_index_binary(tmp, backing="heap")
            finally:
                os.unlink(tmp)
        with open(path, "wb") as fh:
            fh.write(blob)
        return load_index_binary(path, backing="mmap")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            _send_frame(self._sock, {"kind": "close"})
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ----------------------------------------------------------------------
# the session handle
# ----------------------------------------------------------------------
class OracleClient:
    """A serving session — the one handle callers hold, whatever the
    transport behind it.

    Obtained from :func:`connect` (or :meth:`OracleServer.client`).
    ``dist`` / ``dist_many`` / ``dist_stream`` answers are bit-identical
    across transports, including :class:`~repro.errors.QueryError`
    parity on disconnected graphs; :meth:`apply_updates` hot-swaps the
    served epoch with zero downtime wherever the session's server hosts
    an :class:`~repro.service.updates.UpdateableIndex`.  Sessions are
    context managers; :meth:`close` releases whatever the transport
    holds (an owned local server, or the socket).
    """

    def __init__(self, transport, endpoint: str):
        self._transport = transport
        self.endpoint = endpoint

    # -- identity ------------------------------------------------------
    @property
    def transport(self) -> str:
        """``"local"`` (inproc/proc) or ``"tcp"``."""
        return self._transport.name

    @property
    def n(self) -> int:
        """Node count of the served index."""
        return self._transport.n

    @property
    def scheme(self) -> Optional[str]:
        """Registry name of the served scheme (``"tz"`` …)."""
        return self._transport.scheme

    @property
    def epoch(self) -> int:
        """The last epoch this session observed — updated by every
        result frame and by server-pushed epoch bumps."""
        return self._transport.epoch

    # -- queries -------------------------------------------------------
    def dist(self, u: int, v: int) -> float:
        """One distance estimate."""
        return float(self.dist_many([(u, v)])[0])

    def dist_many(self, pairs: Iterable[tuple[int, int]] | np.ndarray,
                  ) -> np.ndarray:
        """Estimates for a batch of ``(u, v)`` pairs, in input order —
        one epoch answers the whole batch."""
        return self._transport.dist_many(pairs)

    def dist_stream(self, batches: Iterable) -> Iterator[np.ndarray]:
        """Pipelined serving over an iterable of pair batches (the
        double-buffered dispatch on pooled local transports); yields one
        answer array per batch, in order, bit-identical to per-batch
        :meth:`dist_many` on a cold cache."""
        return self._transport.dist_stream(batches)

    # -- control plane -------------------------------------------------
    def apply_updates(self, changes) -> UpdateReport:
        """Apply an edge-change batch to the session's server and
        hot-swap its epoch (propagated to every other connected client
        without a reconnect).  Needs an updateable server."""
        return self._transport.apply_updates(changes)

    def stats(self) -> dict:
        """Server-side statistics plus this session's transport and
        endpoint."""
        return {"transport": self.transport, "endpoint": self.endpoint,
                **self._transport.stats()}

    def fetch_index(self, path: Optional[str] = None):
        """The served epoch's pre-built store.

        Local sessions return the live store.  TCP sessions download
        the ``RPIX`` binary container through the session's own channel:
        with ``path`` the blob is written there and attached
        ``backing="mmap"`` — byte-identical to a ``repro build --format
        binary`` artifact, zero blob parsing — which is how a remote
        worker box warms up; without ``path`` it is materialized in
        memory.
        """
        return self._transport.fetch_index(path)

    def close(self) -> None:
        """End the session (idempotent via the transport)."""
        self._transport.close()

    def __enter__(self) -> "OracleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OracleClient({self.endpoint!r}, n={self.n}, "
                f"scheme={self.scheme}, epoch={self.epoch})")


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------
def connect(spec: str, source: Any = None, *,
            cache_size: Optional[int] = None,
            timeout: Optional[float] = None) -> OracleClient:
    """Open a serving session on an endpoint spec — the one front door
    of the serving layer.

    * ``connect("inproc://", source)`` — everything in this process,
      ``jobs=1``, heap memory (options: ``memory`` / ``shards`` /
      ``cache``);
    * ``connect("proc://jobs=4;memory=shared", source)`` — a local
      worker pool behind the landmark shards (``jobs`` defaults to the
      CPU count, ``memory`` to ``shared``, ``shards`` to ``jobs``);
    * ``connect("tcp://host:port")`` — a remote
      :class:`OracleServer`; no ``source`` (the server owns the index).

    ``source`` for local transports: a sketch list,
    :class:`~repro.oracle.api.BuiltSketches`, pre-built store, or
    :class:`~repro.service.updates.UpdateableIndex` (which enables
    :meth:`OracleClient.apply_updates`).  ``cache_size`` overrides the
    spec's ``cache`` option; ``timeout`` bounds the TCP connect.

    :raises ConfigError: on a bad spec, a missing/forbidden ``source``,
        or an unreachable server.
    """
    endpoint = parse_endpoint(spec)
    if endpoint.transport == "tcp":
        if source is not None:
            raise ConfigError(
                "a tcp:// session carries no data — the server owns the "
                "index (drop source=)")
        if cache_size is not None:
            raise ConfigError(
                "cache_size is a server-side knob for tcp:// sessions")
        return OracleClient(_TcpTransport(endpoint, timeout=timeout),
                            endpoint=endpoint.describe())
    if source is None:
        raise ConfigError(
            f"{endpoint.transport}:// serves in this process and needs "
            f"source= (a sketch list, BuiltSketches, IndexStore, or "
            f"UpdateableIndex)")
    options = dict(endpoint.options)
    # an explicit shards= option is enforced; otherwise OracleServer
    # defaults sketch sources to one shard per worker and leaves
    # pre-built sources on their baked layout
    shards = options.get("shards")
    if endpoint.transport == "inproc":
        jobs = 1
        memory = options.get("memory", "heap")
    else:
        from repro.service.parallel import default_jobs

        jobs = options.get("jobs")
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        memory = options.get("memory", "shared")
    cache = cache_size if cache_size is not None \
        else options.get("cache", 65536)
    server = OracleServer.local(source, jobs=jobs, memory=memory,
                                num_shards=shards, cache_size=cache)
    return server.client(endpoint=endpoint.describe(), owns_server=True)
