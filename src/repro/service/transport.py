"""One session-oriented serving API over pluggable transports.

The SarmaDP12 oracle is a distributed system: preprocess once, then
answer ``dist(u, v)`` under heavy traffic.  This module re-centers the
serving surface on two objects and one factory:

* :class:`OracleServer` — hosts one :class:`~repro.service.index.IndexStore`
  epoch (optionally a live :class:`~repro.service.updates.UpdateableIndex`)
  behind a transport listener.  :meth:`OracleServer.local` wraps today's
  in-process/pooled :class:`~repro.service.workers.ShardServer`;
  :meth:`OracleServer.serve` listens on TCP with a length-prefixed
  binary frame protocol that reuses the
  :mod:`~repro.service.buffers` array-tree codec for query/result
  payloads.
* :class:`OracleClient` — the session handle every caller holds:
  ``dist`` / ``dist_many`` / ``dist_stream`` / ``apply_updates`` /
  ``stats`` / ``close``, identical across transports.
* :func:`connect` — the single entry point, taking a URL-style endpoint
  spec::

      connect("inproc://", source)                   # this process, jobs=1
      connect("proc://jobs=4;memory=shared", source) # local worker pool
      connect("tcp://host:port")                     # a remote OracleServer

  ``source`` is whatever the local transports should serve (a sketch
  list, a :class:`~repro.oracle.api.BuiltSketches`, a pre-built store,
  or an :class:`~repro.service.updates.UpdateableIndex`); a ``tcp://``
  session carries no data — the server owns the index.

One dataflow contract, many executors: the plan / shard_answer / finish
decomposition (and the engine's epoch pinning, caching, and hot-swap
mechanics) is the same code for every transport, so answers are
**bit-identical** across ``inproc`` / ``proc`` / ``tcp`` — including
:class:`~repro.errors.QueryError` parity on disconnected graphs — and
an :meth:`OracleClient.apply_updates` hot swap propagates to every
connected TCP client without a reconnect (the server pushes an
epoch-bump frame; in-flight batches stay pinned to the epoch that
served them, which every result frame names).

Wire protocol (version 2).  A frame is ``u32 frame_len | u32 head_len |
head JSON | body``; the body is :func:`~repro.service.buffers.tree_to_bytes`
output for query/result frames, the raw ``RPIX`` binary index container
for the index-fetch frame, and empty otherwise.  The server greets each
connection with a ``hello`` frame (n, scheme, epoch, shards); ``epoch``
frames are pushed to every connection after a hot swap; errors travel
as typed frames and re-raise client-side as the same
:mod:`repro.errors` class.

Version 2 made the wire **multiplexed**: every request frame carries a
client-assigned ``id`` and every reply echoes it, so a connection may
keep many requests in flight and consume replies out of order.  The
client exploits that in :meth:`OracleClient.dist_stream` — a window of
``pipeline_depth`` batches (≥ 2) stays submitted per connection, so
batch *k+1*'s encode and the wire round-trip overlap batch *k*'s
server-side probes (the PR 5 submit/collect double-buffering, extended
over TCP).  The server exploits it too: :meth:`OracleServer.serve` runs
one :mod:`selectors` event loop that multiplexes every connection
(accept, frame reassembly, write flushing) on a single IO thread and
fans decoded requests across a handler thread pool sized to the
engine.  Per-connection **backpressure**: while a connection's write
buffer or in-flight handler count is over its cap, the loop stops
reading (and dispatching) that connection until it drains, so one slow
consumer cannot balloon server memory.  Ring-mode shard dispatch (a
worker pool over shared message rings) is the one engine path that is
not re-entrant; only that path serializes behind the server's query
lock — heap and in-process dispatch run handlers concurrently.
"""

from __future__ import annotations

import json
import os
import select
import selectors
import socket
import struct
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional

import numpy as np

from repro.errors import ConfigError, QueryError, ReproError
from repro.service.buffers import tree_from_bytes, tree_to_bytes
from repro.service.engine import QueryEngine
from repro.service.index import (parse_pair_array, scheme_name_of,
                                 scheme_name_of_index)
from repro.service.updates import UpdateReport

#: transports :func:`connect` understands
TRANSPORTS = ("inproc", "proc", "tcp", "cluster")

#: frame protocol version (carried by the hello frame).  Version 2
#: added request-id multiplexing: request frames carry ``id``, replies
#: echo it, and replies may arrive out of order.
PROTOCOL_VERSION = 2

#: how many batches a tcp ``dist_stream`` keeps in flight per
#: connection (the pipelining window; ≥ 2 hides the wire round-trip)
DEFAULT_PIPELINE_DEPTH = 4

#: options each local transport accepts in its endpoint spec
_ENDPOINT_OPTIONS = {
    "inproc": ("memory", "shards", "cache"),
    "proc": ("jobs", "memory", "pool", "shards", "cache"),
}

_FRAME_PREFIX = struct.Struct("<II")

#: frames larger than this are rejected before allocation (a corrupt
#: length prefix must not look like a 4 GB read)
MAX_FRAME_BYTES = 1 << 31

#: per-connection write-buffer high-water mark: above this the event
#: loop stops reading (and dispatching) the connection until it drains
_OUTBUF_HIGH = 1 << 20


# ----------------------------------------------------------------------
# endpoint specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """A parsed endpoint spec (see :func:`parse_endpoint`)."""

    transport: str
    host: Optional[str] = None
    port: Optional[int] = None
    options: dict = field(default_factory=dict)

    def describe(self) -> str:
        if self.transport == "tcp":
            return f"tcp://{self.host}:{self.port}"
        if self.transport == "cluster":
            hosts = ",".join(f"{h}:{p}" for h, p in self.options["hosts"])
            return f"cluster://{hosts}"
        opts = ";".join(f"{k}={v}" for k, v in sorted(self.options.items()))
        return f"{self.transport}://{opts}"


def parse_endpoint(spec: str) -> Endpoint:
    """Parse a URL-style endpoint spec.

    Grammar::

        spec    := transport "://" rest
        rest    := host ":" port          (tcp)
                 | addr ("," addr)*       (cluster; addr := host ":" port)
                 | [option (";" option)*] (inproc, proc)
        option  := key "=" value

    ``inproc`` accepts ``memory`` / ``shards`` / ``cache``; ``proc``
    additionally ``jobs`` and ``pool`` (``proc`` | ``thread`` — the
    shard execution plane; ``proc://jobs=4;pool=thread`` is a worker
    *pool* session whose shards run on GIL-releasing threads).
    Integer-valued options are validated here, so a typo fails at
    :func:`connect` time, not mid-serve.

    :raises ConfigError: on an unknown transport, malformed address, or
        unknown/malformed option.
    """
    if not isinstance(spec, str) or "://" not in spec:
        raise ConfigError(
            f"endpoint spec must look like 'transport://...', got {spec!r}")
    transport, _, rest = spec.partition("://")
    if transport not in TRANSPORTS:
        raise ConfigError(f"unknown transport {transport!r}; "
                          f"choose from {TRANSPORTS}")
    if transport == "tcp":
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.lstrip("-").isdigit():
            raise ConfigError(
                f"tcp endpoint wants tcp://host:port, got {spec!r}")
        port_num = int(port)
        if not (0 <= port_num <= 65535):
            raise ConfigError(f"tcp port out of range in {spec!r}")
        return Endpoint("tcp", host=host, port=port_num)
    if transport == "cluster":
        hosts = []
        for item in rest.rstrip(";").split(","):
            item = item.strip()
            if not item:
                raise ConfigError(
                    f"cluster endpoint wants "
                    f"cluster://host:port,host:port..., got {spec!r}")
            member = parse_endpoint(f"tcp://{item}")
            hosts.append((member.host, member.port))
        if not hosts:
            raise ConfigError(
                f"cluster endpoint names no hosts: {spec!r}")
        return Endpoint("cluster", options={"hosts": tuple(hosts)})
    options: dict = {}
    allowed = _ENDPOINT_OPTIONS[transport]
    for item in rest.split(";") if rest else ():
        if not item:
            continue
        key, sep, value = item.partition("=")
        if not sep or not key or not value:
            raise ConfigError(
                f"bad endpoint option {item!r} in {spec!r} "
                f"(want key=value)")
        if key not in allowed:
            raise ConfigError(
                f"{transport}:// does not take option {key!r}; "
                f"allowed: {', '.join(allowed)}")
        if key in ("jobs", "shards", "cache"):
            try:
                options[key] = int(value)
            except ValueError:
                raise ConfigError(
                    f"endpoint option {key}={value!r} is not an "
                    f"integer") from None
        elif key == "pool":
            from repro.service.workers import POOL_MODES
            if value not in POOL_MODES:
                raise ConfigError(
                    f"endpoint option pool={value!r} is not one of "
                    f"{POOL_MODES}")
            options[key] = value
        else:
            options[key] = value
    return Endpoint(transport, options=options)


def _parse_addr(addr: str) -> tuple[str, int]:
    """A listen address is a tcp endpoint without the scheme — same
    validation (including the port range), same failure class."""
    try:
        endpoint = parse_endpoint(f"tcp://{addr}")
    except ConfigError:
        raise ConfigError(
            f"listen address wants 'host:port', got {addr!r}") from None
    return endpoint.host, endpoint.port


# ----------------------------------------------------------------------
# frame plumbing
# ----------------------------------------------------------------------
def _frame_bytes(head: dict, body: bytes = b"") -> bytes:
    head_json = json.dumps(head, separators=(",", ":")).encode("utf-8")
    return (_FRAME_PREFIX.pack(4 + len(head_json) + len(body),
                               len(head_json)) + head_json + body)


def _send_frame(sock: socket.socket, head: dict, body: bytes = b"") -> None:
    sock.sendall(_frame_bytes(head, body))


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("oracle connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_frame(sock: socket.socket) -> tuple[dict, bytes]:
    frame_len, head_len = _FRAME_PREFIX.unpack(_recv_exact(sock, 8))
    if not (4 + head_len <= frame_len <= MAX_FRAME_BYTES):
        raise ConnectionError(f"corrupt frame header "
                              f"({frame_len}/{head_len} bytes)")
    data = _recv_exact(sock, frame_len - 4)
    try:
        head = json.loads(data[:head_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise ConnectionError("corrupt frame head") from None
    return head, data[head_len:]


#: error classes that cross the wire as themselves; anything else
#: arrives as the base ReproError
_WIRE_ERRORS = {cls.__name__: cls for cls in (QueryError, ConfigError)}


def _error_to_frame(exc: BaseException) -> dict:
    return {"kind": "error", "etype": type(exc).__name__,
            "message": str(exc)}


def _error_from_frame(head: dict) -> ReproError:
    cls = _WIRE_ERRORS.get(head.get("etype"), ReproError)
    return cls(str(head.get("message", "remote error")))


# ----------------------------------------------------------------------
# the server
# ----------------------------------------------------------------------
class _Connection:
    """One accepted TCP connection and its event-loop state.

    ``outbuf`` / ``inflight`` / ``closed`` are shared between the IO
    loop and the handler threads and guarded by ``lock``; ``inbuf`` and
    ``registered`` are touched only by the IO loop."""

    __slots__ = ("sock", "lock", "inbuf", "outbuf", "inflight", "closed",
                 "registered")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.lock = threading.Lock()
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.inflight = 0       # requests dispatched, reply not yet queued
        self.closed = False
        self.registered = False


class OracleServer:
    """Host one index epoch behind a transport.

    :param source: what to serve —

        * a per-node sketch list (or a
          :class:`~repro.oracle.api.BuiltSketches`): the index is built
          here with ``num_shards`` shards;
        * a pre-built :class:`~repro.service.index.IndexStore` (e.g.
          loaded from a binary container): served as-is, shard layout
          baked in;
        * an :class:`~repro.service.updates.UpdateableIndex`: serves the
          live epoch and enables :meth:`apply_updates` hot swaps.

    :param jobs: workers behind the landmark shards (``1`` =
        in-process) — exactly
        :class:`~repro.service.workers.ShardServer`'s knob.
    :param memory: the data plane (``"heap"`` / ``"shared"`` /
        ``"mmap"``).
    :param pool: the shard execution plane for ``jobs > 1`` —
        ``"proc"`` (worker processes) or ``"thread"`` (a GIL-releasing
        thread pool sharing the server's address space).
    :param num_shards: landmark shard count when building from
        sketches; must match (or be omitted for) a pre-built source.
    :param cache_size: LRU result-cache capacity of the hosted engine.
    :param shard_range: ``(lo, hi)`` — serve only landmark shards
        ``[lo, hi)`` (the fleet-host topology behind ``repro serve
        --shard-range``).  Static sources are physically restricted
        (:func:`~repro.service.index.restrict_index_shards`); an
        updateable source keeps the full store (repair is global) and
        the range only gates what this host advertises and answers.  A
        proper-subset host answers ``probe`` frames for its shards and
        rejects whole-batch ``query`` frames — combining partials is
        the :class:`~repro.service.cluster.ClusterClient`'s job.

    The same server object backs every transport: :meth:`client` hands
    out in-process sessions (what ``inproc://`` / ``proc://`` bind to),
    :meth:`serve` adds a TCP listener speaking the frame protocol on a
    :mod:`selectors` event loop.  Use as a context manager or
    :meth:`close` to release the pool, shared segments, listener,
    connections, and serving threads (close joins them with a bounded
    deadline — no thread outlives the server).
    """

    def __init__(self, source: Any, *, jobs: int = 1, memory: str = "heap",
                 pool: str = "proc", num_shards: Optional[int] = None,
                 cache_size: int = 65536,
                 shard_range: Optional[tuple[int, int]] = None):
        self._listener: Optional[socket.socket] = None
        self._io_thread: Optional[threading.Thread] = None
        self._selector: Optional[selectors.BaseSelector] = None
        self._handlers: Optional[ThreadPoolExecutor] = None
        self._handler_count = 0
        self._max_pending = 4   # per-connection in-flight request cap
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        self._conns: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        #: connections with freshly queued output (handler threads flag
        #: them here; the IO loop picks them up after each select)
        self._dirty: set[_Connection] = set()
        self._dirty_lock = threading.Lock()
        # ring-mode dispatch rotates through shared slots and is not
        # re-entrant — only that engine path serializes remote queries
        # here (heap / in-process dispatch runs handlers concurrently)
        self._query_lock = threading.Lock()
        # UpdateableIndex.apply is not re-entrant either: concurrent
        # apply frames (or an apply racing a local one) serialize here
        self._apply_lock = threading.Lock()
        # hot-swap telemetry (guarded by _apply_lock): how many
        # effective applies this server performed and what they cost
        self._swap_count = 0
        self._swap_seconds_total = 0.0
        self._swap_seconds_last = 0.0
        self._closed = False
        self.address: Optional[tuple[str, int]] = None

        kind, payload = self._normalize_source(source)
        if num_shards is not None and num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        self.shard_range: Optional[tuple[int, int]] = None
        if shard_range is not None:
            from repro.service.index import build_index, restrict_index_shards

            lo, hi = int(shard_range[0]), int(shard_range[1])
            if kind == "sketches":
                payload = build_index(
                    payload, num_shards=num_shards or max(int(jobs), 1))
                kind = "index"
            if kind == "index":
                # validates the range; [0, S) returns the store unchanged
                payload = restrict_index_shards(payload, lo, hi)
                total = payload.num_shards
            else:  # updateable: full store stays, the range only gates
                total = payload.index.num_shards
                if not (0 <= lo < hi <= total):
                    raise ConfigError(
                        f"shard range [{lo}, {hi}) invalid for "
                        f"{total} shards")
            if (lo, hi) != (0, total):
                self.shard_range = (lo, hi)
        if kind == "updateable":
            self._engine = QueryEngine.from_updateable(
                payload, cache_size=cache_size, jobs=jobs, memory=memory,
                pool=pool, _deprecation=False)
        elif kind == "index":
            self._engine = QueryEngine.from_index(
                payload, cache_size=cache_size, jobs=jobs, memory=memory,
                pool=pool, _deprecation=False)
        else:
            self._engine = QueryEngine(
                payload, cache_size=cache_size,
                num_shards=num_shards or max(int(jobs), 1),
                jobs=jobs, memory=memory, pool=pool, _deprecation=False)
        if (kind in ("updateable", "index") and num_shards is not None
                and self._engine.index is not None
                and num_shards != self._engine.index.num_shards):
            shards = self._engine.index.num_shards
            self._engine.close()
            raise ConfigError(
                f"this source bakes its shard layout in ({shards} "
                f"shards); drop num_shards or pass {shards}")
        self.scheme = self._scheme_of(kind, payload)
        self.updateable = kind == "updateable"

    @staticmethod
    def _normalize_source(source: Any) -> tuple[str, Any]:
        from repro.oracle.api import BuiltSketches
        from repro.service.updates import UpdateableIndex

        if isinstance(source, UpdateableIndex):
            return "updateable", source
        if isinstance(source, BuiltSketches):
            return "sketches", source.sketches
        if isinstance(source, (list, tuple)):
            return "sketches", list(source)
        if hasattr(source, "plan") and hasattr(source, "estimate_many"):
            return "index", source
        raise ConfigError(
            f"cannot serve a {type(source).__name__}: want a sketch "
            f"list, BuiltSketches, IndexStore, or UpdateableIndex")

    @staticmethod
    def _scheme_of(kind: str, payload: Any) -> Optional[str]:
        if kind == "updateable":
            return payload.scheme
        if kind == "index":
            return scheme_name_of_index(payload)
        return scheme_name_of(payload)

    @classmethod
    def local(cls, source: Any, *, jobs: int = 1, memory: str = "heap",
              pool: str = "proc", num_shards: Optional[int] = None,
              cache_size: int = 65536) -> "OracleServer":
        """A server wrapping today's in-process/pooled
        :class:`~repro.service.workers.ShardServer` — the host behind
        ``inproc://`` (``jobs=1``) and ``proc://`` endpoints.  Identical
        to the constructor; the name states the topology."""
        return cls(source, jobs=jobs, memory=memory, pool=pool,
                   num_shards=num_shards, cache_size=cache_size)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._engine.n

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    @property
    def num_shards(self) -> int:
        index = self._engine.index
        return index.num_shards if index is not None else 1

    @property
    def jobs(self) -> int:
        """Effective worker count (clamped to the shard count)."""
        return self._engine.jobs

    def client(self, endpoint: str = "inproc://",
               owns_server: bool = False) -> "OracleClient":
        """An in-process session over this server (no serialization, no
        socket — the ``inproc``/``proc`` data path)."""
        return OracleClient(_LocalTransport(self, owns_server=owns_server),
                            endpoint=endpoint)

    def apply_updates(self, changes) -> UpdateReport:
        """Apply an edge-change batch to the hosted
        :class:`~repro.service.updates.UpdateableIndex`, hot-swap the
        epoch (in-flight batches finish on the epoch they started on),
        and push an epoch-bump frame to every connected TCP client.

        :raises ConfigError: when the server hosts a static source.
        """
        with self._apply_lock:
            t0 = time.perf_counter()
            report = self._engine.apply_updates(changes)
            if report.mode != "noop":
                self._swap_count += 1
                self._swap_seconds_last = time.perf_counter() - t0
                self._swap_seconds_total += self._swap_seconds_last
        if report.mode != "noop":
            self._broadcast({"kind": "epoch", "epoch": report.epoch})
        return report

    def stats(self) -> dict:
        """A JSON-ready snapshot: size, scheme, epoch, worker/memory
        configuration, cache counters, cumulative phase timings, and the
        number of live TCP connections."""
        engine = self._engine
        cache = engine.stats
        with self._conn_lock:
            connections = len(self._conns)
        return {
            "n": engine.n,
            "scheme": self.scheme,
            "epoch": engine.epoch,
            "updateable": self.updateable,
            "shards": self.num_shards,
            "jobs": engine.jobs,
            "memory": engine.memory,
            "pool": engine.pool,
            "cache_size": engine.cache_size,
            "cache": {"hits": cache.hits, "misses": cache.misses,
                      "evictions": cache.evictions},
            "phases": engine.phase_timings(),
            "handlers": self._handler_count,
            "connections": connections,
            "swaps": {"count": self._swap_count,
                      "seconds_total": self._swap_seconds_total,
                      "seconds_last": self._swap_seconds_last},
        }

    # ------------------------------------------------------------------
    # the TCP listener (selectors event loop + handler pool)
    # ------------------------------------------------------------------
    def serve(self, addr: str = "127.0.0.1:0", *, block: bool = True,
              backlog: int = 128,
              handlers: Optional[int] = None) -> tuple[str, int]:
        """Listen for frame-protocol clients on ``addr`` (``host:port``;
        port ``0`` picks a free one).

        One :mod:`selectors` event loop owns every socket — accepts,
        frame reassembly, reply flushing — and decoded requests fan out
        across a pool of ``handlers`` threads (default: sized to the
        engine, ``max(2, jobs)``), so many concurrent sessions multiplex
        over a fixed thread count instead of a thread per connection.

        Returns the bound ``(host, port)``.  With ``block=True`` (the
        daemon mode ``python -m repro serve`` runs) the calling thread
        runs the event loop until :meth:`close`; ``block=False`` runs it
        on a background thread and returns immediately — the in-test
        topology.
        """
        if self._closed:
            raise ConfigError("server is closed")
        if self._listener is not None:
            raise ConfigError(
                f"server is already listening on "
                f"{self.address[0]}:{self.address[1]}")
        host, port = _parse_addr(addr)
        if handlers is None:
            handlers = max(2, self.jobs)
        if handlers < 1:
            raise ConfigError(f"handlers must be >= 1, got {handlers}")
        listener = socket.create_server((host, port), backlog=backlog)
        listener.setblocking(False)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        self._handler_count = int(handlers)
        self._max_pending = max(4, 2 * self._handler_count)
        self._handlers = ThreadPoolExecutor(
            max_workers=self._handler_count,
            thread_name_prefix="oracle-handler")
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        if block:
            try:
                self._event_loop()
            finally:
                self.close()
        else:
            self._io_thread = threading.Thread(
                target=self._event_loop, daemon=True, name="oracle-io")
            self._io_thread.start()
        return self.address

    def wait(self) -> None:
        """Block until the background event loop exits (daemon use)."""
        if self._io_thread is not None:
            self._io_thread.join()

    def _event_loop(self) -> None:
        """The IO loop: one thread multiplexing the listener, the wake
        pipe, and every connection through the selector."""
        try:
            while not self._closed:
                try:
                    events = self._selector.select(timeout=0.5)
                except OSError:  # selector torn down under us
                    return
                for key, mask in events:
                    tag = key.data
                    if tag == "wake":
                        self._drain_wake()
                    elif tag == "accept":
                        self._accept_ready()
                    else:
                        if mask & selectors.EVENT_WRITE:
                            self._flush(tag)
                        if (mask & selectors.EVENT_READ) and not tag.closed:
                            self._read_ready(tag)
                self._apply_dirty()
        finally:
            self._teardown_io()

    def _wake(self) -> None:
        """Nudge the event loop from another thread (handler reply,
        broadcast, close).  A full pipe means a wake is already
        pending — that is exactly the desired state."""
        sock = self._wake_w
        if sock is None:
            return
        try:
            sock.send(b"\0")
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass  # loop already torn down

    def _drain_wake(self) -> None:
        sock = self._wake_r
        while sock is not None:
            try:
                if not sock.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:  # listener closed — clean shutdown
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - exotic stacks
                pass
            conn = _Connection(sock)
            # hello is queued before the connection becomes visible to
            # broadcasts, so it is always the first frame on the wire
            # (and already carries the current epoch)
            self._queue_frame(conn, {
                "kind": "hello", "v": PROTOCOL_VERSION, "n": self.n,
                "scheme": self.scheme, "epoch": self.epoch,
                "shards": self.num_shards, "updateable": self.updateable,
                "shard_range": (list(self.shard_range)
                                if self.shard_range else None)})
            with self._conn_lock:
                self._conns.add(conn)
            self._update_interest(conn)

    def _read_ready(self, conn: _Connection) -> None:
        try:
            while True:
                try:
                    chunk = conn.sock.recv(1 << 16)
                except (BlockingIOError, InterruptedError):
                    break
                if not chunk:  # EOF: client went away
                    self._drop(conn)
                    return
                conn.inbuf += chunk
        except OSError:
            self._drop(conn)
            return
        if self._parse_frames(conn):
            self._update_interest(conn)

    def _parse_frames(self, conn: _Connection) -> bool:
        """Dispatch every complete frame in ``conn.inbuf`` to the
        handler pool; returns False when the connection was dropped.
        Stops dispatching (bytes stay buffered) while the connection is
        backpressured."""
        buf = conn.inbuf
        while True:
            if self._paused(conn) or len(buf) < 8:
                return True
            frame_len, head_len = _FRAME_PREFIX.unpack_from(buf)
            if not (4 + head_len <= frame_len <= MAX_FRAME_BYTES):
                self._drop(conn)
                return False
            end = 4 + frame_len
            if len(buf) < end:
                return True
            try:
                head = json.loads(bytes(buf[8:8 + head_len]).decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self._drop(conn)
                return False
            if not isinstance(head, dict):
                # valid JSON but not an object ("[1,2]", "null", ...):
                # treat as corrupt rather than let head.get() blow up
                # the shared IO loop
                self._drop(conn)
                return False
            body = bytes(buf[8 + head_len:end])
            del buf[:end]
            if head.get("kind") == "close":
                self._drop(conn)
                return False
            with conn.lock:
                conn.inflight += 1
            self._handlers.submit(self._run_handler, conn, head, body)

    def _run_handler(self, conn: _Connection, head: dict,
                     body: bytes) -> None:
        """Handler-pool entry: compute one reply and queue it.  Replies
        may be queued out of request order — the echoed ``id`` is the
        client's matching key."""
        rid = head.get("id")
        try:
            reply_head, reply_body = self._handle(head, body)
        except Exception as exc:
            reply_head, reply_body = _error_to_frame(exc), b""
        if rid is not None:
            reply_head["id"] = rid
        with conn.lock:
            conn.inflight -= 1
        self._enqueue(conn, reply_head, reply_body)

    def _paused(self, conn: _Connection) -> bool:
        with conn.lock:
            return (len(conn.outbuf) >= _OUTBUF_HIGH
                    or conn.inflight >= self._max_pending)

    def _flush(self, conn: _Connection) -> None:
        err = False
        with conn.lock:
            if conn.outbuf:
                try:
                    sent = conn.sock.send(conn.outbuf)
                    del conn.outbuf[:sent]
                except (BlockingIOError, InterruptedError):
                    pass
                except OSError:
                    err = True
        if err:
            self._drop(conn)
            return
        # a drained outbuf can lift backpressure, and the client may be
        # blocked waiting on answers with its whole window already sent
        # — so frames parked in inbuf while the connection was paused
        # must resume from here, not only from handler completions
        if conn.inbuf and not conn.closed and not self._paused(conn):
            if not self._parse_frames(conn):
                return  # dropped while dispatching
        self._update_interest(conn)

    def _update_interest(self, conn: _Connection) -> None:
        """Recompute the selector interest set from the connection's
        state (IO-loop thread only): read unless backpressured, write
        while output is queued, nothing while fully stalled (a handler
        completion re-flags the connection through the dirty set)."""
        if conn.closed:
            return
        with conn.lock:
            has_out = bool(conn.outbuf)
            paused = (len(conn.outbuf) >= _OUTBUF_HIGH
                      or conn.inflight >= self._max_pending)
        events = 0
        if not paused:
            events |= selectors.EVENT_READ
        if has_out:
            events |= selectors.EVENT_WRITE
        try:
            if events and conn.registered:
                self._selector.modify(conn.sock, events, conn)
            elif events:
                self._selector.register(conn.sock, events, conn)
                conn.registered = True
            elif conn.registered:
                self._selector.unregister(conn.sock)
                conn.registered = False
        except (KeyError, ValueError, OSError):
            self._drop(conn)

    def _apply_dirty(self) -> None:
        """Pick up connections flagged by handler threads: flush their
        fresh output (:meth:`_flush` also resumes dispatching any frames
        that were parked in ``inbuf`` while the connection was
        backpressured)."""
        with self._dirty_lock:
            dirty, self._dirty = self._dirty, set()
        for conn in dirty:
            if not conn.closed:
                self._flush(conn)

    def _queue_frame(self, conn: _Connection, head: dict,
                     body: bytes = b"") -> None:
        frame = _frame_bytes(head, body)
        with conn.lock:
            if conn.closed:
                return  # reply to a vanished client: drop silently
            conn.outbuf += frame

    def _enqueue(self, conn: _Connection, head: dict,
                 body: bytes = b"") -> None:
        """Thread-safe reply/push entry point: queue the frame and nudge
        the event loop to flush it."""
        self._queue_frame(conn, head, body)
        with self._dirty_lock:
            self._dirty.add(conn)
        self._wake()

    def _drop(self, conn: _Connection) -> None:
        """Tear one connection down (IO-loop thread only)."""
        with conn.lock:
            conn.closed = True
            conn.outbuf.clear()
        if conn.registered:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):  # pragma: no cover
                pass
            conn.registered = False
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        with self._conn_lock:
            self._conns.discard(conn)

    def _teardown_io(self) -> None:
        """Release every IO-loop resource (idempotent; runs in the loop
        thread's ``finally`` and again from :meth:`close` as a backstop
        for a loop that never ran)."""
        with self._conn_lock:
            conns, self._conns = list(self._conns), set()
        for conn in conns:
            with conn.lock:
                conn.closed = True
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        selector, self._selector = self._selector, None
        if selector is not None:
            try:
                selector.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for name in ("_wake_r", "_wake_w"):
            sock = getattr(self, name)
            setattr(self, name, None)
            if sock is not None:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def _handle(self, head: dict, body: bytes) -> tuple[dict, bytes]:
        kind = head.get("kind")
        if kind == "query":
            if self.shard_range is not None:
                lo, hi = self.shard_range
                raise ConfigError(
                    f"this host serves landmark shards [{lo}, {hi}) of "
                    f"{self.num_shards} — whole-batch queries need a "
                    f"cluster:// session combining the fleet's partials")
            pairs = np.asarray(tree_from_bytes(body))
            if self._engine.serial_dispatch:
                # shared ring slots rotate assuming one batch in flight:
                # only this dispatch mode serializes concurrent handlers
                with self._query_lock:
                    answers, epoch = self._engine.dist_many_pinned(pairs)
            else:
                answers, epoch = self._engine.dist_many_pinned(pairs)
            return ({"kind": "result", "epoch": int(epoch)},
                    tree_to_bytes(answers))
        if kind == "probe":
            shards = [int(s) for s in head.get("shards", ())]
            lo, hi = self.shard_range or (0, self.num_shards)
            for s in shards:
                if not (lo <= s < hi):
                    raise ConfigError(
                        f"shard {s} is not served here (this host owns "
                        f"[{lo}, {hi}) of {self.num_shards})")
            requests = tree_from_bytes(body)
            if len(requests) != len(shards):
                raise ConfigError(
                    f"probe names {len(shards)} shards but carries "
                    f"{len(requests)} requests")
            responses, epoch = self._engine.shard_answers_pinned(
                shards, requests)
            return ({"kind": "probe_result", "epoch": int(epoch)},
                    tree_to_bytes(responses))
        if kind == "apply":
            from repro.oracle.serialization import change_from_dict

            changes = [change_from_dict(item)
                       for item in head.get("changes", ())]
            report = self.apply_updates(changes)
            return {"kind": "report", "report": report.as_dict()}, b""
        if kind == "stats":
            return {"kind": "stats_reply", "stats": self.stats()}, b""
        if kind == "fetch_index":
            from repro.oracle.serialization import index_binary_bytes

            # snapshot (store, epoch) atomically — a concurrent hot
            # swap must not label the old epoch's bytes with the new
            # epoch number; the old store is immutable, so serializing
            # it outside any lock is safe
            index, epoch = self._engine.index_snapshot()
            if index is None:  # pragma: no cover - generic sketch set
                raise ConfigError("server has no index to fetch")
            return ({"kind": "index_blob", "epoch": int(epoch)},
                    index_binary_bytes(index))
        raise ConfigError(f"unknown frame kind {kind!r}")

    def _broadcast(self, head: dict) -> None:
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            self._enqueue(conn, head)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop listening, drop every connection, join the serving
        threads (event loop and handler pool, bounded deadline), and
        shut the hosted engine down — pool, shared segments, scratch
        files (idempotent)."""
        self._closed = True
        self._wake()
        thread, self._io_thread = self._io_thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        self._teardown_io()
        handlers, self._handlers = self._handlers, None
        if handlers is not None:
            handlers.shutdown(wait=True, cancel_futures=True)
        self._engine.close()

    def __enter__(self) -> "OracleServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = (f"tcp://{self.address[0]}:{self.address[1]}"
                 if self.address else "local")
        return (f"OracleServer({self.scheme or '?'}, n={self.n}, "
                f"epoch={self.epoch}, {where})")


# ----------------------------------------------------------------------
# transports (the client side)
# ----------------------------------------------------------------------
@dataclass
class EpochStaleness:
    """Per-session staleness telemetry — the introspection surface the
    scenario harness (and any churn-aware operator) reads.

    A result is **stale** when the epoch that served it
    (``last_result_epoch``) is older than the newest epoch the session
    had observed by consume time — legal under the monotonic-epoch rule
    (an in-flight batch finishes on the epoch it started on), but worth
    measuring: ``window_seconds`` records, per stale result, how long
    the newer epoch had already been visible to this session when the
    old-epoch answer arrived (the *staleness window*).
    """

    results: int = 0
    stale_results: int = 0
    max_epoch_lag: int = 0
    window_seconds: list = field(default_factory=list)
    _first_seen: dict = field(default_factory=dict)

    #: per-session epochs whose first-seen timestamps are retained
    _KEEP = 64

    def note_epoch(self, epoch: int) -> None:
        """The session just observed ``epoch`` (hello, pushed bump, or
        result frame) — timestamp its first sighting."""
        if epoch not in self._first_seen:
            self._first_seen[epoch] = time.perf_counter()
            if len(self._first_seen) > self._KEEP:
                for old in sorted(self._first_seen)[:-self._KEEP]:
                    del self._first_seen[old]

    def note_result(self, result_epoch: int, session_epoch: int) -> None:
        """A result pinned to ``result_epoch`` was consumed while the
        session knew about ``session_epoch``."""
        self.results += 1
        lag = session_epoch - result_epoch
        if lag <= 0:
            return
        self.stale_results += 1
        self.max_epoch_lag = max(self.max_epoch_lag, lag)
        newer = [t for e, t in self._first_seen.items() if e > result_epoch]
        if newer and len(self.window_seconds) < 1 << 16:
            self.window_seconds.append(time.perf_counter() - min(newer))

    def summary(self) -> dict:
        windows = self.window_seconds
        return {"results": self.results,
                "stale_results": self.stale_results,
                "max_epoch_lag": self.max_epoch_lag,
                "window_count": len(windows),
                "window_max_s": max(windows) if windows else 0.0,
                "window_seconds": list(windows)}


class _LocalTransport:
    """In-process binding to an :class:`OracleServer` — the ``inproc``
    and ``proc`` data path (no serialization at all)."""

    name = "local"

    def __init__(self, server: OracleServer, owns_server: bool):
        self._server = server
        self._owns_server = owns_server
        self.staleness = EpochStaleness()
        #: the epoch that served the most recently consumed result — a
        #: batch pinned before a concurrent hot swap keeps naming the
        #: old epoch here even though :attr:`epoch` has moved on
        self.last_result_epoch = server.epoch
        self.staleness.note_epoch(server.epoch)

    @property
    def n(self) -> int:
        return self._server.n

    @property
    def scheme(self) -> Optional[str]:
        return self._server.scheme

    @property
    def epoch(self) -> int:
        return self._server.epoch

    def _note_result(self, epoch: int) -> None:
        self.last_result_epoch = epoch
        live = self._server.epoch
        self.staleness.note_epoch(live)
        self.staleness.note_result(epoch, live)

    def dist_many(self, pairs) -> np.ndarray:
        answers, epoch = self._server._engine.dist_many_pinned(pairs)
        self._note_result(epoch)
        return answers

    def dist_stream(self, batches) -> Iterator[np.ndarray]:
        for answers, epoch in self._server._engine.dist_stream_pinned(
                batches):
            self._note_result(epoch)
            yield answers

    def staleness_stats(self, reset: bool = False) -> dict:
        out = self.staleness.summary()
        if reset:
            self.staleness = EpochStaleness()
            self.staleness.note_epoch(self._server.epoch)
        return out

    def apply_updates(self, changes) -> UpdateReport:
        report = self._server.apply_updates(changes)
        self.staleness.note_epoch(self._server.epoch)
        return report

    def stats(self) -> dict:
        return self._server.stats()

    def fetch_index(self, path: Optional[str]):
        index = self._server._engine.index
        if index is None:
            raise ConfigError("session has no index to fetch")
        if path is not None:
            from repro.oracle.serialization import save_index_binary

            save_index_binary(index, path)
        return index

    def close(self) -> None:
        if self._owns_server:
            self._server.close()


@dataclass
class PipelineStats:
    """Client-side telemetry of the pipelined ``dist_stream`` path.

    ``overlap_seconds`` is the submit-side time (encode + send) spent
    while at least one earlier request was still in flight — the wire
    analogue of :attr:`~repro.service.workers.PhaseTimings.overlap`;
    sequential one-in-flight serving leaves it 0.  ``latencies`` holds
    one submit-to-reply second count per streamed batch (what the E18
    load generator turns into p50/p99)."""

    requests: int = 0
    max_inflight: int = 0
    overlap_seconds: float = 0.0
    latencies: list = field(default_factory=list)

    def summary(self) -> dict:
        return {"requests": self.requests,
                "max_inflight": self.max_inflight,
                "overlap_seconds": self.overlap_seconds}


class _TcpTransport:
    """Frame-protocol client: one socket, multiplexed request/reply
    matched by request id, pushed ``epoch`` frames folded into the
    session state whenever they arrive.

    A mid-frame failure (peer gone, corrupt frame) leaves the byte
    stream unrecoverable, so the transport marks itself **dead**: the
    failing call raises :class:`ConnectionError`, and every later
    request fails fast with the original cause instead of reading
    garbage from a desynchronized stream."""

    name = "tcp"

    def __init__(self, endpoint: Endpoint, timeout: Optional[float] = None,
                 pipeline_depth: int = DEFAULT_PIPELINE_DEPTH):
        if pipeline_depth < 1:
            raise ConfigError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}")
        try:
            self._sock = socket.create_connection(
                (endpoint.host, endpoint.port), timeout=timeout)
        except OSError as exc:
            raise ConfigError(
                f"cannot connect to {endpoint.describe()}: {exc}") from exc
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = False
        self._dead: Optional[str] = None
        self._next_id = 0
        self._replies: dict[int, tuple[dict, bytes]] = {}
        self.pipeline_depth = int(pipeline_depth)
        self.pipeline = PipelineStats()
        self.staleness = EpochStaleness()
        try:
            head, _ = _recv_frame(self._sock)
        except OSError as exc:  # includes socket.timeout on a mute peer
            self._sock.close()
            raise ConfigError(
                f"no hello from {endpoint.describe()}: {exc}") from exc
        if head.get("kind") != "hello":
            self._sock.close()
            raise ConfigError(f"{endpoint.describe()} is not an oracle "
                              f"server (no hello frame)")
        if head.get("v") != PROTOCOL_VERSION:
            self._sock.close()
            raise ConfigError(
                f"protocol version mismatch: server speaks "
                f"{head.get('v')}, client {PROTOCOL_VERSION}")
        self.n = int(head["n"])
        self.scheme = head.get("scheme")
        self.epoch = int(head["epoch"])
        #: the epoch that served the most recently consumed result —
        #: the per-batch pin.  ``epoch`` itself only moves forward.
        self.last_result_epoch = self.epoch
        self.staleness.note_epoch(self.epoch)
        self.num_shards = int(head["shards"])
        self.updateable = bool(head["updateable"])
        #: ``(lo, hi)`` when the host serves only a landmark-shard
        #: subset (a fleet member), else None (a full host)
        raw_range = head.get("shard_range")
        self.shard_range = (None if raw_range is None
                            else (int(raw_range[0]), int(raw_range[1])))
        # the connect timeout must not linger on the session socket: a
        # slow large-batch reply would raise socket.timeout mid-frame
        # and leave the stream misaligned forever
        self._sock.settimeout(None)

    # -- liveness ------------------------------------------------------
    def _check_alive(self) -> None:
        if self._dead is not None:
            raise ConnectionError(
                f"oracle session is dead ({self._dead}); open a new "
                f"connection to continue")

    def _mark_dead(self, why: str) -> None:
        if self._dead is None:
            self._dead = why
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # -- epoch bookkeeping ---------------------------------------------
    def _fold_epoch(self, epoch: int) -> None:
        """A pushed epoch-bump frame: the session clock only moves
        forward, and the staleness telemetry timestamps the sighting."""
        self.epoch = max(self.epoch, epoch)
        self.staleness.note_epoch(self.epoch)

    def _note_result_epoch(self, epoch: int) -> None:
        """A result frame was consumed: re-pin ``last_result_epoch`` to
        the epoch that actually served it (which may be older than the
        session clock — the monotonic-epoch rule) and account the
        staleness window."""
        self.last_result_epoch = epoch
        self.epoch = max(self.epoch, epoch)
        self.staleness.note_epoch(self.epoch)
        self.staleness.note_result(epoch, self.epoch)

    # -- the multiplexed request/reply core ----------------------------
    def _post(self, head: dict, body: bytes = b"") -> int:
        """Send one request frame; returns its id (collect the reply
        with :meth:`_await`)."""
        with self._send_lock:
            self._check_alive()
            rid = self._next_id
            self._next_id += 1
            try:
                _send_frame(self._sock, dict(head, id=rid), body)
            except OSError as exc:
                self._mark_dead(f"send failed: {exc}")
                raise ConnectionError(
                    f"oracle connection lost: {exc}") from None
            return rid

    def _post_stream(self, head: dict, body: bytes = b"") -> int:
        """:meth:`_post` for the pipelined window: while the request
        frame is only partially written, consume any replies the server
        has already queued.  A plain ``sendall`` here can deadlock —
        with large frames the server may be write-backpressured (its
        read paused) while this side blocks mid-send, both directions'
        kernel buffers full; draining the receive side breaks the
        cycle."""
        with self._send_lock:
            self._check_alive()
            rid = self._next_id
            self._next_id += 1
            data = memoryview(_frame_bytes(dict(head, id=rid), body))
            try:
                while data:
                    rlist, wlist, _ = select.select(
                        [self._sock], [self._sock], [])
                    drained = self._drain_ready() if rlist else False
                    if wlist:
                        data = data[self._sock.send(data):]
                    elif not drained:
                        # another thread owns the receive side and is
                        # already reading; just wait for writability
                        select.select([], [self._sock], [], 0.05)
            except (OSError, ValueError) as exc:
                self._mark_dead(f"send failed: {exc}")
                raise ConnectionError(
                    f"oracle connection lost: {exc}") from None
            return rid

    def _drain_ready(self) -> bool:
        """Stash every reply frame the kernel has already delivered
        (non-blocking readiness check, so a quiet socket costs nothing);
        pushed epoch bumps fold into the session on the way.  Returns
        False without reading when another thread holds the receive
        side — that thread is draining already."""
        if not self._recv_lock.acquire(blocking=False):
            return False
        try:
            while self._dead is None:
                ready, _, _ = select.select([self._sock], [], [], 0.0)
                if not ready:
                    return True
                head, payload = _recv_frame(self._sock)
                if "id" not in head:
                    if head.get("kind") == "epoch":
                        self._fold_epoch(int(head["epoch"]))
                    continue
                self._replies[head["id"]] = (head, payload)
            return True
        except (ConnectionError, OSError, ValueError) as exc:
            self._mark_dead(f"receive failed: {exc}")
            return True
        finally:
            self._recv_lock.release()

    def _await(self, rid: int) -> tuple[dict, bytes]:
        """Collect the reply for ``rid``, folding pushed epoch bumps
        into the session and stashing out-of-order replies for their
        own awaiters."""
        while True:
            hit = None
            with self._recv_lock:
                hit = self._replies.pop(rid, None)
                if hit is None:
                    self._check_alive()
                    try:
                        head, payload = _recv_frame(self._sock)
                    except (ConnectionError, OSError) as exc:
                        self._mark_dead(f"receive failed: {exc}")
                        raise ConnectionError(
                            f"oracle connection lost: {exc}") from None
                    if "id" not in head:
                        if head.get("kind") == "epoch":
                            self._fold_epoch(int(head["epoch"]))
                        continue  # pushed frame; keep reading
                    if head["id"] != rid:
                        self._replies[head["id"]] = (head, payload)
                        continue
                    hit = (head, payload)
            head, payload = hit
            if head.get("kind") == "error":
                raise _error_from_frame(head)
            return head, payload

    def _request(self, head: dict, body: bytes = b"") -> tuple[dict, bytes]:
        return self._await(self._post(head, body))

    # -- fleet probes (the cluster client's fan-out primitive) ---------
    def post_probe(self, shards: Iterable[int], body: bytes) -> int:
        """Send one ``probe`` frame (a pre-encoded tuple of per-shard
        requests for the named shards); returns its request id.  Uses
        the deadlock-free interleaved send, so probe windows pipeline
        exactly like :meth:`dist_stream` batches."""
        return self._post_stream({"kind": "probe", "shards": list(shards)},
                                 body)

    def await_probe(self, rid: int) -> tuple[Any, int]:
        """Collect one probe reply — ``(responses, epoch)``, the
        responses a tuple aligned with the posted shard list."""
        head, payload = self._await(rid)
        if head.get("kind") != "probe_result":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        return tree_from_bytes(payload), int(head["epoch"])

    # -- the session surface -------------------------------------------
    def dist_many(self, pairs) -> np.ndarray:
        arr = parse_pair_array(pairs)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        head, body = self._request({"kind": "query"}, tree_to_bytes(arr))
        if head.get("kind") != "result":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        # the batch stays pinned to the epoch that served it
        # (last_result_epoch); the session epoch only moves forward —
        # an old-epoch reply consumed after a pushed bump must not roll
        # it back
        self._note_result_epoch(int(head["epoch"]))
        return np.array(tree_from_bytes(body), dtype=np.float64)

    def dist_stream(self, batches) -> Iterator[np.ndarray]:
        """Pipelined streaming: keep up to ``pipeline_depth`` batches
        submitted, yield answers in submit order (replies may arrive out
        of order; the id window reorders them).  Batch *k+1*'s encode
        and round-trip overlap batch *k*'s server-side work — the PR 5
        double-buffering, extended over the wire."""
        stats = self.pipeline
        window: deque = deque()  # (rid | None for empty batch, t_submit)
        feed = iter(batches)
        exhausted = False
        try:
            while True:
                while not exhausted and len(window) < self.pipeline_depth:
                    try:
                        pairs = next(feed)
                    except StopIteration:
                        exhausted = True
                        break
                    inflight = sum(1 for r, _ in window if r is not None)
                    t0 = time.perf_counter()
                    arr = parse_pair_array(pairs)
                    if arr.size == 0:
                        window.append((None, t0))
                        continue
                    rid = self._post_stream({"kind": "query"},
                                            tree_to_bytes(arr))
                    submit_cost = time.perf_counter() - t0
                    window.append((rid, t0))
                    stats.requests += 1
                    stats.max_inflight = max(stats.max_inflight,
                                             inflight + 1)
                    if inflight:
                        # encode+send seconds hidden behind requests
                        # already in flight: the pipelining win
                        stats.overlap_seconds += submit_cost
                if not window:
                    return
                rid, t0 = window.popleft()
                if rid is None:
                    yield np.empty(0, dtype=np.float64)
                    continue
                head, body = self._await(rid)
                stats.latencies.append(time.perf_counter() - t0)
                self._note_result_epoch(int(head["epoch"]))
                yield np.array(tree_from_bytes(body), dtype=np.float64)
        finally:
            # abandoned (or errored) mid-stream: collect the in-flight
            # replies so the session is clean for the next request
            for rid, _ in window:
                if rid is not None:
                    try:
                        self._await(rid)
                    except (ReproError, ConnectionError):
                        pass

    def pipeline_stats(self, reset: bool = False) -> dict:
        """The pipelined-stream telemetry (and per-batch latencies)
        accumulated so far; ``reset=True`` starts a fresh window."""
        stats = self.pipeline
        out = dict(stats.summary(), depth=self.pipeline_depth,
                   latencies=list(stats.latencies))
        if reset:
            self.pipeline = PipelineStats()
        return out

    def staleness_stats(self, reset: bool = False) -> dict:
        """The per-session epoch-staleness telemetry accumulated so
        far; ``reset=True`` starts a fresh window (the session clock
        itself is untouched)."""
        out = self.staleness.summary()
        if reset:
            self.staleness = EpochStaleness()
            self.staleness.note_epoch(self.epoch)
        return out

    def apply_updates(self, changes) -> UpdateReport:
        from repro.oracle.serialization import change_to_dict

        head, _ = self._request({
            "kind": "apply",
            "changes": [change_to_dict(c) for c in changes]})
        if head.get("kind") != "report":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        # tolerant construction: a newer server may report fields this
        # client does not know (version skew must not crash the session)
        report = UpdateReport.from_wire(head["report"])
        self._fold_epoch(report.epoch)
        return report

    def stats(self) -> dict:
        head, _ = self._request({"kind": "stats"})
        if head.get("kind") != "stats_reply":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        stats = head["stats"]
        stats["pipeline"] = dict(self.pipeline.summary(),
                                 depth=self.pipeline_depth)
        return stats

    def fetch_index(self, path: Optional[str]):
        return self.fetch_index_pinned(path)[0]

    def fetch_index_pinned(self, path: Optional[str]):
        """:meth:`fetch_index` plus the epoch that produced the blob —
        ``(store, epoch)`` (the pair the server snapshotted atomically).
        The cluster client uses the epoch to keep its routing store in
        lockstep with the fleet."""
        from repro.oracle.serialization import load_index_binary

        head, blob = self._request({"kind": "fetch_index"})
        if head.get("kind") != "index_blob":
            raise ReproError(f"unexpected reply frame {head.get('kind')!r}")
        epoch = int(head["epoch"])
        if path is None:
            # no attach target: materialize in memory via a scratch file
            fd, tmp = tempfile.mkstemp(prefix="repro-fetch-", suffix=".rpix")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                return load_index_binary(tmp, backing="heap"), epoch
            finally:
                os.unlink(tmp)
        with open(path, "wb") as fh:
            fh.write(blob)
        return load_index_binary(path, backing="mmap"), epoch

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._dead is None:
            try:
                _send_frame(self._sock, {"kind": "close"})
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ----------------------------------------------------------------------
# the session handle
# ----------------------------------------------------------------------
class OracleClient:
    """A serving session — the one handle callers hold, whatever the
    transport behind it.

    Obtained from :func:`connect` (or :meth:`OracleServer.client`).
    ``dist`` / ``dist_many`` / ``dist_stream`` answers are bit-identical
    across transports, including :class:`~repro.errors.QueryError`
    parity on disconnected graphs; :meth:`apply_updates` hot-swaps the
    served epoch with zero downtime wherever the session's server hosts
    an :class:`~repro.service.updates.UpdateableIndex`.  Sessions are
    context managers; :meth:`close` releases whatever the transport
    holds (an owned local server, or the socket).
    """

    def __init__(self, transport, endpoint: str):
        self._transport = transport
        self.endpoint = endpoint

    # -- identity ------------------------------------------------------
    @property
    def transport(self) -> str:
        """``"local"`` (inproc/proc) or ``"tcp"``."""
        return self._transport.name

    @property
    def n(self) -> int:
        """Node count of the served index."""
        return self._transport.n

    @property
    def scheme(self) -> Optional[str]:
        """Registry name of the served scheme (``"tz"`` …)."""
        return self._transport.scheme

    @property
    def epoch(self) -> int:
        """The newest epoch this session has observed — advanced (never
        rolled back) by result frames and server-pushed epoch bumps."""
        return self._transport.epoch

    @property
    def last_result_epoch(self) -> int:
        """The epoch that served the most recently consumed
        ``dist`` / ``dist_many`` / ``dist_stream`` answer — the
        per-batch pin.  Unlike :attr:`epoch`, this can name an older
        epoch when a reply that was in flight across a hot swap is
        consumed after the pushed bump."""
        return self._transport.last_result_epoch

    # -- queries -------------------------------------------------------
    def dist(self, u: int, v: int) -> float:
        """One distance estimate."""
        return float(self.dist_many([(u, v)])[0])

    def dist_many(self, pairs: Iterable[tuple[int, int]] | np.ndarray,
                  ) -> np.ndarray:
        """Estimates for a batch of ``(u, v)`` pairs, in input order —
        one epoch answers the whole batch."""
        return self._transport.dist_many(pairs)

    def dist_stream(self, batches: Iterable) -> Iterator[np.ndarray]:
        """Pipelined serving over an iterable of pair batches (the
        double-buffered dispatch on pooled local transports; a
        ``pipeline_depth``-deep request-id window over tcp); yields one
        answer array per batch, in order, bit-identical to per-batch
        :meth:`dist_many` on a cold cache."""
        return self._transport.dist_stream(batches)

    def pipeline_stats(self, reset: bool = False) -> Optional[dict]:
        """Client-side pipelining telemetry of a tcp session —
        ``requests`` / ``max_inflight`` / ``overlap_seconds`` /
        per-batch ``latencies`` of the :meth:`dist_stream` window
        (``None`` for local transports, whose overlap shows up in the
        server's phase timings instead)."""
        fn = getattr(self._transport, "pipeline_stats", None)
        return fn(reset) if fn is not None else None

    def staleness_stats(self, reset: bool = False) -> dict:
        """Per-session epoch-staleness telemetry (every transport):
        how many consumed results were pinned to an epoch older than
        the newest one the session had observed (legal under the
        monotonic-epoch rule), the worst epoch lag, and per stale
        result the seconds the newer epoch had already been visible
        (the *staleness window*)."""
        return self._transport.staleness_stats(reset)

    # -- control plane -------------------------------------------------
    def apply_updates(self, changes) -> UpdateReport:
        """Apply an edge-change batch to the session's server and
        hot-swap its epoch (propagated to every other connected client
        without a reconnect).  Needs an updateable server."""
        return self._transport.apply_updates(changes)

    def stats(self) -> dict:
        """Server-side statistics plus this session's transport and
        endpoint."""
        return {"transport": self.transport, "endpoint": self.endpoint,
                **self._transport.stats()}

    def fetch_index(self, path: Optional[str] = None):
        """The served epoch's pre-built store.

        Local sessions return the live store.  TCP sessions download
        the ``RPIX`` binary container through the session's own channel:
        with ``path`` the blob is written there and attached
        ``backing="mmap"`` — byte-identical to a ``repro build --format
        binary`` artifact, zero blob parsing — which is how a remote
        worker box warms up; without ``path`` it is materialized in
        memory.
        """
        return self._transport.fetch_index(path)

    def close(self) -> None:
        """End the session (idempotent via the transport)."""
        self._transport.close()

    def __enter__(self) -> "OracleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OracleClient({self.endpoint!r}, n={self.n}, "
                f"scheme={self.scheme}, epoch={self.epoch})")


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------
def connect(spec: str, source: Any = None, *,
            cache_size: Optional[int] = None,
            timeout: Optional[float] = None,
            pipeline_depth: Optional[int] = None) -> OracleClient:
    """Open a serving session on an endpoint spec — the one front door
    of the serving layer.

    * ``connect("inproc://", source)`` — everything in this process,
      ``jobs=1``, heap memory (options: ``memory`` / ``shards`` /
      ``cache``);
    * ``connect("proc://jobs=4;memory=shared", source)`` — a local
      worker pool behind the landmark shards (``jobs`` defaults to the
      CPU count, ``memory`` to ``shared``, ``shards`` to ``jobs``);
      ``pool=thread`` runs the shards on a GIL-releasing thread pool
      instead of worker processes — no pickling, no rings, no segment
      attach (``memory`` then defaults to ``heap``: nothing needs to
      move);
    * ``connect("tcp://host:port")`` — a remote
      :class:`OracleServer`; no ``source`` (the server owns the index);
    * ``connect("cluster://h1:p1,h2:p2")`` — a fleet of
      :class:`OracleServer` hosts each owning a landmark-shard range
      (``repro serve --shard-range``): batches are planned client-side,
      probes fan out per host, and the partials are combined by the
      store's ``finish`` — answers bit-identical to one full host.

    ``source`` for local transports: a sketch list,
    :class:`~repro.oracle.api.BuiltSketches`, pre-built store, or
    :class:`~repro.service.updates.UpdateableIndex` (which enables
    :meth:`OracleClient.apply_updates`).  ``cache_size`` overrides the
    spec's ``cache`` option; ``timeout`` bounds the TCP connect +
    handshake (it is cleared once the session is up, so a slow
    large-batch reply can never desync the stream); ``pipeline_depth``
    sets how many ``dist_stream`` batches a tcp session keeps in flight
    (default 4, minimum 1).

    :raises ConfigError: on a bad spec, a missing/forbidden ``source``,
        or an unreachable server.
    """
    endpoint = parse_endpoint(spec)
    if endpoint.transport == "cluster":
        from repro.service.cluster import ClusterClient

        if source is not None:
            raise ConfigError(
                "a cluster:// session carries no data — the fleet owns "
                "the index (drop source=)")
        if cache_size is not None:
            raise ConfigError(
                "cache_size is a server-side knob for cluster:// sessions")
        depth = (DEFAULT_PIPELINE_DEPTH if pipeline_depth is None
                 else pipeline_depth)
        return OracleClient(
            ClusterClient(endpoint.options["hosts"], timeout=timeout,
                          pipeline_depth=depth),
            endpoint=endpoint.describe())
    if endpoint.transport == "tcp":
        if source is not None:
            raise ConfigError(
                "a tcp:// session carries no data — the server owns the "
                "index (drop source=)")
        if cache_size is not None:
            raise ConfigError(
                "cache_size is a server-side knob for tcp:// sessions")
        depth = (DEFAULT_PIPELINE_DEPTH if pipeline_depth is None
                 else pipeline_depth)
        return OracleClient(
            _TcpTransport(endpoint, timeout=timeout, pipeline_depth=depth),
            endpoint=endpoint.describe())
    if pipeline_depth is not None:
        raise ConfigError(
            "pipeline_depth is a tcp:// session knob (local transports "
            "pipeline in the engine's double-buffered dispatch)")
    if source is None:
        raise ConfigError(
            f"{endpoint.transport}:// serves in this process and needs "
            f"source= (a sketch list, BuiltSketches, IndexStore, or "
            f"UpdateableIndex)")
    options = dict(endpoint.options)
    # an explicit shards= option is enforced; otherwise OracleServer
    # defaults sketch sources to one shard per worker and leaves
    # pre-built sources on their baked layout
    shards = options.get("shards")
    pool = "proc"
    if endpoint.transport == "inproc":
        jobs = 1
        memory = options.get("memory", "heap")
    else:
        from repro.service.parallel import default_jobs

        jobs = options.get("jobs")
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        pool = options.get("pool", "proc")
        # process workers want the zero-copy plane; the thread plane
        # shares the address space, so nothing needs to move
        memory = options.get("memory",
                             "shared" if pool == "proc" else "heap")
    cache = cache_size if cache_size is not None \
        else options.get("cache", 65536)
    server = OracleServer.local(source, jobs=jobs, memory=memory, pool=pool,
                                num_shards=shards, cache_size=cache)
    return server.client(endpoint=endpoint.describe(), owns_server=True)
