"""The pre-indexed sketch store behind the batched query engine.

:class:`TZIndex` flattens a per-node :class:`~repro.tz.sketch.TZSketch` set
into NumPy arrays so that a batch of Q queries costs one vectorized pass
instead of Q dict-intersection loops:

* ``pivot_ids`` / ``pivot_dists`` — dense ``(n, k)`` tables of the pivot
  entries ``p_i(u), d(u, p_i(u))``.
* a **dense top-level table** — by Lemma 3.2's backstop, ``B_{k-1}(v)``
  contains *all* of ``A_{k-1}`` for every ``v`` (the level-``k`` threshold
  is infinite), so the level-``k-1`` bunch entries form a complete
  ``n x |A_{k-1}|`` distance matrix; a top-level probe is a plain array
  gather instead of a search.
* per-shard **landmark tables** for the sub-top levels — every remaining
  bunch entry ``w ∈ B_i(u)``, ``i < k-1``, becomes one row
  ``(owner u, landmark w, distance, level)``.  Rows are keyed by the
  composite integer ``u * n + w``, stored sorted (the canonical wire
  order) and mirrored into an open-addressing hash table, so a batch of
  membership probes costs 1-3 vectorized gathers per probe with no
  Python-level loop.

Sharding is by landmark (``w % num_shards``): all entries naming landmark
``w`` live in shard ``w mod S``.  A query batch is routed shard by shard,
which maps directly onto a multi-process serving topology (each shard can
be owned by one worker; the landmark is known *before* the lookup, so the
router needs no sketch data).

The dense split requires that level-``k-1`` entries and sub-top entries
never share a landmark — true for every honest TZ construction, where an
entry's level is the landmark's own hierarchy level.  Hand-crafted sketch
sets violating this are detected at build time and stored fully sharded
(slower, still exact).

The batched estimator reproduces the paper's Lemma 3.2 level scan *exactly*
— including the first-hit-wins order (level ``i`` checks ``p_i(u) ∈ B_i(v)``
before ``p_i(v) ∈ B_i(u)``) and IEEE-754 addition — so batched answers are
bit-identical to :func:`repro.tz.sketch.estimate_distance`, a property the
test suite asserts pair by pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, QueryError
from repro.tz.sketch import TZSketch

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)  # Fibonacci hashing constant


def _compose_keys(owners: np.ndarray, landmarks: np.ndarray,
                  n: np.int64) -> np.ndarray:
    """Composite probe keys ``owner * n + landmark``.

    A negative landmark (the ``INF_KEY`` pivot sentinel -1, possible on
    disconnected graphs) must never match: mapped to -2, which matches
    neither a stored key (>= 0) nor the hash table's -1 empty marker, so
    the probe reports it absent — exactly like ``bunch.get(-1)``.
    """
    return np.where(landmarks < 0, -2, owners * n + landmarks)


def _build_hash(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Open-addressing hash table over composite keys.

    Returns ``(slot_key, slot_idx, mask, shift)``: power-of-two table at
    load factor <= 0.5, empty slots keyed -1.  Probing costs 1-3 gathers —
    beats binary search, whose ~log2(nnz) dependent accesses dominate the
    batched lookup profile.
    """
    size = 1
    while size < max(2, 2 * keys.size):
        size <<= 1
    shift = 64 - size.bit_length() + 1
    slot_key = np.full(size, -1, dtype=np.int64)
    slot_idx = np.zeros(size, dtype=np.int64)
    mask = size - 1
    if keys.size:
        cur = (((keys.astype(np.uint64) * _HASH_MULT) >> np.uint64(shift))
               .astype(np.int64) & mask)
        pend = np.arange(keys.size)
        while pend.size:
            slots = cur[pend]
            empty = slot_key[slots] == -1
            # first pending entry per empty slot wins this round
            _, first = np.unique(slots[empty], return_index=True)
            winners = np.flatnonzero(empty)[first]
            slot_key[slots[winners]] = keys[pend[winners]]
            slot_idx[slots[winners]] = pend[winners]
            placed = np.zeros(pend.size, dtype=bool)
            placed[winners] = True
            pend = pend[~placed]
            cur[pend] = (cur[pend] + 1) & mask
    return slot_key, slot_idx, mask, shift


@dataclass(frozen=True)
class _Shard:
    """One landmark shard: composite-key-sorted bunch entries plus a hash
    table for O(1) batched probes."""

    keys: np.ndarray    # int64, sorted: owner * n + landmark
    dists: np.ndarray   # float64
    levels: np.ndarray  # int64
    slot_key: np.ndarray
    slot_idx: np.ndarray
    mask: int
    shift: int

    def probe(self, keys: np.ndarray) -> np.ndarray:
        """Entry index for each probe key, -1 where absent."""
        cur = (((keys.astype(np.uint64) * _HASH_MULT)
                >> np.uint64(self.shift)).astype(np.int64) & self.mask)
        # unrolled first round: most probes resolve without a collision
        at = self.slot_key[cur]
        hit = at == keys
        pos = np.where(hit, self.slot_idx[cur], -1)
        pend = np.flatnonzero(~hit & (at != -1))
        while pend.size:
            cur[pend] = (cur[pend] + 1) & self.mask
            slots = cur[pend]
            at = self.slot_key[slots]
            hit = at == keys[pend]
            pos[pend[hit]] = self.slot_idx[slots[hit]]
            pend = pend[~hit & (at != -1)]
        return pos


class TZIndex:
    """Flat-array index over a TZ sketch set, built for batched queries.

    Parameters
    ----------
    sketches:
        One :class:`TZSketch` per node, indexed by node ID.
    num_shards:
        Number of landmark shards (``>= 1``).  Answers are independent of
        the shard count; it only changes the physical layout.
    """

    def __init__(self, sketches: Sequence[TZSketch], num_shards: int = 1):
        if not sketches:
            raise ConfigError("cannot index an empty sketch set")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        n = len(sketches)
        k = sketches[0].k
        for s in sketches:
            if not isinstance(s, TZSketch):
                raise ConfigError(
                    f"TZIndex only indexes TZSketch, got {type(s).__name__}")
            if s.k != k:
                raise ConfigError(
                    f"mixed k in sketch set: {s.k} vs {k} (node {s.node})")
        self.n = n
        self.k = k
        self.num_shards = int(num_shards)

        # the dense top block is sound only if no landmark mixes level-(k-1)
        # entries with sub-top entries (honest TZ output never does; see
        # module docstring) — otherwise store everything sharded
        seen_levels: dict[int, set[int]] = {}
        for s in sketches:
            for w, (_, lvl) in s.bunch.items():
                seen_levels.setdefault(w, set()).add(lvl)
        self.dense_top = all(lvls == {k - 1}
                             for lvls in seen_levels.values()
                             if (k - 1) in lvls)
        top_landmarks = (sorted(w for w, lvls in seen_levels.items()
                                if lvls == {k - 1})
                         if self.dense_top else [])
        self.top_ids = np.asarray(top_landmarks, dtype=np.int64)
        #: column of each top landmark in the dense table (-1 elsewhere)
        self.top_col = np.full(n, -1, dtype=np.int64)
        self.top_col[self.top_ids] = np.arange(self.top_ids.size)
        #: dense ``d(v, w)`` for top landmarks; +inf marks a (pathological)
        #: missing entry so the probe correctly reports "not found"
        self.top_dist = np.full((n, self.top_ids.size), np.inf,
                                dtype=np.float64)

        self.pivot_ids = np.empty((n, k), dtype=np.int64)
        self.pivot_dists = np.empty((n, k), dtype=np.float64)
        per_shard: list[list[tuple[int, float, int]]] = [
            [] for _ in range(self.num_shards)]
        # iterating owners in ID order with sorted bunch keys yields
        # composite keys in strictly increasing order within every shard,
        # so the shard arrays come out sorted without an explicit sort
        for u, s in enumerate(sketches):
            for i, (p, d) in enumerate(s.pivots):
                self.pivot_ids[u, i] = p
                self.pivot_dists[u, i] = d
            for w in sorted(s.bunch):
                d, lvl = s.bunch[w]
                if self.top_col[w] >= 0:
                    self.top_dist[u, self.top_col[w]] = d
                else:
                    per_shard[w % self.num_shards].append((u * n + w, d, lvl))
        #: True when any pivot is the INF_KEY sentinel (-1, inf) — only on
        #: disconnected graphs; the batch path then masks sentinel probes
        self.sentinel_pivots = bool((self.pivot_ids < 0).any())
        self.shards: list[_Shard] = []
        for entries in per_shard:
            keys = np.asarray([e[0] for e in entries], dtype=np.int64)
            slot_key, slot_idx, mask, shift = _build_hash(keys)
            self.shards.append(_Shard(
                keys=keys,
                dists=np.asarray([e[1] for e in entries], dtype=np.float64),
                levels=np.asarray([e[2] for e in entries], dtype=np.int64),
                slot_key=slot_key, slot_idx=slot_idx, mask=mask, shift=shift))

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def nnz(self) -> int:
        """Total number of bunch entries (dense top block included)."""
        sub = sum(sh.keys.size for sh in self.shards)
        return sub + int(np.isfinite(self.top_dist).sum())

    def shard_sizes(self) -> list[int]:
        """Sharded (sub-top) entry count per landmark shard."""
        return [sh.keys.size for sh in self.shards]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _probe_keys(self, keys: np.ndarray, landmarks: np.ndarray,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Route flat composite keys through the shard hash tables; returns
        ``(dist, level)`` with level -1 where absent."""
        if self.num_shards == 1:
            sh = self.shards[0]
            if sh.keys.size == 0:
                return (np.zeros(keys.size, dtype=np.float64),
                        np.full(keys.size, -1, dtype=np.int64))
            pos = sh.probe(keys)
            # gather with pos=-1 wrapping to the last entry is safe: the
            # level is forced to -1 there, and a -1 level never matches a
            # scan level, so the garbage distance is never selected
            return (sh.dists[pos],
                    np.where(pos >= 0, sh.levels[pos], -1))
        dist = np.zeros(keys.size, dtype=np.float64)
        level = np.full(keys.size, -1, dtype=np.int64)
        shard_of = landmarks % self.num_shards
        for s in range(self.num_shards):
            idx = np.flatnonzero(shard_of == s)
            sh = self.shards[s]
            if idx.size and sh.keys.size:
                p = sh.probe(keys[idx])
                ok = p >= 0
                dist[idx[ok]] = sh.dists[p[ok]]
                level[idx[ok]] = sh.levels[p[ok]]
        return dist, level

    def lookup(self, owners: np.ndarray, landmarks: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched bunch probe: for each ``(owner, landmark)`` pair return
        ``(dist, level, found)`` — ``found[j]`` is False when the landmark
        is not in the owner's bunch (then dist/level are undefined).

        Owners must be real node ids; a landmark outside ``[0, n)`` (e.g.
        the INF_KEY pivot sentinel -1) is simply never a member.
        """
        owners = np.ascontiguousarray(owners, dtype=np.int64)
        landmarks = np.ascontiguousarray(landmarks, dtype=np.int64)
        m = owners.shape[0]
        if m and (owners.min() < 0 or owners.max() >= self.n):
            raise QueryError(f"owner id out of range [0, {self.n})")
        dist = np.zeros(m, dtype=np.float64)
        level = np.full(m, -1, dtype=np.int64)
        in_range = (landmarks >= 0) & (landmarks < self.n)
        col = np.where(in_range, self.top_col[landmarks % self.n], -1)
        is_top = col >= 0
        ti = np.flatnonzero(is_top)
        if ti.size:
            d = self.top_dist[owners[ti], col[ti]]
            ok = np.isfinite(d)
            oi = ti[ok]
            dist[oi] = d[ok]
            level[oi] = self.k - 1
        rest = np.flatnonzero(~is_top & in_range)
        if rest.size:
            keys = _compose_keys(owners[rest], landmarks[rest],
                                 np.int64(self.n))
            d, lvl = self._probe_keys(keys, landmarks[rest])
            dist[rest] = d
            level[rest] = lvl
        return dist, level, level >= 0

    # ------------------------------------------------------------------
    # the batched Lemma 3.2 query
    # ------------------------------------------------------------------
    def estimate_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched distance estimates, bit-identical to the single-pair
        :func:`~repro.tz.sketch.estimate_distance` with ``method="paper"``.
        """
        us = np.ascontiguousarray(us, dtype=np.int64)
        vs = np.ascontiguousarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise QueryError("estimate_many wants two equal-length 1-d arrays")
        if us.size and (us.min() < 0 or vs.min() < 0
                        or max(int(us.max()), int(vs.max())) >= self.n):
            raise QueryError(f"node id out of range [0, {self.n})")
        q, k, n = us.shape[0], self.k, self.n

        pu = self.pivot_ids[us]      # (q, k)
        pv = self.pivot_ids[vs]
        du = self.pivot_dists[us]
        dv = self.pivot_dists[vs]

        # hit/candidate matrix in Lemma 3.2's exact check order: columns
        # (level 0 dir 1), (level 0 dir 2), ..., (level k-1 dir 1),
        # (level k-1 dir 2); argmax then picks the first hit per row
        hit = np.empty((q, k, 2), dtype=bool)
        cand = np.empty((q, k, 2), dtype=np.float64)

        # the sentinel masks are pure overhead on connected graphs, where
        # no pivot is ever -1 — compose keys directly in that case
        compose = _compose_keys if self.sentinel_pivots else (
            lambda o, lm, nn: o * nn + lm)

        if self.dense_top:
            kk = k - 1
            if kk:  # sub-top levels through the sharded hash tables
                keys = np.empty((q, kk, 2), dtype=np.int64)
                keys[:, :, 0] = compose(vs[:, None], pu[:, :kk], n)
                keys[:, :, 1] = compose(us[:, None], pv[:, :kk], n)
                flat = keys.reshape(-1)
                lms = (flat % n if self.num_shards > 1
                       else flat)  # landmarks only needed for routing
                d, lvl = self._probe_keys(flat, lms)
                hit[:, :kk, :] = (
                    lvl.reshape(q, kk, 2)
                    == np.arange(kk, dtype=np.int64)[None, :, None])
                via = np.empty((q, kk, 2), dtype=np.float64)
                via[:, :, 0] = du[:, :kk]
                via[:, :, 1] = dv[:, :kk]
                cand[:, :kk, :] = via + d.reshape(q, kk, 2)
            if self.top_ids.size:
                # the landmark >= 0 guard keeps the INF_KEY sentinel pivot
                # (-1, on disconnected graphs) from wrapping into a column
                if self.sentinel_pivots:
                    c0 = np.where(pu[:, kk] >= 0,
                                  self.top_col[pu[:, kk]], -1)
                    c1 = np.where(pv[:, kk] >= 0,
                                  self.top_col[pv[:, kk]], -1)
                else:
                    c0 = self.top_col[pu[:, kk]]
                    c1 = self.top_col[pv[:, kk]]
                t0 = self.top_dist[vs, np.maximum(c0, 0)]
                hit[:, kk, 0] = (c0 >= 0) & np.isfinite(t0)
                cand[:, kk, 0] = du[:, kk] + t0
                t1 = self.top_dist[us, np.maximum(c1, 0)]
                hit[:, kk, 1] = (c1 >= 0) & np.isfinite(t1)
                cand[:, kk, 1] = dv[:, kk] + t1
            else:  # degenerate: no top-level entries anywhere
                hit[:, kk, :] = False
                cand[:, kk, :] = np.inf
        else:
            # fully sharded fallback (mixed-level landmark sets)
            keys = np.empty((q, k, 2), dtype=np.int64)
            keys[:, :, 0] = compose(vs[:, None], pu, n)
            keys[:, :, 1] = compose(us[:, None], pv, n)
            flat = keys.reshape(-1)
            d, lvl = self._probe_keys(flat, np.maximum(flat, 0) % n)
            hit[:] = (lvl.reshape(q, k, 2)
                      == np.arange(k, dtype=np.int64)[None, :, None])
            via = np.empty((q, k, 2), dtype=np.float64)
            via[:, :, 0] = du
            via[:, :, 1] = dv
            cand[:] = via + d.reshape(q, k, 2)

        hit2 = hit.reshape(q, 2 * k)
        first = np.argmax(hit2, axis=1)
        rows = np.arange(q)
        est = np.where(us == vs, 0.0, cand.reshape(q, 2 * k)[rows, first])
        unresolved = (us != vs) & ~hit2[rows, first]
        if unresolved.any():
            j = int(np.flatnonzero(unresolved)[0])
            raise QueryError(
                f"labels of {int(us[j])} and {int(vs[j])} share no level "
                f"(A_{self.k - 1} membership is inconsistent between them)")
        return est

    def estimate(self, u: int, v: int) -> float:
        """Single-pair convenience wrapper over :meth:`estimate_many`."""
        return float(self.estimate_many(np.asarray([u]), np.asarray([v]))[0])

    # ------------------------------------------------------------------
    # canonical entry stream (serialization / equality)
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterable[tuple[int, int, float, int]]:
        """All bunch entries as ``(owner, landmark, dist, level)`` in global
        composite-key order — a canonical stream independent of the shard
        count and of the dense/sparse storage split."""
        merged = [(int(key), float(sh.dists[j]), int(sh.levels[j]))
                  for sh in self.shards
                  for j, key in enumerate(sh.keys)]
        for u in range(self.n):
            for j in range(self.top_ids.size):
                d = self.top_dist[u, j]
                if np.isfinite(d):
                    merged.append((u * self.n + int(self.top_ids[j]),
                                   float(d), self.k - 1))
        merged.sort(key=lambda e: e[0])
        for key, d, lvl in merged:
            yield key // self.n, key % self.n, d, lvl

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TZIndex):
            return NotImplemented
        return (self.n == other.n and self.k == other.k
                and np.array_equal(self.pivot_ids, other.pivot_ids)
                and np.array_equal(self.pivot_dists, other.pivot_dists)
                and list(self.iter_entries()) == list(other.iter_entries()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TZIndex(n={self.n}, k={self.k}, nnz={self.nnz()}, "
                f"shards={self.num_shards})")
