"""Pre-indexed sketch stores behind the batched query engine.

Every scheme in the library has a vectorized index here, all conforming to
the :class:`IndexStore` protocol:

* :class:`TZIndex` — Thorup–Zwick labels flattened into dense pivot/top
  tables plus hashed per-landmark shard tables.
* :class:`Stretch3Index` — the Theorem 4.3 sketches as one dense
  ``(n, |N|)`` node × net-node distance matrix; a batch is a gather and a
  row-wise min.
* :class:`CDGIndex` — gateway arrays plus a :class:`TZIndex` over the net
  labels (remapped to a compact universe); a batch is two gathers around
  one TZ sub-batch.
* :class:`GracefulIndex` — one :class:`CDGIndex` per ε-component; a batch
  is the component-wise minimum.

Batched answers are **bit-identical** to the scheme's single-pair query
(``estimate_distance`` / ``estimate_to``) — the test suite asserts this
pair by pair, including :class:`~repro.errors.QueryError` parity on
disconnected graphs.  Use :func:`build_index` to get the right store for a
homogeneous sketch set.

Every store also decomposes a batch into **per-landmark-shard probe
tasks** (``plan`` → ``shard_answer`` × S → ``finish``), which is what
:class:`~repro.service.workers.ShardServer` runs on a process pool.  The
decomposition is part of the determinism contract: ``shard_answer`` is a
pure function of ``(shard data, request)``, and ``finish`` combines
responses by shard id, never by completion order, so any worker count
yields the same bytes.  See ``docs/architecture.md`` for the dataflow
diagram.

Notes on the TZ layout (the template the other stores reuse):

* ``pivot_ids`` / ``pivot_dists`` — dense ``(n, k)`` tables of the pivot
  entries ``p_i(u), d(u, p_i(u))``.
* a **dense top-level table** — by Lemma 3.2's backstop, ``B_{k-1}(v)``
  contains *all* of ``A_{k-1}`` for every ``v`` (the level-``k`` threshold
  is infinite), so the level-``k-1`` bunch entries form a complete
  ``n x |A_{k-1}|`` distance matrix; a top-level probe is a plain array
  gather instead of a search.
* per-shard **landmark tables** for the sub-top levels — every remaining
  bunch entry ``w ∈ B_i(u)``, ``i < k-1``, becomes one row
  ``(owner u, landmark w, distance, level)``.  Rows are keyed by the
  composite integer ``u * n + w``, stored sorted (the canonical wire
  order) and mirrored into an open-addressing hash table, so a batch of
  membership probes costs 1-3 vectorized gathers per probe with no
  Python-level loop.

Sharding is by landmark (``w % num_shards``): all entries naming landmark
``w`` live in shard ``w mod S``.  A query batch is routed shard by shard,
which maps directly onto a multi-process serving topology (each shard can
be owned by one worker; the landmark is known *before* the lookup, so the
router needs no sketch data).

The dense split requires that level-``k-1`` entries and sub-top entries
never share a landmark — true for every honest TZ construction, where an
entry's level is the landmark's own hierarchy level.  Hand-crafted sketch
sets violating this are detected at build time and stored fully sharded
(slower, still exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import ConfigError, QueryError
from repro.slack.cdg import CDGSketch
from repro.slack.graceful import GracefulSketch
from repro.slack.stretch3 import Stretch3Sketch
from repro.tz.sketch import TZSketch

_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)  # Fibonacci hashing constant


# ----------------------------------------------------------------------
# the store protocol
# ----------------------------------------------------------------------
@runtime_checkable
class IndexStore(Protocol):
    """What the serving layer requires of a pre-built sketch index.

    Implementations promise two things:

    1. **Bit-identity** — :meth:`estimate_many` returns, for every pair,
       the exact float the scheme's single-pair query would return, and
       raises :class:`~repro.errors.QueryError` exactly when some pair in
       the batch would raise it singly.
    2. **Shard decomposition** — ``estimate_many`` is equivalent to::

           state, requests = store.plan(us, vs)
           responses = [store.shard_answer(s, r)
                        for s, r in enumerate(requests)]
           answers = store.finish(state, responses)

       where each ``shard_answer`` call touches only shard ``s``'s slice
       of the store and is a pure function of its arguments (so it can
       run in a worker process), and ``finish`` combines responses by
       shard id.  Answers are independent of ``num_shards``.
    """

    n: int
    num_shards: int

    def estimate_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched distance estimates for equal-length id arrays."""
        ...

    def estimate(self, u: int, v: int) -> float:
        """Single-pair convenience wrapper over :meth:`estimate_many`."""
        ...

    def nnz(self) -> int:
        """Total number of stored entries."""
        ...

    def shard_sizes(self) -> list[int]:
        """Stored entry count per landmark shard."""
        ...

    def plan(self, us: np.ndarray, vs: np.ndarray) -> tuple[Any, list]:
        """Validate a batch and split it into per-shard requests."""
        ...

    def shard_answer(self, shard: int, request: Any) -> Any:
        """Serve one shard's request (pure; safe in a worker process)."""
        ...

    def finish(self, state: Any, responses: list) -> np.ndarray:
        """Combine the per-shard responses into the final answers."""
        ...


def _validated_pairs(us, vs, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared batch validation: contiguous int64 arrays, ids in [0, n)."""
    us = np.ascontiguousarray(us, dtype=np.int64)
    vs = np.ascontiguousarray(vs, dtype=np.int64)
    if us.shape != vs.shape or us.ndim != 1:
        raise QueryError("estimate_many wants two equal-length 1-d arrays")
    if us.size and (us.min() < 0 or vs.min() < 0
                    or max(int(us.max()), int(vs.max())) >= n):
        raise QueryError(f"node id out of range [0, {n})")
    return us, vs


def parse_pair_array(pairs) -> np.ndarray:
    """Normalize a ``dist_many`` workload — any iterable of ``(u, v)``
    pairs or a ``(Q, 2)`` integer array — to an int64 ``(Q, 2)`` array
    (shared by the engine and the shard-server front ends).

    :raises ConfigError: on any other shape.
    """
    if isinstance(pairs, np.ndarray):
        arr = pairs.astype(np.int64, copy=False)
    else:
        arr = np.asarray(list(pairs), dtype=np.int64)
    if arr.size and (arr.ndim != 2 or arr.shape[1] != 2):
        raise ConfigError(
            f"dist_many wants a (Q, 2) pair array, got shape {arr.shape}")
    return arr.reshape(-1, 2)


def _unresolved_error(message: str, row: int) -> QueryError:
    """A QueryError tagged with the offending batch row (wrapping stores
    use the tag to re-raise with their own node ids)."""
    err = QueryError(message)
    err.row = row
    return err


class _BaseIndex:
    """Shared driver: ``estimate_many`` as the in-process plan/probe/finish
    loop, plus the single-pair wrapper."""

    def __getstate__(self):
        # a pack-built store records its PackedIndex on _pack_source so
        # serving layers can reuse the backing, but packs (memoryviews,
        # mmaps) cannot pickle — ship the arrays themselves instead
        # (numpy copies buffer-backed views), which is exactly what the
        # heap-mode worker initializer wants
        state = self.__dict__.copy()
        state.pop("_pack_source", None)
        return state

    def estimate_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched estimates, bit-identical to the single-pair query."""
        state, requests = self.plan(us, vs)
        if self.num_shards == 1:
            # trivial layout: one shard owns everything — go straight to
            # the kernel and skip the enumerate/scatter round-trip
            return self.finish(state, [self.shard_answer(0, requests[0])])
        responses = [self.shard_answer(s, r) for s, r in enumerate(requests)]
        return self.finish(state, responses)

    def estimate(self, u: int, v: int) -> float:
        """Single-pair convenience wrapper over :meth:`estimate_many`."""
        return float(self.estimate_many(np.asarray([u]), np.asarray([v]))[0])


# ----------------------------------------------------------------------
# Thorup–Zwick
# ----------------------------------------------------------------------
def _compose_keys(owners: np.ndarray, landmarks: np.ndarray,
                  n: np.int64) -> np.ndarray:
    """Composite probe keys ``owner * n + landmark``.

    A negative landmark (the ``INF_KEY`` pivot sentinel -1, possible on
    disconnected graphs) must never match: mapped to -2, which matches
    neither a stored key (>= 0) nor the hash table's -1 empty marker, so
    the probe reports it absent — exactly like ``bunch.get(-1)``.
    """
    return np.where(landmarks < 0, -2, owners * n + landmarks)


def _build_hash(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Open-addressing hash table over composite keys.

    Returns ``(slot_key, slot_idx, mask, shift)``: power-of-two table at
    load factor <= 0.5, empty slots keyed -1.  Probing costs 1-3 gathers —
    beats binary search, whose ~log2(nnz) dependent accesses dominate the
    batched lookup profile.
    """
    size = 1
    while size < max(2, 2 * keys.size):
        size <<= 1
    shift = 64 - size.bit_length() + 1
    slot_key = np.full(size, -1, dtype=np.int64)
    slot_idx = np.zeros(size, dtype=np.int64)
    mask = size - 1
    if keys.size:
        cur = (((keys.astype(np.uint64) * _HASH_MULT) >> np.uint64(shift))
               .astype(np.int64) & mask)
        pend = np.arange(keys.size)
        while pend.size:
            slots = cur[pend]
            empty = slot_key[slots] == -1
            # first pending entry per empty slot wins this round
            _, first = np.unique(slots[empty], return_index=True)
            winners = np.flatnonzero(empty)[first]
            slot_key[slots[winners]] = keys[pend[winners]]
            slot_idx[slots[winners]] = pend[winners]
            placed = np.zeros(pend.size, dtype=bool)
            placed[winners] = True
            pend = pend[~placed]
            cur[pend] = (cur[pend] + 1) & mask
    return slot_key, slot_idx, mask, shift


@dataclass(frozen=True)
class _Shard:
    """One landmark shard: composite-key-sorted bunch entries plus a hash
    table for O(1) batched probes."""

    keys: np.ndarray    # int64, sorted: owner * n + landmark
    dists: np.ndarray   # float64
    levels: np.ndarray  # int64
    slot_key: np.ndarray
    slot_idx: np.ndarray
    mask: int
    shift: int

    def probe(self, keys: np.ndarray) -> np.ndarray:
        """Entry index for each probe key, -1 where absent."""
        cur = (((keys.astype(np.uint64) * _HASH_MULT)
                >> np.uint64(self.shift)).astype(np.int64) & self.mask)
        # unrolled first round: most probes resolve without a collision
        at = self.slot_key[cur]
        hit = at == keys
        pos = np.where(hit, self.slot_idx[cur], -1)
        pend = np.flatnonzero(~hit & (at != -1))
        while pend.size:
            cur[pend] = (cur[pend] + 1) & self.mask
            slots = cur[pend]
            at = self.slot_key[slots]
            hit = at == keys[pend]
            pos[pend[hit]] = self.slot_idx[slots[hit]]
            pend = pend[~hit & (at != -1)]
        return pos


@dataclass
class _TZPlan:
    """In-flight state of one batched TZ query (master side only)."""

    us: np.ndarray
    vs: np.ndarray
    hit: np.ndarray       # (q, k, 2) bool, top level prefilled if dense
    cand: np.ndarray      # (q, k, 2) float64, ditto
    via: np.ndarray       # (q, kk, 2) pivot distances awaiting probe sums
    kk: int               # levels routed through the shard tables
    idx: list             # per-shard positions into the flat probe array
    nprobe: int           # flat probe count


class TZIndex(_BaseIndex):
    """Flat-array index over a TZ sketch set, built for batched queries.

    :param sketches: one :class:`~repro.tz.sketch.TZSketch` per node,
        indexed by node ID.
    :param num_shards: number of landmark shards (``>= 1``).  Answers are
        independent of the shard count; it only changes the physical
        layout (and the unit of work a
        :class:`~repro.service.workers.ShardServer` hands one worker).
    :raises ConfigError: on an empty set, a non-TZ sketch, mixed ``k``,
        or ``num_shards < 1``.
    """

    def __init__(self, sketches: Sequence[TZSketch], num_shards: int = 1):
        if not sketches:
            raise ConfigError("cannot index an empty sketch set")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        n = len(sketches)
        k = sketches[0].k
        for s in sketches:
            if not isinstance(s, TZSketch):
                raise ConfigError(
                    f"TZIndex only indexes TZSketch, got {type(s).__name__}")
            if s.k != k:
                raise ConfigError(
                    f"mixed k in sketch set: {s.k} vs {k} (node {s.node})")
        self.n = n
        self.k = k
        self.num_shards = int(num_shards)

        # the dense top block is sound only if no landmark mixes level-(k-1)
        # entries with sub-top entries (honest TZ output never does; see
        # module docstring) — otherwise store everything sharded
        seen_levels: dict[int, set[int]] = {}
        for s in sketches:
            for w, (_, lvl) in s.bunch.items():
                seen_levels.setdefault(w, set()).add(lvl)
        self.dense_top = all(lvls == {k - 1}
                             for lvls in seen_levels.values()
                             if (k - 1) in lvls)
        top_landmarks = (sorted(w for w, lvls in seen_levels.items()
                                if lvls == {k - 1})
                         if self.dense_top else [])
        self.top_ids = np.asarray(top_landmarks, dtype=np.int64)
        #: column of each top landmark in the dense table (-1 elsewhere)
        self.top_col = np.full(n, -1, dtype=np.int64)
        self.top_col[self.top_ids] = np.arange(self.top_ids.size)
        #: dense ``d(v, w)`` for top landmarks; +inf marks a (pathological)
        #: missing entry so the probe correctly reports "not found"
        self.top_dist = np.full((n, self.top_ids.size), np.inf,
                                dtype=np.float64)

        self.pivot_ids = np.empty((n, k), dtype=np.int64)
        self.pivot_dists = np.empty((n, k), dtype=np.float64)
        per_shard: list[list[tuple[int, float, int]]] = [
            [] for _ in range(self.num_shards)]
        # iterating owners in ID order with sorted bunch keys yields
        # composite keys in strictly increasing order within every shard,
        # so the shard arrays come out sorted without an explicit sort
        for u, s in enumerate(sketches):
            for i, (p, d) in enumerate(s.pivots):
                self.pivot_ids[u, i] = p
                self.pivot_dists[u, i] = d
            for w in sorted(s.bunch):
                d, lvl = s.bunch[w]
                if self.top_col[w] >= 0:
                    self.top_dist[u, self.top_col[w]] = d
                else:
                    per_shard[w % self.num_shards].append((u * n + w, d, lvl))
        #: True when any pivot is the INF_KEY sentinel (-1, inf) — only on
        #: disconnected graphs; the batch path then masks sentinel probes
        self.sentinel_pivots = bool((self.pivot_ids < 0).any())
        self.shards: list[_Shard] = []
        for entries in per_shard:
            keys = np.asarray([e[0] for e in entries], dtype=np.int64)
            slot_key, slot_idx, mask, shift = _build_hash(keys)
            self.shards.append(_Shard(
                keys=keys,
                dists=np.asarray([e[1] for e in entries], dtype=np.float64),
                levels=np.asarray([e[2] for e in entries], dtype=np.int64),
                slot_key=slot_key, slot_idx=slot_idx, mask=mask, shift=shift))

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def nnz(self) -> int:
        """Total number of bunch entries (dense top block included)."""
        sub = sum(sh.keys.size for sh in self.shards)
        return sub + int(np.isfinite(self.top_dist).sum())

    def shard_sizes(self) -> list[int]:
        """Sharded (sub-top) entry count per landmark shard."""
        return [sh.keys.size for sh in self.shards]

    # ------------------------------------------------------------------
    # shard routing and probing
    # ------------------------------------------------------------------
    def _route(self, keys: np.ndarray, landmarks: np.ndarray,
               ) -> tuple[list, list[np.ndarray]]:
        """Group flat composite keys by landmark shard.

        Returns ``(idx, requests)``: per-shard positions into the flat
        array (``[None]`` for the trivial single-shard layout) and the
        per-shard key arrays.
        """
        if self.num_shards == 1:
            return [None], [keys]
        shard_of = landmarks % self.num_shards
        idx = [np.flatnonzero(shard_of == s) for s in range(self.num_shards)]
        return idx, [keys[i] for i in idx]

    def shard_answer(self, shard: int, request: np.ndarray,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Probe shard ``shard`` with composite keys.

        Returns ``(dist, level)`` with level -1 where absent (the distance
        is then unspecified; a -1 level never matches a scan level, so the
        garbage value is never selected).  Pure: touches only this shard's
        hash table, so it can run in a worker process.
        """
        sh = self.shards[shard]
        if request.size == 0 or sh.keys.size == 0:
            return (np.zeros(request.size, dtype=np.float64),
                    np.full(request.size, -1, dtype=np.int64))
        pos = sh.probe(request)
        # gather with pos=-1 wrapping to the last entry is safe: the level
        # is forced to -1 there (see above)
        return sh.dists[pos], np.where(pos >= 0, sh.levels[pos], -1)

    def _scatter(self, idx: list, responses: list, total: int,
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Merge per-shard probe responses back into flat arrays."""
        if self.num_shards == 1:
            return responses[0]
        dist = np.zeros(total, dtype=np.float64)
        level = np.full(total, -1, dtype=np.int64)
        for pos, (d, lvl) in zip(idx, responses):
            dist[pos] = d
            level[pos] = lvl
        return dist, level

    def _probe_keys(self, keys: np.ndarray, landmarks: np.ndarray,
                    ) -> tuple[np.ndarray, np.ndarray]:
        """Route flat composite keys through the shard hash tables; returns
        ``(dist, level)`` with level -1 where absent."""
        idx, requests = self._route(keys, landmarks)
        responses = [self.shard_answer(s, r) for s, r in enumerate(requests)]
        return self._scatter(idx, responses, keys.size)

    def lookup(self, owners: np.ndarray, landmarks: np.ndarray,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched bunch probe: for each ``(owner, landmark)`` pair return
        ``(dist, level, found)`` — ``found[j]`` is False when the landmark
        is not in the owner's bunch (then dist/level are undefined).

        Owners must be real node ids; a landmark outside ``[0, n)`` (e.g.
        the INF_KEY pivot sentinel -1) is simply never a member.
        """
        owners = np.ascontiguousarray(owners, dtype=np.int64)
        landmarks = np.ascontiguousarray(landmarks, dtype=np.int64)
        m = owners.shape[0]
        if m and (owners.min() < 0 or owners.max() >= self.n):
            raise QueryError(f"owner id out of range [0, {self.n})")
        dist = np.zeros(m, dtype=np.float64)
        level = np.full(m, -1, dtype=np.int64)
        in_range = (landmarks >= 0) & (landmarks < self.n)
        col = np.where(in_range, self.top_col[landmarks % self.n], -1)
        is_top = col >= 0
        ti = np.flatnonzero(is_top)
        if ti.size:
            d = self.top_dist[owners[ti], col[ti]]
            ok = np.isfinite(d)
            oi = ti[ok]
            dist[oi] = d[ok]
            level[oi] = self.k - 1
        rest = np.flatnonzero(~is_top & in_range)
        if rest.size:
            keys = _compose_keys(owners[rest], landmarks[rest],
                                 np.int64(self.n))
            d, lvl = self._probe_keys(keys, landmarks[rest])
            dist[rest] = d
            level[rest] = lvl
        return dist, level, level >= 0

    # ------------------------------------------------------------------
    # the batched Lemma 3.2 query, decomposed per the IndexStore contract
    # ------------------------------------------------------------------
    def plan(self, us: np.ndarray, vs: np.ndarray) -> tuple[_TZPlan, list]:
        """Validate the batch, gather pivots and the dense-top hits, and
        split the sub-top membership probes into per-shard key requests."""
        us, vs = _validated_pairs(us, vs, self.n)
        return self._plan_checked(us, vs)

    def _plan_checked(self, us: np.ndarray, vs: np.ndarray,
                      ) -> tuple[_TZPlan, list]:
        """:meth:`plan` minus the batch validation — wrapping stores
        (CDG, graceful) route already-validated compact-universe ids
        here so a batch is checked once, not once per layer."""
        q, k, n = us.shape[0], self.k, self.n

        pu = self.pivot_ids[us]      # (q, k)
        pv = self.pivot_ids[vs]
        du = self.pivot_dists[us]
        dv = self.pivot_dists[vs]

        # hit/candidate matrix in Lemma 3.2's exact check order: columns
        # (level 0 dir 1), (level 0 dir 2), ..., (level k-1 dir 1),
        # (level k-1 dir 2); argmax then picks the first hit per row
        hit = np.empty((q, k, 2), dtype=bool)
        cand = np.empty((q, k, 2), dtype=np.float64)

        # the sentinel masks are pure overhead on connected graphs, where
        # no pivot is ever -1 — compose keys directly in that case
        compose = _compose_keys if self.sentinel_pivots else (
            lambda o, lm, nn: o * nn + lm)

        kk = k - 1 if self.dense_top else k
        if kk:
            keys = np.empty((q, kk, 2), dtype=np.int64)
            keys[:, :, 0] = compose(vs[:, None], pu[:, :kk], n)
            keys[:, :, 1] = compose(us[:, None], pv[:, :kk], n)
            flat = keys.reshape(-1)
            if self.num_shards > 1:
                # landmarks only needed for routing; clamp the -2 sentinel
                # keys of the fully-sharded path into a valid shard (they
                # can never match a stored key anyway)
                lms = flat % n if self.dense_top else np.maximum(flat, 0) % n
            else:
                lms = flat
            via = np.empty((q, kk, 2), dtype=np.float64)
            via[:, :, 0] = du[:, :kk]
            via[:, :, 1] = dv[:, :kk]
            idx, requests = self._route(flat, lms)
        else:
            flat = np.empty(0, dtype=np.int64)
            via = np.empty((q, 0, 2), dtype=np.float64)
            idx, requests = self._route(flat, flat)

        if self.dense_top:
            if self.top_ids.size:
                # the landmark >= 0 guard keeps the INF_KEY sentinel pivot
                # (-1, on disconnected graphs) from wrapping into a column
                if self.sentinel_pivots:
                    c0 = np.where(pu[:, kk] >= 0,
                                  self.top_col[pu[:, kk]], -1)
                    c1 = np.where(pv[:, kk] >= 0,
                                  self.top_col[pv[:, kk]], -1)
                else:
                    c0 = self.top_col[pu[:, kk]]
                    c1 = self.top_col[pv[:, kk]]
                t0 = self.top_dist[vs, np.maximum(c0, 0)]
                hit[:, kk, 0] = (c0 >= 0) & np.isfinite(t0)
                cand[:, kk, 0] = du[:, kk] + t0
                t1 = self.top_dist[us, np.maximum(c1, 0)]
                hit[:, kk, 1] = (c1 >= 0) & np.isfinite(t1)
                cand[:, kk, 1] = dv[:, kk] + t1
            else:  # degenerate: no top-level entries anywhere
                hit[:, kk, :] = False
                cand[:, kk, :] = np.inf

        state = _TZPlan(us=us, vs=vs, hit=hit, cand=cand, via=via, kk=kk,
                        idx=idx, nprobe=flat.size)
        return state, requests

    def finish(self, state: _TZPlan, responses: list) -> np.ndarray:
        """Fold the shard probe responses into the Lemma 3.2 level scan:
        first hit wins, exactly like the single-pair reference."""
        us, vs, kk = state.us, state.vs, state.kk
        q, k = us.shape[0], self.k
        if kk:
            d, lvl = self._scatter(state.idx, responses, state.nprobe)
            state.hit[:, :kk, :] = (
                lvl.reshape(q, kk, 2)
                == np.arange(kk, dtype=np.int64)[None, :, None])
            state.cand[:, :kk, :] = state.via + d.reshape(q, kk, 2)
        hit2 = state.hit.reshape(q, 2 * k)
        first = np.argmax(hit2, axis=1)
        rows = np.arange(q)
        est = np.where(us == vs, 0.0,
                       state.cand.reshape(q, 2 * k)[rows, first])
        unresolved = (us != vs) & ~hit2[rows, first]
        if unresolved.any():
            j = int(np.flatnonzero(unresolved)[0])
            raise _unresolved_error(
                f"labels of {int(us[j])} and {int(vs[j])} share no level "
                f"(A_{self.k - 1} membership is inconsistent between them)",
                j)
        return est

    # ------------------------------------------------------------------
    # buffer-pack split: physical arrays vs pure logic
    # ------------------------------------------------------------------
    def pack_arrays(self) -> dict[str, np.ndarray]:
        """Every array this store reads at query time, by name (the
        payload of :func:`index_to_pack`)."""
        out = {
            "pivot_ids": self.pivot_ids, "pivot_dists": self.pivot_dists,
            "top_ids": self.top_ids, "top_col": self.top_col,
            "top_dist": self.top_dist,
        }
        for s, sh in enumerate(self.shards):
            out[f"s{s}.keys"] = sh.keys
            out[f"s{s}.dists"] = sh.dists
            out[f"s{s}.levels"] = sh.levels
            out[f"s{s}.slot_key"] = sh.slot_key
            out[f"s{s}.slot_idx"] = sh.slot_idx
        return out

    def pack_meta(self) -> dict:
        """The scalar (non-array) state, JSON-compatible."""
        return {"n": self.n, "k": self.k, "num_shards": self.num_shards,
                "dense_top": self.dense_top,
                "sentinel_pivots": self.sentinel_pivots,
                "shard_hash": [[sh.mask, sh.shift] for sh in self.shards]}

    @classmethod
    def _from_pack(cls, meta: dict, arrays) -> "TZIndex":
        """Rebuild the store as a pure-logic view over packed arrays —
        no copies, bit-identical answers for any backing."""
        self = cls.__new__(cls)
        self.n = int(meta["n"])
        self.k = int(meta["k"])
        self.num_shards = int(meta["num_shards"])
        self.dense_top = bool(meta["dense_top"])
        self.sentinel_pivots = bool(meta["sentinel_pivots"])
        self.pivot_ids = arrays["pivot_ids"]
        self.pivot_dists = arrays["pivot_dists"]
        self.top_ids = arrays["top_ids"]
        self.top_col = arrays["top_col"]
        self.top_dist = arrays["top_dist"]
        self.shards = [
            _Shard(keys=arrays[f"s{s}.keys"], dists=arrays[f"s{s}.dists"],
                   levels=arrays[f"s{s}.levels"],
                   slot_key=arrays[f"s{s}.slot_key"],
                   slot_idx=arrays[f"s{s}.slot_idx"],
                   mask=int(mask), shift=int(shift))
            for s, (mask, shift) in enumerate(meta["shard_hash"])]
        return self

    # ------------------------------------------------------------------
    # incremental refresh (the dynamic-update subsystem's index hook)
    # ------------------------------------------------------------------
    def apply_sketch_updates(self, dirty: dict[int, TZSketch]) -> "TZIndex":
        """A **new** index with the ``dirty`` owners' sketches replaced,
        touching only the landmark shards their entries live in.

        The clean shards' arrays (keys, distances, hash tables) are
        shared with this index by reference — only shards holding an old
        or new entry of a dirty owner are rebuilt, which is what makes a
        small update batch much cheaper than ``TZIndex(sketches)`` from
        scratch.  ``self`` is never mutated (epoch semantics: readers on
        the old store are unaffected).

        :raises ConfigError: when a replacement sketch is incompatible
            with this index's physical layout (wrong ``k``, or an entry
            whose level disagrees with the dense-top split — callers
            fall back to a full rebuild).
        """
        n, k, S = self.n, self.k, self.num_shards
        for u, s in dirty.items():
            if not (0 <= u < n):
                raise ConfigError(f"dirty owner {u} out of range [0, {n})")
            if not isinstance(s, TZSketch) or s.k != k:
                raise ConfigError(
                    f"replacement sketch for {u} is not a k={k} TZSketch")
            for w, (_, lvl) in s.bunch.items():
                is_top = self.dense_top and self.top_col[w] >= 0
                if is_top != (self.dense_top and lvl == k - 1):
                    raise ConfigError(
                        f"entry ({u}, {w}) at level {lvl} disagrees with "
                        f"the dense-top layout (rebuild required)")

        new = TZIndex.__new__(TZIndex)
        new.n, new.k, new.num_shards = n, k, S
        new.dense_top = self.dense_top
        new.top_ids = self.top_ids
        new.top_col = self.top_col

        new.pivot_ids = np.array(self.pivot_ids)
        new.pivot_dists = np.array(self.pivot_dists)
        new.top_dist = np.array(self.top_dist)
        per_shard: dict[int, list[tuple[int, float, int]]] = {}
        owners = np.asarray(sorted(dirty), dtype=np.int64)
        for u in owners:
            s = dirty[int(u)]
            for i, (p, d) in enumerate(s.pivots):
                new.pivot_ids[u, i] = p
                new.pivot_dists[u, i] = d
            new.top_dist[u, :] = np.inf
            for w in sorted(s.bunch):
                d, lvl = s.bunch[w]
                if self.top_col[w] >= 0:
                    new.top_dist[u, self.top_col[w]] = d
                else:
                    per_shard.setdefault(w % S, []).append(
                        (int(u) * n + w, d, lvl))
        new.sentinel_pivots = bool((new.pivot_ids < 0).any())

        affected = set(per_shard)
        for sidx, sh in enumerate(self.shards):
            if sh.keys.size and np.isin(sh.keys // n, owners).any():
                affected.add(sidx)
        new.shards = list(self.shards)  # clean shards shared by reference
        for sidx in affected:
            sh = self.shards[sidx]
            keep = (~np.isin(sh.keys // n, owners) if sh.keys.size
                    else np.zeros(0, dtype=bool))
            added = per_shard.get(sidx, [])
            keys = np.concatenate([
                sh.keys[keep],
                np.asarray([e[0] for e in added], dtype=np.int64)])
            dists = np.concatenate([
                sh.dists[keep],
                np.asarray([e[1] for e in added], dtype=np.float64)])
            levels = np.concatenate([
                sh.levels[keep],
                np.asarray([e[2] for e in added], dtype=np.int64)])
            order = np.argsort(keys, kind="stable")
            keys, dists, levels = keys[order], dists[order], levels[order]
            slot_key, slot_idx, mask, shift = _build_hash(keys)
            new.shards[sidx] = _Shard(keys=keys, dists=dists, levels=levels,
                                      slot_key=slot_key, slot_idx=slot_idx,
                                      mask=mask, shift=shift)
        return new

    def _to_sketches(self) -> list[TZSketch]:
        """Invert the build: the per-node sketch set this index stores
        (exact — every pivot and bunch entry round-trips bitwise)."""
        bunches: list[dict[int, tuple[float, int]]] = [
            dict() for _ in range(self.n)]
        for u, w, d, lvl in self.iter_entries():
            bunches[u][w] = (d, lvl)
        return [TZSketch(node=u, k=self.k,
                         pivots=tuple(
                             (int(self.pivot_ids[u, i]),
                              float(self.pivot_dists[u, i]))
                             for i in range(self.k)),
                         bunch=bunches[u])
                for u in range(self.n)]

    # ------------------------------------------------------------------
    # canonical entry stream (serialization / equality)
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterable[tuple[int, int, float, int]]:
        """All bunch entries as ``(owner, landmark, dist, level)`` in global
        composite-key order — a canonical stream independent of the shard
        count and of the dense/sparse storage split."""
        merged = [(int(key), float(sh.dists[j]), int(sh.levels[j]))
                  for sh in self.shards
                  for j, key in enumerate(sh.keys)]
        for u in range(self.n):
            for j in range(self.top_ids.size):
                d = self.top_dist[u, j]
                if np.isfinite(d):
                    merged.append((u * self.n + int(self.top_ids[j]),
                                   float(d), self.k - 1))
        merged.sort(key=lambda e: e[0])
        for key, d, lvl in merged:
            yield key // self.n, key % self.n, d, lvl

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TZIndex):
            return NotImplemented
        return (self.n == other.n and self.k == other.k
                and np.array_equal(self.pivot_ids, other.pivot_ids)
                and np.array_equal(self.pivot_dists, other.pivot_dists)
                and list(self.iter_entries()) == list(other.iter_entries()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TZIndex(n={self.n}, k={self.k}, nnz={self.nnz()}, "
                f"shards={self.num_shards})")


# ----------------------------------------------------------------------
# stretch-3 (Theorem 4.3)
# ----------------------------------------------------------------------
class Stretch3Index(_BaseIndex):
    """Dense node × net-node distance table over a stretch-3 sketch set.

    The single-pair query is ``min_w d(u, w) + d(w, v)`` over the shared
    ε-density net; with all entries in one ``(n, |N|)`` matrix (missing
    entries stored as +inf, which no min ever selects) a batch is two row
    gathers, one addition, and a row-wise min — the same floats the dict
    loop in :meth:`~repro.slack.stretch3.Stretch3Sketch.estimate_to`
    produces, since an IEEE-754 min is order-independent.

    Sharding is by net-node id (``w % num_shards``): each shard owns a
    column block and answers a batch with its partial per-pair min; the
    combine step is an elementwise min over shards.

    :param sketches: one :class:`~repro.slack.stretch3.Stretch3Sketch`
        per node, indexed by node ID.
    :param num_shards: number of net-node shards (``>= 1``); answers are
        shard-independent.
    :raises ConfigError: on an empty set, a non-stretch3 sketch, mixed
        ``eps``, or ``num_shards < 1``.
    """

    def __init__(self, sketches: Sequence[Stretch3Sketch],
                 num_shards: int = 1):
        if not sketches:
            raise ConfigError("cannot index an empty sketch set")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        for s in sketches:
            if not isinstance(s, Stretch3Sketch):
                raise ConfigError(
                    f"Stretch3Index only indexes Stretch3Sketch, "
                    f"got {type(s).__name__}")
        eps = sketches[0].eps
        for s in sketches:
            if s.eps != eps:
                raise ConfigError(
                    f"mixed eps in sketch set: {s.eps} vs {eps} "
                    f"(node {s.node})")
        self.n = len(sketches)
        self.eps = eps
        self.num_shards = int(num_shards)
        #: sorted net-node ids — the columns of the dense table
        self.net_ids = np.asarray(
            sorted({w for s in sketches for w in s.entries}), dtype=np.int64)
        col = {int(w): j for j, w in enumerate(self.net_ids)}
        #: dense ``d(u, w)``; +inf marks a missing entry
        self.dist = np.full((self.n, self.net_ids.size), np.inf,
                            dtype=np.float64)
        for u, s in enumerate(sketches):
            for w, d in s.entries.items():
                self.dist[u, col[w]] = d
        #: per-shard column blocks (net node ``w`` lives in ``w mod S``)
        self._shard_cols = [
            np.flatnonzero(self.net_ids % self.num_shards == s)
            for s in range(self.num_shards)]

    def nnz(self) -> int:
        """Number of stored (finite) node → net-node entries."""
        return int(np.isfinite(self.dist).sum())

    def shard_sizes(self) -> list[int]:
        """Stored entry count per net-node shard."""
        return [int(np.isfinite(self.dist[:, cols]).sum())
                for cols in self._shard_cols]

    # ------------------------------------------------------------------
    def estimate_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Batched estimates via the direct columnar kernel — two row
        gathers, one add, one row-wise min over the full table (an IEEE
        min is order-independent, so this is bit-identical to the
        shard-partial decomposition for any shard count)."""
        us, vs = _validated_pairs(us, vs, self.n)
        if self.net_ids.size:
            best = (self.dist[us] + self.dist[vs]).min(axis=1)
        else:
            best = np.full(us.size, np.inf, dtype=np.float64)
        return self._combine(us, vs, best)

    def plan(self, us: np.ndarray, vs: np.ndarray) -> tuple[Any, list]:
        """Validate the batch; every shard receives the full pair list
        (each owns a disjoint column block of the min)."""
        us, vs = _validated_pairs(us, vs, self.n)
        return (us, vs), [(us, vs)] * self.num_shards

    def shard_answer(self, shard: int, request: Any) -> np.ndarray:
        """Partial per-pair min over this shard's net-node columns
        (+inf where the shard contributes no finite route)."""
        us, vs = request
        cols = self._shard_cols[shard]
        if cols.size == 0:
            return np.full(us.size, np.inf, dtype=np.float64)
        if cols.size == self.net_ids.size:
            # the shard owns every column (single-shard layout): plain
            # row gathers beat the 2-d fancy gather
            return (self.dist[us] + self.dist[vs]).min(axis=1)
        through = (self.dist[us[:, None], cols[None, :]]
                   + self.dist[vs[:, None], cols[None, :]])
        return through.min(axis=1)

    def finish(self, state: Any, responses: list) -> np.ndarray:
        """Elementwise min over the shard partials; QueryError where no
        shard found a shared net node (exactly when the dict loop would
        have raised)."""
        us, vs = state
        best = responses[0]
        for part in responses[1:]:
            best = np.minimum(best, part)
        return self._combine(us, vs, best)

    def _combine(self, us: np.ndarray, vs: np.ndarray,
                 best: np.ndarray) -> np.ndarray:
        """Shared tail of the kernel and the shard combine: zero the
        diagonal, raise on pairs with no shared net node."""
        est = np.where(us == vs, 0.0, best)
        bad = (us != vs) & ~np.isfinite(best)
        if bad.any():
            j = int(np.flatnonzero(bad)[0])
            raise _unresolved_error(
                f"sketches of {int(us[j])} and {int(vs[j])} share no "
                f"net node", j)
        return est

    # ------------------------------------------------------------------
    # buffer-pack split
    # ------------------------------------------------------------------
    def pack_arrays(self) -> dict[str, np.ndarray]:
        """Every array this store reads at query time, by name."""
        return {"net_ids": self.net_ids, "dist": self.dist}

    def pack_meta(self) -> dict:
        """The scalar (non-array) state, JSON-compatible."""
        return {"n": self.n, "eps": self.eps, "num_shards": self.num_shards}

    @classmethod
    def _from_pack(cls, meta: dict, arrays) -> "Stretch3Index":
        """Rebuild as a view over packed arrays (the shard column split
        is a pure function of ``net_ids`` and ``num_shards``)."""
        self = cls.__new__(cls)
        self.n = int(meta["n"])
        self.eps = float(meta["eps"])
        self.num_shards = int(meta["num_shards"])
        self.net_ids = arrays["net_ids"]
        self.dist = arrays["dist"]
        self._shard_cols = [
            np.flatnonzero(self.net_ids % self.num_shards == s)
            for s in range(self.num_shards)]
        return self

    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterable[tuple[int, int, float]]:
        """Finite entries as ``(owner, net node, dist)``, sorted by
        ``(owner, net node)`` — the canonical serialization stream."""
        for u in range(self.n):
            row = self.dist[u]
            for j in np.flatnonzero(np.isfinite(row)):
                yield u, int(self.net_ids[j]), float(row[j])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Stretch3Index):
            return NotImplemented
        return (self.n == other.n and self.eps == other.eps
                and list(self.iter_entries()) == list(other.iter_entries()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Stretch3Index(n={self.n}, net={self.net_ids.size}, "
                f"nnz={self.nnz()}, shards={self.num_shards})")


# ----------------------------------------------------------------------
# (ε,k)-CDG (Theorem 4.6)
# ----------------------------------------------------------------------
class CDGIndex(_BaseIndex):
    """Gateway arrays plus a TZ sub-index over the net labels.

    The single-pair query is ``d(u, u') + d''(u', v') + d(v', v)`` where
    ``d''`` is the TZ estimate between the gateways' labels.  The store
    keeps the gateway pairs in flat arrays and the labels — remapped onto
    a compact 0-based universe — in a :class:`TZIndex`, so a batch is two
    gathers around one TZ sub-batch.  Sharding (and hence the
    :class:`~repro.service.workers.ShardServer` decomposition) is
    delegated to the sub-index.

    :param sketches: one :class:`~repro.slack.cdg.CDGSketch` per node,
        indexed by node ID.
    :param num_shards: landmark shard count of the TZ sub-index.
    :raises ConfigError: on an empty set, a non-CDG sketch, mixed
        ``eps``/``k``, a sketch whose label is not its gateway's, or two
        sketches shipping different labels for the same gateway.
    """

    def __init__(self, sketches: Sequence[CDGSketch], num_shards: int = 1):
        if not sketches:
            raise ConfigError("cannot index an empty sketch set")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        for s in sketches:
            if not isinstance(s, CDGSketch):
                raise ConfigError(
                    f"CDGIndex only indexes CDGSketch, got {type(s).__name__}")
        eps, k = sketches[0].eps, sketches[0].k
        labels: dict[int, TZSketch] = {}
        for s in sketches:
            if s.eps != eps or s.k != k:
                raise ConfigError(
                    f"mixed eps/k in sketch set: ({s.eps}, {s.k}) vs "
                    f"({eps}, {k}) (node {s.node})")
            if s.label.node != s.gateway:
                raise ConfigError(
                    f"node {s.node} ships the label of {s.label.node} but "
                    f"names gateway {s.gateway}")
            prev = labels.get(s.gateway)
            if prev is None:
                labels[s.gateway] = s.label
            elif prev != s.label:
                raise ConfigError(
                    f"conflicting labels for gateway {s.gateway}")
        lk = next(iter(labels.values())).k
        for lbl in labels.values():
            if lbl.k != lk:
                raise ConfigError(
                    f"mixed k in net labels: {lbl.k} vs {lk}")
        self.n = len(sketches)
        self.eps = eps
        self.k = k
        self.num_shards = int(num_shards)
        self.gateway_ids = np.asarray([s.gateway for s in sketches],
                                      dtype=np.int64)
        self.gateway_dists = np.asarray([s.gateway_dist for s in sketches],
                                        dtype=np.float64)
        # original-id label map (one per gateway) — see the ``labels``
        # property (pack-built stores reconstruct it lazily instead)
        self._labels: Optional[dict[int, TZSketch]] = labels

        # compact universe: every id a label mentions (owners, bunch
        # landmarks, non-sentinel pivots), remapped to 0..m-1 so the TZ
        # sub-index wastes no rows on non-net nodes
        universe = set(labels)
        for lbl in labels.values():
            universe.update(lbl.bunch)
            universe.update(p for p, _ in lbl.pivots if p >= 0)
        self.net_ids = np.asarray(sorted(universe), dtype=np.int64)
        slot = {int(w): j for j, w in enumerate(self.net_ids)}
        subs = []
        for j, w in enumerate(self.net_ids):
            lbl = labels.get(int(w))
            if lbl is None:
                # a net node referenced by labels but never a gateway: it
                # is never queried as an owner, so an empty placeholder
                # row keeps the universe contiguous without inventing data
                subs.append(TZSketch(node=j, k=lk,
                                     pivots=((-1, math.inf),) * lk,
                                     bunch={}))
            else:
                subs.append(TZSketch(
                    node=j, k=lbl.k,
                    pivots=tuple((slot[p] if p >= 0 else -1, d)
                                 for p, d in lbl.pivots),
                    bunch={slot[w2]: entry
                           for w2, entry in lbl.bunch.items()}))
        self._sub = TZIndex(subs, num_shards=self.num_shards)
        #: per-node slot of the gateway's label in the sub-index
        self._gw_slot = np.asarray([slot[int(g)] for g in self.gateway_ids],
                                   dtype=np.int64)

    @property
    def labels(self) -> dict[int, TZSketch]:
        """Original-id net-label map, one entry per gateway (the
        serialization form).  Sketch-built stores carry it from
        construction; pack-built stores reconstruct it exactly from the
        TZ sub-index by mapping the compact universe back through
        ``net_ids`` (the remap is a bijection, so the round trip is
        bitwise)."""
        if self._labels is None:
            gateways = {int(g) for g in self.gateway_ids}
            net = self.net_ids
            labels: dict[int, TZSketch] = {}
            for j, sub in enumerate(self._sub._to_sketches()):
                w = int(net[j])
                if w not in gateways:
                    continue
                labels[w] = TZSketch(
                    node=w, k=sub.k,
                    pivots=tuple(((int(net[p]) if p >= 0 else -1), d)
                                 for p, d in sub.pivots),
                    bunch={int(net[b]): entry
                           for b, entry in sub.bunch.items()})
            self._labels = labels
        return self._labels

    def nnz(self) -> int:
        """Stored entries: gateway pairs plus the sub-index's bunches."""
        return self.n + self._sub.nnz()

    def shard_sizes(self) -> list[int]:
        """Sharded entry count per landmark shard of the sub-index."""
        return self._sub.shard_sizes()

    # ------------------------------------------------------------------
    def plan(self, us: np.ndarray, vs: np.ndarray) -> tuple[Any, list]:
        """Validate the batch and plan the gateway-label TZ sub-batch."""
        us, vs = _validated_pairs(us, vs, self.n)
        return self._plan_checked(us, vs)

    def _plan_checked(self, us: np.ndarray, vs: np.ndarray,
                      ) -> tuple[Any, list]:
        """:meth:`plan` minus the batch validation.  The gateway slots
        gathered from ``_gw_slot`` are valid sub-universe ids by
        construction, so the TZ sub-plan skips its own check too —
        one validation per batch, however deep the store nests."""
        sub_state, requests = self._sub._plan_checked(self._gw_slot[us],
                                                      self._gw_slot[vs])
        return (us, vs, sub_state), requests

    def shard_answer(self, shard: int, request: Any) -> Any:
        """Delegate the probe to the TZ sub-index shard."""
        return self._sub.shard_answer(shard, request)

    def finish(self, state: Any, responses: list) -> np.ndarray:
        """Wrap the sub-index's answers in the gateway legs, re-raising
        unresolved pairs with the original node ids."""
        us, vs, sub_state = state
        try:
            through = self._sub.finish(sub_state, responses)
        except QueryError as exc:
            j = getattr(exc, "row", None)
            if j is None:  # pragma: no cover - defensive
                raise
            raise _unresolved_error(
                f"cdg sketches of {int(us[j])} and {int(vs[j])} share no "
                f"level (gateways {int(self.gateway_ids[us[j]])} and "
                f"{int(self.gateway_ids[vs[j]])})", j) from None
        est = (self.gateway_dists[us] + through) + self.gateway_dists[vs]
        return np.where(us == vs, 0.0, est)

    # ------------------------------------------------------------------
    # buffer-pack split
    # ------------------------------------------------------------------
    def pack_arrays(self) -> dict[str, np.ndarray]:
        """Own arrays plus the TZ sub-index's, namespaced ``sub.*``."""
        out = {"gateway_ids": self.gateway_ids,
               "gateway_dists": self.gateway_dists,
               "net_ids": self.net_ids, "gw_slot": self._gw_slot}
        for name, arr in self._sub.pack_arrays().items():
            out[f"sub.{name}"] = arr
        return out

    def pack_meta(self) -> dict:
        """The scalar state, with the sub-index's meta nested."""
        return {"n": self.n, "eps": self.eps, "k": self.k,
                "num_shards": self.num_shards,
                "sub": self._sub.pack_meta()}

    @classmethod
    def _from_pack(cls, meta: dict, arrays) -> "CDGIndex":
        """Rebuild as views over packed arrays; the label dict is
        reconstructed lazily only if serialization/equality asks."""
        self = cls.__new__(cls)
        self.n = int(meta["n"])
        self.eps = float(meta["eps"])
        self.k = int(meta["k"])
        self.num_shards = int(meta["num_shards"])
        self.gateway_ids = arrays["gateway_ids"]
        self.gateway_dists = arrays["gateway_dists"]
        self.net_ids = arrays["net_ids"]
        self._gw_slot = arrays["gw_slot"]
        prefix = "sub."
        sub_arrays = {name[len(prefix):]: arr for name, arr in arrays.items()
                      if name.startswith(prefix)}
        self._sub = TZIndex._from_pack(meta["sub"], sub_arrays)
        self._labels = None
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CDGIndex):
            return NotImplemented
        return (self.n == other.n and self.eps == other.eps
                and self.k == other.k
                and np.array_equal(self.gateway_ids, other.gateway_ids)
                and np.array_equal(self.gateway_dists, other.gateway_dists)
                and self.labels == other.labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CDGIndex(n={self.n}, net={self.net_ids.size}, "
                f"nnz={self.nnz()}, shards={self.num_shards})")


# ----------------------------------------------------------------------
# gracefully degrading (Theorem 4.8)
# ----------------------------------------------------------------------
class GracefulIndex(_BaseIndex):
    """One :class:`CDGIndex` per ε-component; a batch takes the
    component-wise minimum — the same floats as
    :meth:`~repro.slack.graceful.GracefulSketch.estimate_to`.

    A pair is unresolved exactly when *any* component is unresolved for
    it, matching the single-pair ``min`` over component estimates (which
    consumes every component).  Shard ``s`` of this store is the union of
    shard ``s`` across the component sub-indexes, so one worker still
    owns one landmark shard end to end.

    :param sketches: one :class:`~repro.slack.graceful.GracefulSketch`
        per node, indexed by node ID.
    :param num_shards: landmark shard count for every component.
    :raises ConfigError: on an empty set, a non-graceful sketch, or
        mismatched component counts.
    """

    def __init__(self, sketches: Sequence[GracefulSketch],
                 num_shards: int = 1):
        if not sketches:
            raise ConfigError("cannot index an empty sketch set")
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        for s in sketches:
            if not isinstance(s, GracefulSketch):
                raise ConfigError(
                    f"GracefulIndex only indexes GracefulSketch, "
                    f"got {type(s).__name__}")
        levels = len(sketches[0].components)
        for s in sketches:
            if len(s.components) != levels:
                raise ConfigError(
                    f"mismatched graceful sketches: node {s.node} has "
                    f"{len(s.components)} components, expected {levels}")
        if levels == 0:
            raise ConfigError("graceful sketches need >= 1 component")
        self.n = len(sketches)
        self.num_shards = int(num_shards)
        #: per-ε-level CDG stores, ordered by schedule index
        self.components = [
            CDGIndex([s.components[i] for s in sketches],
                     num_shards=self.num_shards)
            for i in range(levels)]

    def nnz(self) -> int:
        """Total stored entries across all components."""
        return sum(c.nnz() for c in self.components)

    def shard_sizes(self) -> list[int]:
        """Per-shard entry count summed across components."""
        per = [c.shard_sizes() for c in self.components]
        return [sum(sizes[s] for sizes in per)
                for s in range(self.num_shards)]

    # ------------------------------------------------------------------
    def plan(self, us: np.ndarray, vs: np.ndarray) -> tuple[Any, list]:
        """Plan every component's sub-batch; shard ``s``'s request is the
        tuple of the components' shard-``s`` requests."""
        us, vs = _validated_pairs(us, vs, self.n)
        states, per_comp = [], []
        for comp in self.components:
            # validated once above — components share this store's id space
            st, reqs = comp._plan_checked(us, vs)
            states.append(st)
            per_comp.append(reqs)
        requests = [tuple(per_comp[i][s] for i in range(len(self.components)))
                    for s in range(self.num_shards)]
        return (us, vs, states), requests

    def shard_answer(self, shard: int, request: Any) -> Any:
        """Serve shard ``shard`` of every component."""
        return tuple(comp.shard_answer(shard, r)
                     for comp, r in zip(self.components, request))

    def finish(self, state: Any, responses: list) -> np.ndarray:
        """Component-wise minimum (any unresolved component raises, as the
        single-pair ``min`` over a raising generator would)."""
        us, vs, states = state
        est: Optional[np.ndarray] = None
        for i, comp in enumerate(self.components):
            part = comp.finish(states[i], [responses[s][i]
                                           for s in range(self.num_shards)])
            est = part if est is None else np.minimum(est, part)
        return est

    # ------------------------------------------------------------------
    # buffer-pack split
    # ------------------------------------------------------------------
    def pack_arrays(self) -> dict[str, np.ndarray]:
        """Every component's arrays, namespaced ``c<i>.*``."""
        out: dict[str, np.ndarray] = {}
        for i, comp in enumerate(self.components):
            for name, arr in comp.pack_arrays().items():
                out[f"c{i}.{name}"] = arr
        return out

    def pack_meta(self) -> dict:
        """The scalar state, one nested meta per ε-component."""
        return {"n": self.n, "num_shards": self.num_shards,
                "components": [c.pack_meta() for c in self.components]}

    @classmethod
    def _from_pack(cls, meta: dict, arrays) -> "GracefulIndex":
        """Rebuild every component as a view over its array slice."""
        self = cls.__new__(cls)
        self.n = int(meta["n"])
        self.num_shards = int(meta["num_shards"])
        self.components = []
        for i, comp_meta in enumerate(meta["components"]):
            prefix = f"c{i}."
            comp_arrays = {name[len(prefix):]: arr
                           for name, arr in arrays.items()
                           if name.startswith(prefix)}
            self.components.append(CDGIndex._from_pack(comp_meta,
                                                       comp_arrays))
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GracefulIndex):
            return NotImplemented
        return self.n == other.n and self.components == other.components

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GracefulIndex(n={self.n}, "
                f"components={len(self.components)}, nnz={self.nnz()}, "
                f"shards={self.num_shards})")


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------
#: sketch type -> (scheme name, index class); the single source of truth
#: for which store serves which scheme
INDEX_TYPES: dict[type, tuple[str, type]] = {
    TZSketch: ("tz", TZIndex),
    Stretch3Sketch: ("stretch3", Stretch3Index),
    CDGSketch: ("cdg", CDGIndex),
    GracefulSketch: ("graceful", GracefulIndex),
}


def index_class_for(sketches: Sequence[Any]) -> Optional[type]:
    """The :class:`IndexStore` class serving this sketch set, or ``None``
    when the set is empty, mixed, or of an unknown type."""
    if not sketches:
        return None
    entry = INDEX_TYPES.get(type(sketches[0]))
    if entry is None:
        return None
    first = type(sketches[0])
    if not all(isinstance(s, first) for s in sketches):
        return None
    return entry[1]


def scheme_name_of(sketches: Sequence[Any]) -> Optional[str]:
    """The registry name (``"tz"`` …) of a homogeneous sketch set, or
    ``None`` when unrecognized."""
    if index_class_for(sketches) is None:
        return None
    return INDEX_TYPES[type(sketches[0])][0]


def scheme_name_of_index(index: IndexStore) -> Optional[str]:
    """The registry name (``"tz"`` …) behind a built store, or ``None``."""
    tag = INDEX_TAGS.get(type(index))
    return tag[: -len("_index")] if tag else None


def build_index(sketches: Sequence[Any], num_shards: int = 1) -> IndexStore:
    """Build the right :class:`IndexStore` for a homogeneous sketch set.

    :raises ConfigError: when no index class serves this set (empty,
        mixed types, or an unknown sketch type).
    """
    cls = index_class_for(sketches)
    if cls is None:
        kinds = sorted({type(s).__name__ for s in sketches}) or ["(empty)"]
        raise ConfigError(
            f"no batched index for this sketch set ({', '.join(kinds)}); "
            f"indexable types: "
            f"{', '.join(t.__name__ for t in INDEX_TYPES)}")
    return cls(sketches, num_shards=num_shards)


def refresh_index(index: IndexStore, sketches: Sequence[Any],
                  touched: Iterable[int]) -> IndexStore:
    """A new store serving ``sketches``, where only the ``touched``
    owners differ from what ``index`` serves — the index-side
    ``apply_updates`` path of the dynamic-update subsystem.

    :class:`TZIndex` takes the shard-surgical route
    (:meth:`TZIndex.apply_sketch_updates`): clean landmark shards are
    shared with the old store by reference and only affected shards are
    rebuilt.  Other store types (whose layouts couple owners across the
    whole table) are rebuilt from the sketch list; either way the old
    store object is left untouched and the result is exactly
    ``build_index(sketches, num_shards=index.num_shards)``.
    """
    touched = sorted(int(u) for u in touched)
    if not touched:
        return index
    if isinstance(index, TZIndex):
        try:
            return index.apply_sketch_updates(
                {u: sketches[u] for u in touched})
        except ConfigError:  # layout drifted — take the full rebuild
            pass
    return build_index(sketches, num_shards=index.num_shards)


def _empty_shard() -> _Shard:
    """A landmark shard with no entries (the canonical empty layout —
    exactly what :class:`TZIndex` builds when no entry routes to a
    shard, so restricted and partially-built stores are byte-identical)."""
    keys = np.empty(0, dtype=np.int64)
    slot_key, slot_idx, mask, shift = _build_hash(keys)
    return _Shard(keys=keys, dists=np.empty(0, dtype=np.float64),
                  levels=np.empty(0, dtype=np.int64),
                  slot_key=slot_key, slot_idx=slot_idx, mask=mask,
                  shift=shift)


def restrict_index_shards(index: IndexStore, lo: int, hi: int) -> IndexStore:
    """A new store serving only landmark shards ``[lo, hi)`` — the unit a
    fleet host owns (``repro serve --shard-range LO:HI``).

    Router state (pivot tables, the dense top block, gateway arrays, net
    universes) is kept in full, so ``plan`` and ``finish`` on the
    restricted store behave exactly like the original's; only the
    shard-local tables outside the range are replaced by canonical empty
    ones.  ``shard_answer`` for an owned shard is bit-identical to the
    full store's, and the restriction is idempotent.  ``[0, S)`` returns
    the store itself unchanged.

    :raises ConfigError: on an invalid range or an unknown store type.
    """
    S = index.num_shards
    lo, hi = int(lo), int(hi)
    if not (0 <= lo < hi <= S):
        raise ConfigError(
            f"shard range [{lo}, {hi}) invalid for {S} shards")
    if (lo, hi) == (0, S):
        return index
    if isinstance(index, TZIndex):
        new = TZIndex.__new__(TZIndex)
        new.n, new.k, new.num_shards = index.n, index.k, S
        new.dense_top = index.dense_top
        new.sentinel_pivots = index.sentinel_pivots
        new.pivot_ids = index.pivot_ids
        new.pivot_dists = index.pivot_dists
        new.top_ids = index.top_ids
        new.top_col = index.top_col
        new.top_dist = index.top_dist
        new.shards = [sh if lo <= s < hi else _empty_shard()
                      for s, sh in enumerate(index.shards)]
        return new
    if isinstance(index, Stretch3Index):
        new = Stretch3Index.__new__(Stretch3Index)
        new.n, new.eps, new.num_shards = index.n, index.eps, S
        new.net_ids = index.net_ids
        dist = np.array(index.dist)
        for s, cols in enumerate(index._shard_cols):
            if not (lo <= s < hi):
                dist[:, cols] = np.inf
        new.dist = dist
        new._shard_cols = index._shard_cols
        return new
    if isinstance(index, CDGIndex):
        new = CDGIndex.__new__(CDGIndex)
        new.n, new.eps, new.k = index.n, index.eps, index.k
        new.num_shards = S
        new.gateway_ids = index.gateway_ids
        new.gateway_dists = index.gateway_dists
        new.net_ids = index.net_ids
        new._gw_slot = index._gw_slot
        new._sub = restrict_index_shards(index._sub, lo, hi)
        new._labels = None
        return new
    if isinstance(index, GracefulIndex):
        new = GracefulIndex.__new__(GracefulIndex)
        new.n, new.num_shards = index.n, S
        new.components = [restrict_index_shards(c, lo, hi)
                          for c in index.components]
        return new
    raise ConfigError(
        f"cannot shard-restrict a {type(index).__name__}")


# ----------------------------------------------------------------------
# buffer-pack plumbing: any store <-> (tag, meta, named arrays)
# ----------------------------------------------------------------------
#: index class -> serialization/pack type tag
INDEX_TAGS: dict[type, str] = {
    TZIndex: "tz_index",
    Stretch3Index: "stretch3_index",
    CDGIndex: "cdg_index",
    GracefulIndex: "graceful_index",
}
_TAG_TO_CLASS = {tag: cls for cls, tag in INDEX_TAGS.items()}


def index_to_pack(index: IndexStore, backing: str = "heap", *,
                  path: Optional[str] = None,
                  delete_file: bool = False) -> "PackedIndex":
    """Split any store into its physical arrays, copied once into a
    :class:`~repro.service.buffers.BufferPack` of the chosen backing.

    :param backing: ``"heap"``, ``"shared"``, or ``"mmap"``.
    :param path: target file for ``"mmap"``.
    :param delete_file: delete the mmap file on pack close.
    :raises ConfigError: for a store type without a pack encoding.
    """
    from repro.service.buffers import BufferPack, PackedIndex

    tag = INDEX_TAGS.get(type(index))
    if tag is None:
        raise ConfigError(
            f"no buffer-pack encoding for {type(index).__name__}")
    pack = BufferPack.from_arrays(index.pack_arrays(), backing=backing,
                                  path=path, delete_file=delete_file)
    return PackedIndex(tag=tag, meta=index.pack_meta(), pack=pack)


def index_from_pack(packed) -> IndexStore:
    """Rebuild a store as a pure-logic view over a pack — zero-copy,
    bit-identical answers for any backing.

    Accepts a :class:`~repro.service.buffers.PackedIndex` or a bare
    ``(tag, meta, BufferPack)`` triple.  The returned store keeps a
    reference to its pack source on ``_pack_source`` so serving layers
    can reuse (rather than re-copy) an already-shared backing.
    """
    tag, meta, pack = ((packed.tag, packed.meta, packed.pack)
                       if hasattr(packed, "pack") else packed)
    cls = _TAG_TO_CLASS.get(tag)
    if cls is None:
        raise ConfigError(f"unknown packed index tag {tag!r}")
    store = cls._from_pack(meta, pack.as_dict())
    store._pack_source = packed if hasattr(packed, "pack") else None
    return store


def index_from_handle(handle) -> IndexStore:
    """Attach to another process's packed index from its picklable
    handle ``(tag, meta, PackHandle)`` — the worker side of the
    shared-memory attach protocol."""
    from repro.service.buffers import BufferPack, PackedIndex

    tag, meta, pack_handle = handle
    packed = PackedIndex(tag=tag, meta=meta,
                         pack=BufferPack.attach(pack_handle))
    return index_from_pack(packed)
