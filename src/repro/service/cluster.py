"""The fleet subsystem: distributed shard fan-out and scatter/gather
construction across multiple :class:`~repro.service.transport.OracleServer`
hosts.

The paper computes distance sketches *distributedly*; this module is the
serving-side mirror of that idea.  A fleet is N frame-protocol hosts, each
owning a contiguous range of landmark shards (``repro serve
--shard-range LO:HI``), and a :class:`ClusterClient` that

* **plans client-side** — the routing state every scheme keeps outside
  its shards (TZ pivot tables and the dense top block, gateway arrays,
  net universes) travels in full inside every host's RPIX blob, so the
  client fetches it once from any host and runs ``plan``/``finish``
  locally;
* **fans probes out** — each host receives one ``probe`` frame carrying
  exactly the per-shard requests for the shards it owns, pipelined
  through the same request-id window ``dist_stream`` uses;
* **combines partials** — the store's own ``finish`` folds the gathered
  ``shard_answer`` responses by shard id, so fleet answers are
  **bit-identical** to single-host serving, including
  :class:`~repro.errors.QueryError` parity on disconnected graphs.

Epoch rule: one batch never mixes epochs.  Every probe reply is stamped
with the epoch that answered it; the client combines partials only when
every host (and its routing store) agree, refreshing and replanning
otherwise.  :meth:`ClusterClient.apply_updates` scatters an edge-change
batch to every host — repairs are deterministic functions of
``(graph, scheme, seed, changes)``, so a healthy fleet converges to the
same epoch — and refuses divergence with a typed
:class:`~repro.errors.ClusterError`.

Construction scatters too: :func:`build_shard_range` builds one host's
shard range (for TZ, by growing only the clusters of the landmarks the
range owns plus the top level every label carries — Lemma 3.2's
backstop), byte-identical to
:func:`~repro.service.index.restrict_index_shards` of a full build with
the same seed, and :func:`build_distributed` fans the ranges across
worker processes, returning the RPIX blobs the fleet hosts serve.

See ``docs/serving.md`` §10 for the operator's guide and
``docs/architecture.md`` for the fleet diagram.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional

import numpy as np

from repro.errors import ClusterError, ConfigError, ReproError
from repro.service.buffers import tree_to_bytes
from repro.service.index import (IndexStore, TZIndex, build_index,
                                 parse_pair_array, restrict_index_shards)
from repro.service.transport import (DEFAULT_PIPELINE_DEPTH, Endpoint,
                                     EpochStaleness, OracleServer,
                                     PipelineStats, _TcpTransport,
                                     connect, parse_endpoint)
from repro.service.updates import UpdateReport


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def even_ranges(num_shards: int, num_hosts: int) -> list[tuple[int, int]]:
    """Contiguous near-even shard ranges, one per host (the default
    placement everywhere a fleet is spawned: ``loopback_fleet``,
    ``build_distributed``, ``repro cluster-bench``).

    :raises ConfigError: when a host would end up with no shard.
    """
    if num_hosts < 1:
        raise ConfigError(f"num_hosts must be >= 1, got {num_hosts}")
    if num_hosts > num_shards:
        raise ConfigError(
            f"{num_hosts} hosts for {num_shards} shards — every host "
            f"needs at least one shard")
    base, rem = divmod(num_shards, num_hosts)
    ranges, lo = [], 0
    for i in range(num_hosts):
        hi = lo + base + (1 if i < rem else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ClusterSpec:
    """A fleet's membership — the parsed form of the
    ``cluster://host:port,host:port`` endpoint grammar."""

    hosts: tuple  # of (host, port)

    @classmethod
    def parse(cls, spec: Any) -> "ClusterSpec":
        """Normalize any fleet description: a ``cluster://`` (or single
        ``tcp://``) endpoint spec, a bare ``host:port,host:port`` list,
        an iterable of ``(host, port)`` pairs, or a spec object.

        :raises ConfigError: when no hosts can be extracted.
        """
        if isinstance(spec, ClusterSpec):
            return spec
        if isinstance(spec, str):
            if "://" not in spec:
                spec = f"cluster://{spec}"
            endpoint = parse_endpoint(spec)
            if endpoint.transport == "tcp":
                return cls(hosts=((endpoint.host, endpoint.port),))
            if endpoint.transport != "cluster":
                raise ConfigError(
                    f"a fleet spec wants cluster:// (or tcp:// for a "
                    f"one-host fleet), got {spec!r}")
            return cls(hosts=endpoint.options["hosts"])
        hosts = tuple((str(h), int(p)) for h, p in spec)
        if not hosts:
            raise ConfigError("cluster spec names no hosts")
        return cls(hosts=hosts)

    def describe(self) -> str:
        return "cluster://" + ",".join(f"{h}:{p}" for h, p in self.hosts)


# ----------------------------------------------------------------------
# the fleet session
# ----------------------------------------------------------------------
class ClusterClient:
    """A serving session over a fleet of shard-range hosts — the
    transport behind ``connect("cluster://h1:p1,h2:p2")``, also usable
    directly.

    Speaks the existing protocol-v2 frames to every host (one
    :class:`~repro.service.transport._TcpTransport` each, so probes ride
    the same pipelined id windows as single-host sessions).  ``plan``
    and ``finish`` run client-side on a routing store fetched from the
    fleet; only ``shard_answer`` work crosses the wire, scattered to the
    hosts that own each shard.  Answers — including
    :class:`~repro.errors.QueryError` behaviour — are bit-identical to
    one full host serving the same index.

    Any per-host failure surfaces as a typed
    :class:`~repro.errors.ClusterError` carrying the ``host:port`` →
    cause map, so a fleet with one dead host fails fast with the host
    list instead of a bare ``ConnectionError``; the surviving hosts'
    sessions stay live and a fresh client over them keeps answering for
    the shards they own.
    """

    name = "cluster"

    #: how many times a batch replans when a hot swap lands mid-flight
    _EPOCH_RETRIES = 4

    def __init__(self, hosts: Any, *, timeout: Optional[float] = None,
                 pipeline_depth: int = DEFAULT_PIPELINE_DEPTH):
        if pipeline_depth < 1:
            raise ConfigError(
                f"pipeline_depth must be >= 1, got {pipeline_depth}")
        self.spec = ClusterSpec.parse(hosts)
        self.pipeline_depth = int(pipeline_depth)
        self.pipeline = PipelineStats()
        self.staleness = EpochStaleness()
        self._apply_lock = threading.Lock()
        self._router_lock = threading.Lock()
        self._transports: dict[str, _TcpTransport] = {}
        causes: dict[str, Any] = {}
        for host, port in self.spec.hosts:
            key = f"{host}:{port}"
            if key in self._transports:
                self._close_all()
                raise ConfigError(f"duplicate host {key} in cluster spec")
            try:
                self._transports[key] = _TcpTransport(
                    Endpoint("tcp", host=host, port=port),
                    timeout=timeout, pipeline_depth=pipeline_depth)
            except (ConfigError, ConnectionError, OSError) as exc:
                causes[key] = exc
        if causes:
            self._close_all()
            raise ClusterError("cannot connect to the whole fleet", causes)
        try:
            self._validate_fleet()
            self._refresh_router()
        except ReproError:
            self._close_all()
            raise
        self.epoch = self._router_epoch
        self.last_result_epoch = self.epoch
        self.staleness.note_epoch(self.epoch)

    # -- membership ----------------------------------------------------
    def _validate_fleet(self) -> None:
        """Hello-frame consistency plus shard placement: every host must
        agree on ``(n, scheme, num_shards, updateable)``, and every
        shard must have an owner (the first host advertising it)."""
        first_key = next(iter(self._transports))
        first = self._transports[first_key]
        for attr in ("n", "scheme", "num_shards", "updateable"):
            disagree = {
                key: f"{attr}={getattr(t, attr)!r}"
                for key, t in self._transports.items()
                if getattr(t, attr) != getattr(first, attr)}
            if disagree:
                disagree[first_key] = f"{attr}={getattr(first, attr)!r}"
                raise ClusterError(
                    f"fleet hosts disagree on {attr}", disagree)
        self.n = first.n
        self.scheme = first.scheme
        self.num_shards = first.num_shards
        self.updateable = first.updateable
        owner: list[Optional[str]] = [None] * self.num_shards
        for key, t in self._transports.items():
            lo, hi = t.shard_range or (0, self.num_shards)
            for s in range(lo, hi):
                if owner[s] is None:
                    owner[s] = key
        missing = [s for s, o in enumerate(owner) if o is None]
        if missing:
            raise ClusterError(
                f"no host serves shard(s) {missing} of {self.num_shards}",
                {key: f"owns {list(t.shard_range or (0, self.num_shards))}"
                 for key, t in self._transports.items()})
        #: shard id -> owning host key
        self._owner = owner
        #: host key -> the sorted shard ids it answers for this client
        self._by_host: dict[str, list[int]] = {}
        for s, key in enumerate(owner):
            self._by_host.setdefault(key, []).append(s)

    def placement(self) -> dict[str, list[int]]:
        """Host ``"host:port"`` → the shard ids this session routes to
        it (hosts whose whole range is shadowed by earlier hosts are
        absent)."""
        return {key: list(shards) for key, shards in self._by_host.items()}

    # -- the routing store ---------------------------------------------
    def _refresh_router(self) -> None:
        """(Re)fetch the routing store: any host's RPIX blob carries the
        full ``plan``/``finish`` state (restriction only empties shard
        tables), so the first host serves as the source of truth."""
        key = next(iter(self._transports))
        try:
            index, epoch = self._transports[key].fetch_index_pinned(None)
        except (ConnectionError, ReproError) as exc:
            raise ClusterError("cannot fetch the fleet's routing index",
                               {key: exc}) from None
        with self._router_lock:
            self._router: IndexStore = index
            self._router_epoch: int = epoch

    def _router_snapshot(self) -> tuple[IndexStore, int]:
        with self._router_lock:
            return self._router, self._router_epoch

    # -- epoch bookkeeping (same rules as the tcp transport) -----------
    def _fold_epoch(self, epoch: int) -> None:
        self.epoch = max(self.epoch, epoch)
        self.staleness.note_epoch(self.epoch)

    def _note_result_epoch(self, epoch: int) -> None:
        self.last_result_epoch = epoch
        self.epoch = max(self.epoch, epoch)
        self.staleness.note_epoch(self.epoch)
        self.staleness.note_result(epoch, self.epoch)

    # -- the scatter/gather core ---------------------------------------
    def _post_probes(self, requests: list) -> dict[str, int]:
        """Scatter one probe frame per host (its owned shards' requests,
        in shard order); returns host → request id."""
        rids: dict[str, int] = {}
        causes: dict[str, Any] = {}
        for key, shards in self._by_host.items():
            body = tree_to_bytes(tuple(requests[s] for s in shards))
            try:
                rids[key] = self._transports[key].post_probe(shards, body)
            except (ConnectionError, ReproError) as exc:
                causes[key] = exc
        if causes:
            # keep the surviving hosts' sessions clean before failing
            self._drain_probes(rids)
            raise ClusterError("probe fan-out failed", causes)
        return rids

    def _gather_probes(self, rids: dict[str, int],
                       ) -> tuple[list, dict[str, int]]:
        """Await every host's reply; returns ``(responses, epochs)``
        with the partials scattered back into one shard-indexed list."""
        responses: list = [None] * self.num_shards
        epochs: dict[str, int] = {}
        causes: dict[str, Any] = {}
        for key, rid in rids.items():
            try:
                parts, epoch = self._transports[key].await_probe(rid)
            except (ConnectionError, ReproError) as exc:
                causes[key] = exc
                continue
            epochs[key] = epoch
            for s, part in zip(self._by_host[key], parts):
                responses[s] = part
        if causes:
            raise ClusterError("probe gather failed", causes)
        return responses, epochs

    def _drain_probes(self, rids: dict[str, int]) -> None:
        for key, rid in rids.items():
            try:
                self._transports[key].await_probe(rid)
            except (ConnectionError, ReproError):
                pass

    def _run_batch(self, arr: np.ndarray) -> tuple[np.ndarray, int]:
        """One batch end to end: plan on the routing store, scatter,
        gather, combine — retrying with a refreshed router when a hot
        swap lands mid-flight (partials from disagreeing epochs are
        never combined)."""
        stale: dict[str, Any] = {}
        for _ in range(self._EPOCH_RETRIES):
            router, repoch = self._router_snapshot()
            state, requests = router.plan(arr[:, 0], arr[:, 1])
            rids = self._post_probes(requests)
            responses, epochs = self._gather_probes(rids)
            if all(e == repoch for e in epochs.values()):
                return router.finish(state, responses), repoch
            stale = {key: f"epoch {e} (router at {repoch})"
                     for key, e in epochs.items() if e != repoch}
            self._refresh_router()
        raise ClusterError(
            f"fleet epochs did not settle within "
            f"{self._EPOCH_RETRIES} replans", stale)

    # -- the session surface -------------------------------------------
    def dist_many(self, pairs) -> np.ndarray:
        arr = parse_pair_array(pairs)
        if arr.size == 0:
            return np.empty(0, dtype=np.float64)
        answers, epoch = self._run_batch(arr)
        self._note_result_epoch(epoch)
        return answers

    def dist_stream(self, batches) -> Iterator[np.ndarray]:
        """Pipelined fleet streaming: up to ``pipeline_depth`` batches
        in flight, each scattered across every host's id window; yields
        answers in submit order.  A batch whose partials straddle a hot
        swap is transparently replanned against the settled epoch."""
        stats = self.pipeline
        window: deque = deque()
        feed = iter(batches)
        exhausted = False
        try:
            while True:
                while not exhausted and len(window) < self.pipeline_depth:
                    try:
                        pairs = next(feed)
                    except StopIteration:
                        exhausted = True
                        break
                    inflight = sum(1 for e in window if e is not None)
                    t0 = time.perf_counter()
                    arr = parse_pair_array(pairs)
                    if arr.size == 0:
                        window.append(None)
                        continue
                    router, repoch = self._router_snapshot()
                    state, requests = router.plan(arr[:, 0], arr[:, 1])
                    rids = self._post_probes(requests)
                    submit_cost = time.perf_counter() - t0
                    window.append((arr, router, repoch, state, rids, t0))
                    stats.requests += 1
                    stats.max_inflight = max(stats.max_inflight,
                                             inflight + 1)
                    if inflight:
                        stats.overlap_seconds += submit_cost
                if not window:
                    return
                entry = window.popleft()
                if entry is None:
                    yield np.empty(0, dtype=np.float64)
                    continue
                arr, router, repoch, state, rids, t0 = entry
                responses, epochs = self._gather_probes(rids)
                if all(e == repoch for e in epochs.values()):
                    answers, epoch = router.finish(state, responses), repoch
                else:
                    # a hot swap landed inside this batch's flight
                    # window: partials from mixed epochs are discarded
                    # and the batch replans against the settled fleet
                    self._refresh_router()
                    answers, epoch = self._run_batch(arr)
                stats.latencies.append(time.perf_counter() - t0)
                self._note_result_epoch(epoch)
                yield answers
        finally:
            for entry in window:
                if entry is not None:
                    self._drain_probes(entry[4])

    def pipeline_stats(self, reset: bool = False) -> dict:
        """Fleet-level pipelining telemetry of the ``dist_stream``
        window (requests here are whole batches, each fanned to every
        host)."""
        stats = self.pipeline
        out = dict(stats.summary(), depth=self.pipeline_depth,
                   latencies=list(stats.latencies))
        if reset:
            self.pipeline = PipelineStats()
        return out

    def staleness_stats(self, reset: bool = False) -> dict:
        out = self.staleness.summary()
        if reset:
            self.staleness = EpochStaleness()
            self.staleness.note_epoch(self.epoch)
        return out

    def apply_updates(self, changes) -> UpdateReport:
        """Scatter an edge-change batch to every host and hot-swap the
        fleet.  Repair is deterministic given the same
        ``(graph, scheme, seed, params)``, so healthy hosts converge to
        the same ``(epoch, mode)``; divergence (or any per-host
        failure) raises a typed :class:`~repro.errors.ClusterError`
        before a single mixed-epoch answer can be served — the routing
        store is refreshed only after the whole fleet agrees."""
        with self._apply_lock:
            reports: dict[str, UpdateReport] = {}
            causes: dict[str, Any] = {}
            for key, t in self._transports.items():
                try:
                    reports[key] = t.apply_updates(changes)
                except (ConnectionError, ReproError) as exc:
                    causes[key] = exc
            if causes:
                raise ClusterError("apply_updates failed on some hosts",
                                   causes)
            agreed = {(r.epoch, r.mode) for r in reports.values()}
            if len(agreed) > 1:
                raise ClusterError(
                    "fleet diverged after apply_updates",
                    {key: f"epoch {r.epoch} ({r.mode})"
                     for key, r in reports.items()})
            report = next(iter(reports.values()))
            if report.mode != "noop":
                self._refresh_router()
            self._fold_epoch(report.epoch)
            return report

    def stats(self) -> dict:
        """Fleet-level statistics: the shared identity, per-host server
        stats keyed ``"host:port"`` (each tagged with its advertised
        range and the shards this session routes to it), and the
        cluster pipeline counters."""
        per_host: dict[str, dict] = {}
        causes: dict[str, Any] = {}
        for key, t in self._transports.items():
            try:
                host_stats = t.stats()
            except (ConnectionError, ReproError) as exc:
                causes[key] = exc
                continue
            host_stats["shard_range"] = list(
                t.shard_range or (0, self.num_shards))
            host_stats["routed_shards"] = list(self._by_host.get(key, ()))
            per_host[key] = host_stats
        if causes:
            raise ClusterError("stats failed on some hosts", causes)
        return {"n": self.n, "scheme": self.scheme, "epoch": self.epoch,
                "updateable": self.updateable, "shards": self.num_shards,
                "hosts": per_host,
                "pipeline": dict(self.pipeline.summary(),
                                 depth=self.pipeline_depth)}

    def fetch_index(self, path: Optional[str] = None):
        """The full served store — only possible when some host serves
        every shard (a one-host fleet, or a full host fronted by range
        hosts); a partitioned fleet has no single whole-index source.

        :raises ConfigError: when every host is range-restricted.
        """
        for t in self._transports.values():
            if t.shard_range is None:
                return t.fetch_index(path)
        raise ConfigError(
            "every fleet host is shard-range-restricted — there is no "
            "whole index to fetch (pull per-host blobs over tcp://, or "
            "rebuild with build_distributed)")

    def close(self) -> None:
        self._close_all()

    def _close_all(self) -> None:
        for t in self._transports.values():
            try:
                t.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClusterClient({self.spec.describe()!r}, n={self.n}, "
                f"scheme={self.scheme}, epoch={self.epoch})")


# ----------------------------------------------------------------------
# fleets for tests, benchmarks, and docs
# ----------------------------------------------------------------------
@contextmanager
def loopback_fleet(source: Any, num_hosts: int, *,
                   num_shards: Optional[int] = None, jobs: int = 1,
                   memory: str = "heap", pool: str = "proc",
                   cache_size: int = 65536):
    """Spawn ``num_hosts`` shard-range hosts on loopback (background
    event loops) and yield ``(spec, servers)`` — ``spec`` is the
    ``cluster://...`` endpoint the fleet answers on.

    ``source`` is served by every host, physically restricted to its
    :func:`even_ranges` slice; pass a callable ``factory(i, lo, hi)``
    instead to give each host its own source (an updateable fleet wants
    one :class:`~repro.service.updates.UpdateableIndex` per host).
    ``num_shards`` is inferred when the source carries a shard count.
    """
    if callable(source) and not hasattr(source, "plan"):
        factory = source
    else:
        def factory(i, lo, hi):
            return source
        if num_shards is None:
            carrier = getattr(source, "index", source)
            num_shards = getattr(carrier, "num_shards", None)
    if num_shards is None:
        raise ConfigError(
            "loopback_fleet needs num_shards= when the source does not "
            "carry a shard count")
    servers: list[OracleServer] = []
    try:
        for i, (lo, hi) in enumerate(even_ranges(int(num_shards),
                                                 int(num_hosts))):
            server = OracleServer(factory(i, lo, hi), jobs=jobs,
                                  memory=memory, pool=pool,
                                  num_shards=int(num_shards),
                                  cache_size=cache_size,
                                  shard_range=(lo, hi))
            server.serve("127.0.0.1:0", block=False)
            servers.append(server)
        spec = "cluster://" + ",".join(
            f"{srv.address[0]}:{srv.address[1]}" for srv in servers)
        yield spec, servers
    finally:
        for server in servers:
            server.close()


# ----------------------------------------------------------------------
# distributed construction
# ----------------------------------------------------------------------
def build_shard_range(graph, scheme: str = "tz", *, lo: int, hi: int,
                      num_shards: int, seed=None, **params) -> IndexStore:
    """Build landmark shards ``[lo, hi)`` of the scheme's index — the
    per-host unit of :func:`build_distributed`.

    For ``tz`` this is a genuinely partial construction, mirroring the
    paper's per-landmark decomposition: clusters are grown only for the
    top-level landmarks (whose entries every label carries — the dense
    top block is Lemma 3.2's backstop) plus the sub-top landmarks the
    range owns (``lo <= w % num_shards < hi``), so a host's cluster
    work scales with its share of the landmark universe.  The result is
    **byte-identical** to
    :func:`~repro.service.index.restrict_index_shards` of a full build
    with the same seed.  The slack schemes' layouts couple every owner
    in dense tables, so they build fully and restrict — same bytes,
    no partial-work win.

    :raises ConfigError: on a bad range or missing scheme parameters.
    """
    if not (0 <= int(lo) < int(hi) <= int(num_shards)):
        raise ConfigError(
            f"shard range [{lo}, {hi}) invalid for {num_shards} shards")
    lo, hi, num_shards = int(lo), int(hi), int(num_shards)
    if scheme == "tz":
        from repro.tz.centralized import (assemble_sketches, cluster_table,
                                          compute_pivot_keys,
                                          merge_cluster_tables)
        from repro.tz.hierarchy import sample_hierarchy

        k = params.get("k")
        hierarchy = params.get("hierarchy")
        if k is None and hierarchy is None:
            raise ConfigError("tz scheme needs k (or an explicit hierarchy)")
        if hierarchy is None:
            hierarchy = sample_hierarchy(graph.n, int(k), seed=seed)
        pivot_keys = compute_pivot_keys(graph, hierarchy)
        top = hierarchy.k - 1
        roots = [int(w) for w in hierarchy.universe()
                 if hierarchy.level_of(int(w)) == top
                 or lo <= int(w) % num_shards < hi]
        table = cluster_table(graph, hierarchy, pivot_keys, roots)
        bunches = merge_cluster_tables(graph.n, [table])
        sketches = assemble_sketches(graph.n, hierarchy.k, pivot_keys,
                                     bunches)
        return restrict_index_shards(
            TZIndex(sketches, num_shards=num_shards), lo, hi)
    from repro.oracle.api import build_sketches

    built = build_sketches(graph, scheme, seed=seed, **params)
    return restrict_index_shards(
        build_index(built.sketches, num_shards=num_shards), lo, hi)


def _build_range_blob(graph, scheme, lo, hi, num_shards, seed,
                      params) -> tuple[tuple[int, int], bytes]:
    """Worker entry of :func:`build_distributed` (module-level so it
    pickles into a process pool)."""
    from repro.oracle.serialization import index_binary_bytes

    index = build_shard_range(graph, scheme, lo=lo, hi=hi,
                              num_shards=num_shards, seed=seed, **params)
    return (lo, hi), index_binary_bytes(index)


def build_distributed(graph, scheme: str = "tz", *, num_hosts: int,
                      num_shards: int, seed=None,
                      jobs: Optional[int] = None,
                      **params) -> list[tuple[tuple[int, int], bytes]]:
    """Scatter the index construction across ``num_hosts`` builders —
    one contiguous :func:`even_ranges` slice each — and gather the RPIX
    blobs their fleet hosts serve (``repro serve --shard-range LO:HI``
    each blob as a static source).

    Returns ``[((lo, hi), blob), ...]`` in range order.  Every blob is
    byte-identical to restricting a single full build of the same seed
    to the same range, which is what makes a fleet built this way answer
    bit-identically to one big host.

    For ``tz`` the hierarchy is sampled **once** here and shipped to
    every builder, so the scatter shares one random draw even with
    ``seed=None``; the other schemes resample per builder and therefore
    need an explicit ``seed`` when ``num_hosts > 1``.

    :param jobs: builder processes (default: one per host, capped by
        the CPU count); ``1`` builds serially in this process.
    """
    params = dict(params)
    if scheme == "tz" and params.get("hierarchy") is None:
        from repro.tz.hierarchy import sample_hierarchy

        k = params.get("k")
        if k is None:
            raise ConfigError("tz scheme needs k (or an explicit hierarchy)")
        params["hierarchy"] = sample_hierarchy(graph.n, int(k), seed=seed)
    elif scheme != "tz" and num_hosts > 1 and seed is None:
        raise ConfigError(
            f"{scheme} builders resample per host — pass an explicit "
            f"seed so the scatter shares one random draw")
    ranges = even_ranges(int(num_shards), int(num_hosts))
    if jobs is None:
        from repro.service.parallel import default_jobs

        jobs = min(len(ranges), default_jobs())
    if jobs <= 1 or len(ranges) == 1:
        return [_build_range_blob(graph, scheme, lo, hi, num_shards, seed,
                                  params)
                for lo, hi in ranges]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=int(jobs)) as pool:
        futures = [pool.submit(_build_range_blob, graph, scheme, lo, hi,
                               num_shards, seed, params)
                   for lo, hi in ranges]
        return [f.result() for f in futures]


def apply_updates_distributed(session: Any, changes) -> UpdateReport:
    """Scatter an edge-change batch across a fleet: every host repairs
    its own updateable store locally (the per-host repair scatter) and
    hot-swaps atomically; the call succeeds only when the whole fleet
    lands on the same epoch, so no batch ever combines partials from
    mixed epochs.  Accepts an
    :class:`~repro.service.transport.OracleClient` over a ``cluster://``
    endpoint or a bare :class:`ClusterClient`.

    :raises ConfigError: for a non-fleet session.
    :raises ClusterError: on any per-host failure or epoch divergence.
    """
    transport = getattr(session, "_transport", session)
    if not isinstance(transport, ClusterClient):
        raise ConfigError(
            "apply_updates_distributed wants a cluster:// session "
            "(use session.apply_updates for single hosts)")
    return transport.apply_updates(changes)


# ----------------------------------------------------------------------
# the fleet benchmark (E21 / ``repro cluster-bench``)
# ----------------------------------------------------------------------
def run_cluster_benchmark(source: Any, *, hosts: Iterable[int] = (1, 2, 4),
                          num_shards: Optional[int] = None,
                          queries: int = 2000, batch: int = 256,
                          seed: int = 0, jobs: int = 1) -> dict:
    """Loopback fleets of 1/2/4 hosts vs one full host, identity
    asserted unconditionally.

    Serves ``source`` once on a single full loopback host (the
    baseline), then on a ``loopback_fleet`` per entry of ``hosts``, and
    runs the same ``dist_many`` + ``dist_stream`` workload against
    every topology.  **Every** fleet's answers are compared bitwise
    against the baseline — a mismatch raises, it is never reported as a
    timing row — so the benchmark doubles as the fleet correctness
    oracle.  Timings are reported, never gated.
    """
    rows: list[dict] = []
    with OracleServer(source, jobs=jobs, num_shards=num_shards) as server:
        server.serve("127.0.0.1:0", block=False)
        n, scheme = server.n, server.scheme
        total_shards = server.num_shards
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, n, size=(int(queries), 2), dtype=np.int64)
        batches = [arr[i:i + int(batch)]
                   for i in range(0, arr.shape[0], int(batch))]
        addr = f"tcp://{server.address[0]}:{server.address[1]}"
        with connect(addr) as session:
            t0 = time.perf_counter()
            reference = [session.dist_many(b) for b in batches]
            many_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            ref_stream = list(session.dist_stream(batches))
            stream_s = time.perf_counter() - t0
        for got, ref in zip(ref_stream, reference):
            if not np.array_equal(got, ref):  # pragma: no cover
                raise AssertionError("single-host stream diverged")
        baseline = {"hosts": 0, "topology": "single",
                    "dist_many_s": many_s, "dist_stream_s": stream_s,
                    "qps_many": queries / many_s if many_s else 0.0,
                    "identical": True}
        rows.append(baseline)

    for num_hosts in hosts:
        num_hosts = int(num_hosts)
        with loopback_fleet(source, num_hosts, num_shards=total_shards,
                            jobs=jobs) as (spec, servers):
            with connect(spec) as session:
                t0 = time.perf_counter()
                got_many = [session.dist_many(b) for b in batches]
                many_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                got_stream = list(session.dist_stream(batches))
                stream_s = time.perf_counter() - t0
        for got, ref in zip(got_many + got_stream, reference + reference):
            if not np.array_equal(got, ref):
                raise AssertionError(
                    f"fleet answers diverged from the single host at "
                    f"{num_hosts} hosts")
        rows.append({"hosts": num_hosts, "topology": "fleet",
                     "dist_many_s": many_s, "dist_stream_s": stream_s,
                     "qps_many": queries / many_s if many_s else 0.0,
                     "identical": True})
    return {"n": n, "scheme": scheme, "num_shards": total_shards,
            "queries": int(queries), "batch": int(batch),
            "seed": int(seed), "rows": rows}
