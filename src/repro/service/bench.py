"""Serving benchmark: batched engine vs the single-query loop.

One routine, shared by the ``repro serve-bench`` CLI subcommand and the
E14/E15 benchmarks, so the numbers the docs quote and the numbers a user
measures come from the same code path.  The routine always cross-checks
that the batched answers equal the single-query answers exactly before
reporting throughput — a benchmark of wrong answers is worthless.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, ensure_rng
from repro.service.engine import QueryEngine
from repro.service.index import scheme_name_of


def sample_query_pairs(n: int, queries: int, seed: SeedLike = 0) -> np.ndarray:
    """A reproducible ``(queries, 2)`` workload of uniform random pairs."""
    rng = ensure_rng(seed)
    return rng.integers(0, n, size=(queries, 2), dtype=np.int64)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_serve_benchmark(sketches: Sequence[Any], queries: int = 1000,
                        batch: Optional[int] = None, seed: SeedLike = 0,
                        repeats: int = 3, cache_size: int = 0,
                        num_shards: int = 1, jobs: int = 1) -> dict:
    """Time ``queries`` random queries answered one-by-one vs in batches.

    :param batch: batch size for the engine path (default: the whole
        workload in one batch).
    :param cache_size: engine result-cache capacity; the default 0
        measures the raw vectorized path (cold-cache throughput).
    :param num_shards: landmark shard count in the pre-built index.
    :param jobs: worker processes behind the shards (``1`` = in-process;
        clamped to ``num_shards``, and the report shows the effective
        count).

    Returns a JSON-ready dict with per-path wall times, queries/second,
    the speedup, the detected scheme, and an ``identical`` flag (batched
    == single, bitwise).
    """
    if queries < 1:
        raise ConfigError(f"queries must be >= 1, got {queries}")
    engine = QueryEngine(sketches, cache_size=cache_size,
                         num_shards=num_shards, jobs=jobs)
    try:
        pairs = sample_query_pairs(engine.n, queries, seed=seed)
        if batch is None or batch > queries:
            batch = queries
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")

        ref = np.asarray([engine.reference_query(int(u), int(v))
                          for u, v in pairs])

        def single_loop():
            for u, v in pairs:
                engine.reference_query(int(u), int(v))

        def batched_loop():
            engine.clear_cache()
            out = np.empty(queries, dtype=np.float64)
            for lo in range(0, queries, batch):
                out[lo:lo + batch] = engine.dist_many(pairs[lo:lo + batch])
            return out

        batched_answers = batched_loop()
        t_single = _best_of(repeats, single_loop)
        t_batched = _best_of(repeats, batched_loop)
        return {
            "n": engine.n,
            "scheme": scheme_name_of(sketches),
            "queries": int(queries),
            "batch": int(batch),
            "shards": int(num_shards),
            # the engine clamps jobs to the shard count (a shard is the
            # unit of work) — report the worker count that actually served
            "jobs": int(engine.jobs),
            "cache_size": int(cache_size),
            "single_seconds": t_single,
            "batched_seconds": t_batched,
            "single_qps": queries / t_single,
            "batched_qps": queries / t_batched,
            "speedup": t_single / t_batched,
            "identical": bool(np.array_equal(ref, batched_answers)),
        }
    finally:
        engine.close()
