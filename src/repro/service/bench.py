"""Serving benchmark: batched engine vs the single-query loop.

One routine, shared by the ``repro serve-bench`` CLI subcommand and the
E14/E15/E15b benchmarks, so the numbers the docs quote and the numbers a
user measures come from the same code path.  The routine always
cross-checks that the batched answers equal the single-query answers
exactly before reporting throughput — a benchmark of wrong answers is
worthless.

Besides the wall totals the report carries a ``phases`` block — the
cumulative plan / shard_answer / finish / IPC seconds of one measured
batched pass — so an IPC-bound configuration (the E15 regression story)
is diagnosable from a single run: if ``ipc_seconds`` dominates
``shard_answer_seconds``, the workers are starved by the transport, and
``--memory shared`` (or bigger batches) is the fix.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.rng import SeedLike, ensure_rng
from repro.service.engine import QueryEngine
from repro.service.index import (IndexStore, scheme_name_of,
                                 scheme_name_of_index)


def sample_query_pairs(n: int, queries: int, seed: SeedLike = 0) -> np.ndarray:
    """A reproducible ``(queries, 2)`` workload of uniform random pairs."""
    rng = ensure_rng(seed)
    return rng.integers(0, n, size=(queries, 2), dtype=np.int64)


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_serve_benchmark(sketches: Optional[Sequence[Any]] = None,
                        queries: int = 1000,
                        batch: Optional[int] = None, seed: SeedLike = 0,
                        repeats: int = 3, cache_size: int = 0,
                        num_shards: int = 1, jobs: int = 1,
                        memory: str = "heap", pool: str = "proc",
                        index: Optional[IndexStore] = None) -> dict:
    """Time ``queries`` random queries answered one-by-one vs in batches.

    :param sketches: the per-node sketch set to serve (omit when passing
        a pre-built ``index`` instead).
    :param batch: batch size for the engine path (default: the whole
        workload in one batch).
    :param cache_size: engine result-cache capacity; the default 0
        measures the raw vectorized path (cold-cache throughput).
    :param num_shards: landmark shard count in the pre-built index
        (ignored when ``index`` is given — its own shard count rules).
    :param jobs: workers behind the shards (``1`` = in-process;
        clamped to the shard count, and the report shows the effective
        count).
    :param memory: serving data plane — ``heap`` | ``shared`` | ``mmap``
        (see :class:`~repro.service.workers.ShardServer`).
    :param pool: shard execution plane for ``jobs > 1`` — ``proc``
        (worker processes) or ``thread`` (a GIL-releasing thread pool).
    :param index: serve a pre-built store (e.g. loaded from a binary
        container) instead of building one from sketches; the
        single-query baseline is then the store's own one-pair path.

    Returns a JSON-ready dict with per-path wall times, queries/second,
    the speedup, the detected scheme, per-phase timings of one batched
    pass, and an ``identical`` flag (batched == single, bitwise).
    """
    if queries < 1:
        raise ConfigError(f"queries must be >= 1, got {queries}")
    if (sketches is None) == (index is None):
        raise ConfigError(
            "run_serve_benchmark wants exactly one of sketches= or index=")
    if index is not None:
        engine = QueryEngine.from_index(index, cache_size=cache_size,
                                        jobs=jobs, memory=memory, pool=pool,
                                        _deprecation=False)
        scheme = (scheme_name_of_index(index) or "?")
    else:
        engine = QueryEngine(sketches, cache_size=cache_size,
                             num_shards=num_shards, jobs=jobs,
                             memory=memory, pool=pool, _deprecation=False)
        scheme = scheme_name_of(sketches)
    try:
        pairs = sample_query_pairs(engine.n, queries, seed=seed)
        if batch is None or batch > queries:
            batch = queries
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")

        ref = np.asarray([engine.reference_query(int(u), int(v))
                          for u, v in pairs])

        def single_loop():
            for u, v in pairs:
                engine.reference_query(int(u), int(v))

        def batched_loop():
            engine.clear_cache()
            out = np.empty(queries, dtype=np.float64)
            for lo in range(0, queries, batch):
                out[lo:lo + batch] = engine.dist_many(pairs[lo:lo + batch])
            return out

        batched_answers = batched_loop()
        t_single = _best_of(repeats, single_loop)
        t_batched = _best_of(repeats, batched_loop)
        # one more instrumented pass for the per-phase story
        engine.reset_phase_timings()
        batched_loop()
        phases = engine.phase_timings()
        return {
            "n": engine.n,
            "scheme": scheme,
            "queries": int(queries),
            "batch": int(batch),
            "shards": int(engine.index.num_shards
                          if engine.index is not None else num_shards),
            # the engine clamps jobs to the shard count (a shard is the
            # unit of work) — report the worker count that actually served
            "jobs": int(engine.jobs),
            "memory": memory,
            "pool": pool,
            "cache_size": int(cache_size),
            "single_seconds": t_single,
            "batched_seconds": t_batched,
            "single_qps": queries / t_single,
            "batched_qps": queries / t_batched,
            "speedup": t_single / t_batched,
            "phases": phases,
            "identical": bool(np.array_equal(ref, batched_answers)),
        }
    finally:
        engine.close()


def run_connect_benchmark(spec: str, source=None, queries: int = 1000,
                          batch: Optional[int] = None, seed: SeedLike = 0,
                          repeats: int = 3) -> dict:
    """Time a query workload through a transport session — the
    ``serve-bench --connect`` harness and the E17 experiment.

    Opens one :class:`~repro.service.transport.OracleClient` with
    :func:`~repro.service.transport.connect` and measures three paths
    over the same session: the per-pair loop (``client.dist``), the
    batched path (``client.dist_many`` per batch), and the pipelined
    stream (``client.dist_stream`` over all batches — the
    double-buffered dispatch on local pooled transports).  Batched and
    streamed answers are cross-checked bitwise against the per-pair
    loop before any throughput is reported.

    :param spec: endpoint spec (``inproc://…``, ``proc://…``,
        ``tcp://host:port``).
    :param source: what the session serves — required for local
        transports, forbidden for ``tcp://`` (the server owns the
        index).
    """
    from repro.service.transport import connect

    if queries < 1:
        raise ConfigError(f"queries must be >= 1, got {queries}")
    client = connect(spec, source)
    try:
        pairs = sample_query_pairs(client.n, queries, seed=seed)
        if batch is None or batch > queries:
            batch = queries
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        chunks = [pairs[lo:lo + batch] for lo in range(0, queries, batch)]

        ref = np.asarray([client.dist(int(u), int(v)) for u, v in pairs])

        def single_loop():
            for u, v in pairs:
                client.dist(int(u), int(v))

        def batched_loop():
            return np.concatenate([client.dist_many(chunk)
                                   for chunk in chunks])

        def streamed_loop():
            return np.concatenate(list(client.dist_stream(chunks)))

        batched = batched_loop()
        streamed = streamed_loop()
        t_single = _best_of(repeats, single_loop)
        t_batched = _best_of(repeats, batched_loop)
        t_streamed = _best_of(repeats, streamed_loop)
        stats = client.stats()
        # the session's result cache is server-side configuration this
        # harness cannot reset over tcp; the reference loop above warms
        # it, so a cache-enabled server reports lookup throughput — the
        # cache block below makes that visible in the report (benchmark
        # against a cache_size=0 server, as E17 does, for serving cost)
        return {
            "endpoint": spec,
            "transport": client.transport,
            "n": client.n,
            "scheme": client.scheme,
            "epoch": client.epoch,
            "queries": int(queries),
            "batch": int(batch),
            "single_seconds": t_single,
            "batched_seconds": t_batched,
            "streamed_seconds": t_streamed,
            "single_qps": queries / t_single,
            "batched_qps": queries / t_batched,
            "streamed_qps": queries / t_streamed,
            "speedup": t_single / t_batched,
            "server_cache_size": stats.get("cache_size"),
            "server_cache": stats.get("cache"),
            "phases": stats.get("phases"),
            "identical": bool(np.array_equal(ref, batched)
                              and np.array_equal(ref, streamed)),
        }
    finally:
        client.close()


def _percentiles_ms(latencies: Sequence[float]) -> dict:
    arr = np.asarray(list(latencies), dtype=np.float64)
    if arr.size == 0:
        return {"p50_ms": None, "p99_ms": None}
    return {"p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p99_ms": float(np.percentile(arr, 99) * 1e3)}


def run_load_benchmark(spec: str, clients: int = 4, queries: int = 1000,
                       batch: Optional[int] = None, seed: SeedLike = 0,
                       depth: Optional[int] = None,
                       phase_timeout: float = 600.0) -> dict:
    """Closed-loop multi-client load generator — the ``serve-bench
    --clients N --connect`` harness and the E18 experiment.

    ``clients`` threads each open their **own** tcp session against the
    server at ``spec`` and push a distinct seeded workload of
    ``queries`` pairs through it twice, barrier-synchronized so every
    client runs each mode at the same time:

    1. **sequential** — one ``dist_many`` per batch, one request in
       flight per connection (the protocol-v1 behaviour, the baseline);
    2. **pipelined** — one ``dist_stream`` over all batches with a
       ``depth``-deep request-id window.

    Answers from the two passes are cross-checked bitwise per client
    (distinct per-client workloads also catch cross-request reply
    mixups under multiplexing).  The report carries per-client rows
    (qps per mode, ``max_inflight``, ``overlap_seconds``, p50/p99 ms
    per mode) plus aggregate percentiles and total throughput — the
    numbers ``BENCH_E18-load.json`` tracks.

    :param spec: a ``tcp://host:port`` endpoint (the load generator
        measures the wire; local transports have no wire to pipeline).
    :param depth: pipelining window per session (default: the
        transport's default, 4).
    :param phase_timeout: seconds any one barrier phase (connect,
        sequential pass, pipelined pass) may take before the run aborts
        with an error — a hung session must surface as a failure, not
        hang the benchmark forever.
    """
    from repro.service.transport import connect, parse_endpoint

    if parse_endpoint(spec).transport != "tcp":
        raise ConfigError(
            f"the load benchmark drives tcp:// sessions, got {spec!r}")
    if clients < 1:
        raise ConfigError(f"clients must be >= 1, got {clients}")
    if queries < 1:
        raise ConfigError(f"queries must be >= 1, got {queries}")
    if phase_timeout <= 0:
        raise ConfigError(
            f"phase_timeout must be > 0, got {phase_timeout}")

    # three sync points: all sessions up / sequential pass / pipelined
    # pass; the main thread participates to time each phase's wall
    barrier = threading.Barrier(clients + 1)
    rows: list = [None] * clients
    errors: list = []

    def worker(cid: int) -> None:
        try:
            client = connect(spec, pipeline_depth=depth)
        except Exception as exc:  # noqa: BLE001 - reported, then re-raised
            errors.append((cid, exc))
            barrier.abort()
            return
        try:
            pairs = sample_query_pairs(client.n, queries,
                                       seed=seed + 7919 * (cid + 1))
            size = batch
            if size is None or size > queries:
                size = max(1, queries // 8)
            chunks = [pairs[lo:lo + size]
                      for lo in range(0, queries, size)]

            barrier.wait(phase_timeout)  # sessions up
            seq_lat = []
            t0 = time.perf_counter()
            seq_answers = []
            for chunk in chunks:
                t_req = time.perf_counter()
                seq_answers.append(client.dist_many(chunk))
                seq_lat.append(time.perf_counter() - t_req)
            t_seq = time.perf_counter() - t0
            seq = np.concatenate(seq_answers)

            barrier.wait(phase_timeout)  # sequential done everywhere
            client.pipeline_stats(reset=True)
            t0 = time.perf_counter()
            piped = np.concatenate(list(client.dist_stream(chunks)))
            t_pipe = time.perf_counter() - t0
            pstats = client.pipeline_stats(reset=True)

            barrier.wait(phase_timeout)  # pipelined done everywhere
            rows[cid] = {
                "client": cid,
                "queries": int(queries),
                "batch": int(size),
                "seq_seconds": t_seq,
                "pipe_seconds": t_pipe,
                "seq_qps": queries / t_seq,
                "pipe_qps": queries / t_pipe,
                "max_inflight": pstats["max_inflight"],
                "overlap_seconds": pstats["overlap_seconds"],
                "seq": _percentiles_ms(seq_lat),
                "pipe": _percentiles_ms(pstats["latencies"]),
                "_seq_lat": seq_lat,
                "_pipe_lat": pstats["latencies"],
                "identical": bool(np.array_equal(seq, piped)),
            }
        except threading.BrokenBarrierError:
            pass  # another client failed; its error is recorded
        except Exception as exc:  # noqa: BLE001 - reported to the caller
            errors.append((cid, exc))
            barrier.abort()
        finally:
            client.close()

    threads = [threading.Thread(target=worker, args=(cid,), daemon=True,
                                name=f"load-client-{cid}")
               for cid in range(clients)]
    for t in threads:
        t.start()
    walls = {}
    stalled = False
    try:
        # a timed-out wait breaks the barrier for every participant, so
        # one hung session aborts the whole run instead of wedging it
        barrier.wait(phase_timeout)
        t0 = time.perf_counter()
        barrier.wait(phase_timeout)
        walls["seq_wall_seconds"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        barrier.wait(phase_timeout)
        walls["pipe_wall_seconds"] = time.perf_counter() - t0
    except threading.BrokenBarrierError:
        stalled = True
    for t in threads:
        t.join(timeout=phase_timeout)
    if errors:
        cid, exc = errors[0]
        raise ReproError(f"load client {cid} failed: {exc}") from exc
    if stalled or any(row is None for row in rows):
        missing = [cid for cid, row in enumerate(rows) if row is None]
        raise ReproError(
            f"load benchmark stalled: clients {missing or '(none)'} did "
            f"not finish within phase_timeout={phase_timeout:.0f}s")

    seq_lat = [x for row in rows for x in row["_seq_lat"]]
    pipe_lat = [x for row in rows for x in row["_pipe_lat"]]
    for row in rows:
        del row["_seq_lat"], row["_pipe_lat"]
    total = clients * queries
    return {
        "endpoint": spec,
        "clients": int(clients),
        "queries_per_client": int(queries),
        "depth": int(depth) if depth is not None else None,
        **walls,
        "seq_total_qps": total / walls["seq_wall_seconds"],
        "pipe_total_qps": total / walls["pipe_wall_seconds"],
        "seq": _percentiles_ms(seq_lat),
        "pipe": _percentiles_ms(pipe_lat),
        "per_client": rows,
        "identical": all(row["identical"] for row in rows),
    }
