"""Parallel centralized TZ preprocessing (fan-out over cluster roots).

The [TZ05] preprocessing splits into a small shared stage — sampling the
hierarchy and running one multi-source Dijkstra per level — and the
dominant stage: one truncated cluster-growing Dijkstra *per vertex*.  The
per-root computations are completely independent (the same separability
DiPOA exploits across subproblems), so this module fans them across
``multiprocessing`` workers and merges the shards deterministically.

Determinism contract: for a fixed seed, ``jobs=1`` and ``jobs=N`` produce
*byte-identical* serialized sketch sets.  Two ingredients make that true:

* every worker computes the exact same cluster dict a serial run would
  (the computation consumes no randomness and no shared mutable state), and
* :func:`~repro.tz.centralized.merge_cluster_tables` inserts entries in
  canonical ``(level, root)`` order, so bunch dict iteration order — which
  the JSON wire format exposes — is independent of the sharding.

Roots are dealt round-robin (``sources[j::jobs]``) so each worker gets a
balanced mix of low-level roots (big clusters) and high-level roots.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Optional

from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.rng import SeedLike
from repro.tz.centralized import (assemble_sketches, cluster_table,
                                  compute_pivot_keys, merge_cluster_tables)
from repro.tz.hierarchy import Hierarchy, sample_hierarchy
from repro.tz.sketch import TZSketch

# Worker-global build inputs, installed once per worker by the pool
# initializer (cheaper than pickling the graph into every task).
_WORKER_STATE: dict = {}


def _init_worker(graph, hierarchy, pivot_keys) -> None:
    _WORKER_STATE["build"] = (graph, hierarchy, pivot_keys)


def _grow_clusters(sources: list[int]):
    graph, hierarchy, pivot_keys = _WORKER_STATE["build"]
    return cluster_table(graph, hierarchy, pivot_keys, sources)


def default_jobs() -> int:
    """Worker count used when ``jobs`` is not given: one per CPU."""
    return max(1, os.cpu_count() or 1)


def build_tz_sketches_parallel(graph: Graph, k: Optional[int] = None,
                               hierarchy: Optional[Hierarchy] = None,
                               seed: SeedLike = None,
                               jobs: Optional[int] = None,
                               ) -> tuple[list[TZSketch], Hierarchy]:
    """Centralized [TZ05] preprocessing with the cluster stage fanned
    across ``jobs`` worker processes.

    Drop-in replacement for
    :func:`~repro.tz.centralized.build_tz_sketches_centralized`: same
    parameters plus ``jobs``, and — for a shared seed/hierarchy — the
    *identical* sketch set, whatever the worker count.
    """
    if hierarchy is None:
        if k is None:
            raise ConfigError("provide k or hierarchy")
        hierarchy = sample_hierarchy(graph.n, k, seed=seed)
    elif k is not None and k != hierarchy.k:
        raise ConfigError(f"k={k} conflicts with hierarchy.k={hierarchy.k}")
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")

    pivot_keys = compute_pivot_keys(graph, hierarchy)
    sources = [int(w) for w in hierarchy.universe()]
    jobs = min(jobs, len(sources))
    if jobs <= 1:
        tables = [cluster_table(graph, hierarchy, pivot_keys, sources)]
    else:
        chunks = [sources[j::jobs] for j in range(jobs)]
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=jobs, initializer=_init_worker,
                      initargs=(graph, hierarchy, pivot_keys)) as pool:
            tables = pool.map(_grow_clusters, chunks)
    bunches = merge_cluster_tables(graph.n, tables)
    return assemble_sketches(graph.n, hierarchy.k, pivot_keys,
                             bunches), hierarchy
