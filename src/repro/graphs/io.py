"""Minimal edge-list serialization.

Format: a header line ``# nodes <n>`` followed by one ``u v w`` line per
edge.  Used by the examples to persist generated workloads so experiment
runs can be replayed byte-identically.
"""

from __future__ import annotations

import os
from typing import Union

from repro.errors import GraphError
from repro.graphs.graph import Graph

PathLike = Union[str, "os.PathLike[str]"]


def write_edgelist(g: Graph, path: PathLike) -> None:
    """Write ``g`` to ``path`` in the edge-list format."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(f"# nodes {g.n}\n")
        for u, v, w in g.edges():
            fh.write(f"{u} {v} {w:.12g}\n")


def read_edgelist(path: PathLike) -> Graph:
    """Read a graph previously written by :func:`write_edgelist`."""
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().split()
        if len(header) != 3 or header[0] != "#" or header[1] != "nodes":
            raise GraphError(f"{path}: malformed header {' '.join(header)!r}")
        g = Graph(int(header[2]))
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 3:
                raise GraphError(f"{path}:{lineno}: expected 'u v w'")
            g.add_edge(int(parts[0]), int(parts[1]), float(parts[2]))
    return g
