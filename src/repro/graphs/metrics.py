"""Exact distance computations and the two diameter notions.

``apsp`` is the ground truth every stretch measurement compares against; it
is vectorized through :func:`scipy.sparse.csgraph.dijkstra` (the hot path of
the evaluation pipeline, per the profiling-first guidance).

``shortest_path_diameter`` computes the paper's ``S`` (Section 2.2): the
maximum over all pairs ``u, v`` of the *minimum hop count* among all
shortest (by weight) ``u``-``v`` paths.  ``S`` lower-bounds any distance
computation and appears in every round bound of the paper, so experiments
report it alongside measured rounds.  It is computed with a per-source
Dijkstra over lexicographic ``(distance, hops)`` keys.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

from repro.errors import GraphError
from repro.graphs.graph import Graph


def apsp(g: Graph) -> np.ndarray:
    """All-pairs shortest-path distance matrix (``float64``, shape (n, n)).

    Entries are ``inf`` for disconnected pairs (validated graphs are
    connected, but the function itself does not require it).
    """
    if g.n == 1:
        return np.zeros((1, 1))
    return _csgraph_dijkstra(g.to_csr(), directed=False)


def apsp_hops(g: Graph) -> np.ndarray:
    """All-pairs *hop* distance matrix (treat every weight as 1)."""
    if g.n == 1:
        return np.zeros((1, 1))
    csr = g.to_csr().copy()
    csr.data[:] = 1.0
    return _csgraph_dijkstra(csr, directed=False)


def hop_diameter(g: Graph) -> int:
    """The paper's ``D``: max over pairs of the minimum number of hops."""
    h = apsp_hops(g)
    if not np.all(np.isfinite(h)):
        raise GraphError("hop diameter undefined: graph is disconnected")
    return int(h.max())


def weighted_diameter(g: Graph) -> float:
    """Max over pairs of the weighted distance."""
    d = apsp(g)
    if not np.all(np.isfinite(d)):
        raise GraphError("diameter undefined: graph is disconnected")
    return float(d.max())


def single_source_hops_on_shortest_paths(g: Graph, source: int) -> tuple[np.ndarray, np.ndarray]:
    """Dijkstra from ``source`` with lexicographic ``(dist, hops)`` keys.

    Returns ``(dist, hops)`` arrays where ``hops[v]`` is the minimum hop
    count among all minimum-weight ``source``-``v`` paths — exactly the
    quantity ``h(source, v)`` from the paper's definition of ``S``.
    """
    n = g.n
    dist = np.full(n, np.inf)
    hops = np.full(n, np.inf)
    dist[source] = 0.0
    hops[source] = 0.0
    pq: list[tuple[float, float, int]] = [(0.0, 0.0, source)]
    while pq:
        d, h, u = heapq.heappop(pq)
        if (d, h) > (dist[u], hops[u]):
            continue
        for v, w in g.neighbors(u).items():
            nd, nh = d + w, h + 1.0
            if nd < dist[v] or (nd == dist[v] and nh < hops[v]):
                dist[v] = nd
                hops[v] = nh
                heapq.heappush(pq, (nd, nh, v))
    return dist, hops


def shortest_path_diameter(g: Graph) -> int:
    """The paper's ``S = max_{u,v} h(u, v)`` (Section 2.2).

    ``D <= S`` always; with unit weights ``S == D``.
    """
    best = 0.0
    for s in g.nodes():
        _, hops = single_source_hops_on_shortest_paths(g, s)
        if not np.all(np.isfinite(hops)):
            raise GraphError("S undefined: graph is disconnected")
        best = max(best, float(hops.max()))
    return int(best)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics reported by every experiment table row."""

    n: int
    m: int
    hop_diameter: int
    shortest_path_diameter: int
    weighted_diameter: float
    max_weight: float

    def as_row(self) -> dict:
        return {
            "n": self.n,
            "m": self.m,
            "D": self.hop_diameter,
            "S": self.shortest_path_diameter,
            "wdiam": self.weighted_diameter,
        }


def graph_stats(g: Graph) -> GraphStats:
    """Compute the full :class:`GraphStats` bundle for ``g``."""
    return GraphStats(
        n=g.n,
        m=g.m,
        hop_diameter=hop_diameter(g),
        shortest_path_diameter=shortest_path_diameter(g),
        weighted_diameter=weighted_diameter(g),
        max_weight=g.max_weight(),
    )
