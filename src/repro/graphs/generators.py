"""Topology generators for the experiment suite.

Each generator returns a connected :class:`~repro.graphs.graph.Graph` on
nodes ``0..n-1``.  Randomized generators accept a ``seed`` (int or numpy
``Generator``); topologies that networkx can build are delegated to
networkx and then relabeled/connected-checked, matching the paper's model
requirements.

The experiment suite (DESIGN.md Section 4) uses:

* ``erdos_renyi`` — the unstructured baseline; low hop diameter.
* ``barabasi_albert`` — power-law / P2P-overlay-like topologies
  (the paper's motivating application, Section 2.1).
* ``grid2d`` and ``ring`` — high-diameter structured networks where the
  ``S``-dependence of the round bounds is visible.
* ``random_geometric`` — the "network coordinate" setting (Vivaldi/Meridian
  comparison point in Section 1): distances correlate with geometry.
* ``caterpillar`` / ``star_path`` — pathological instances where the
  shortest-path diameter ``S`` vastly exceeds the hop diameter ``D``,
  exercising the paper's D-vs-S discussion (Section 2.1).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.rng import SeedLike, ensure_rng


def _connect_components(g: Graph, rng: np.random.Generator, weight: float = 1.0) -> None:
    """Add minimal random edges to make ``g`` connected (used by random
    generators so that every returned graph satisfies the paper's model)."""
    # union-find over current edges
    parent = list(range(g.n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for u, v, _ in g.edges():
        union(u, v)
    roots: dict[int, list[int]] = {}
    for u in g.nodes():
        roots.setdefault(find(u), []).append(u)
    comps = list(roots.values())
    for a, b in zip(comps, comps[1:]):
        u = int(rng.choice(a))
        v = int(rng.choice(b))
        g.add_edge(u, v, weight)
        union(u, v)


def erdos_renyi(n: int, p: Optional[float] = None, seed: SeedLike = None) -> Graph:
    """G(n, p) with a connectivity repair pass.

    ``p`` defaults to ``2 ln n / n`` (safely above the connectivity
    threshold).  Unit weights; use :mod:`repro.graphs.weights` to reweight.
    """
    rng = ensure_rng(seed)
    if p is None:
        p = min(1.0, 2.0 * math.log(max(n, 2)) / max(n, 1))
    if not (0.0 <= p <= 1.0):
        raise GraphError(f"p must be in [0,1], got {p}")
    g = Graph(n)
    if n > 1 and p > 0:
        # vectorized upper-triangle coin flips
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.shape[0]) < p
        for u, v in zip(iu[mask], ju[mask]):
            g.add_edge(int(u), int(v), 1.0)
    _connect_components(g, rng)
    return g


def barabasi_albert(n: int, m_attach: int = 2, seed: SeedLike = None) -> Graph:
    """Preferential-attachment graph (power-law degrees, P2P-like)."""
    rng = ensure_rng(seed)
    if n < 2:
        return Graph(n)
    m_attach = max(1, min(m_attach, n - 1))
    g = Graph(n)
    # start from a small clique of m_attach+1 nodes
    core = m_attach + 1
    for u, v in itertools.combinations(range(min(core, n)), 2):
        g.add_edge(u, v, 1.0)
    # repeated-endpoint list approximates preferential attachment
    targets: list[int] = []
    for u, v, _ in g.edges():
        targets.extend((u, v))
    for u in range(core, n):
        chosen: set[int] = set()
        while len(chosen) < m_attach:
            if targets and rng.random() < 0.9:
                cand = int(targets[int(rng.integers(0, len(targets)))])
            else:
                cand = int(rng.integers(0, u))
            if cand != u:
                chosen.add(cand)
        for v in chosen:
            g.add_edge(u, v, 1.0)
            targets.extend((u, v))
    _connect_components(g, rng)
    return g


def grid2d(rows: int, cols: int) -> Graph:
    """``rows x cols`` grid; node ``(r, c)`` has ID ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    g = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1, 1.0)
            if r + 1 < rows:
                g.add_edge(u, u + cols, 1.0)
    return g


def ring(n: int) -> Graph:
    """Cycle on ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise GraphError("ring needs n >= 3")
    g = Graph(n)
    for u in range(n):
        g.add_edge(u, (u + 1) % n, 1.0)
    return g


def path_graph(n: int) -> Graph:
    """Simple path ``0 - 1 - ... - n-1``."""
    g = Graph(n)
    for u in range(n - 1):
        g.add_edge(u, u + 1, 1.0)
    return g


def complete_graph(n: int) -> Graph:
    """K_n with unit weights."""
    g = Graph(n)
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v, 1.0)
    return g


def tree_graph(n: int, branching: int = 2) -> Graph:
    """Complete ``branching``-ary tree on ``n`` nodes (BFS numbering)."""
    if branching < 1:
        raise GraphError("branching must be >= 1")
    g = Graph(n)
    for u in range(1, n):
        g.add_edge(u, (u - 1) // branching, 1.0)
    return g


def random_geometric(n: int, radius: Optional[float] = None, seed: SeedLike = None) -> Graph:
    """Random geometric graph in the unit square; weights = Euclidean length.

    Edge weights are the Euclidean distances (scaled by 1000 and rounded up
    to keep them positive), so shortest-path distance approximates geometric
    distance — the setting network coordinate systems target.
    """
    rng = ensure_rng(seed)
    if radius is None:
        radius = math.sqrt(3.0 * math.log(max(n, 2)) / (math.pi * max(n, 1)))
    pts = rng.random((n, 2))
    g = Graph(n)
    # vectorized pairwise distances (n is experiment-scale, <= a few thousand)
    diff = pts[:, None, :] - pts[None, :, :]
    dist = np.sqrt((diff * diff).sum(axis=2))
    iu, ju = np.triu_indices(n, k=1)
    close = dist[iu, ju] <= radius
    for u, v in zip(iu[close], ju[close]):
        w = max(1.0, math.ceil(1000.0 * dist[u, v]))
        g.add_edge(int(u), int(v), w)
    _connect_components(g, rng, weight=max(1.0, math.ceil(1000.0 * radius)))
    return g


def caterpillar(spine: int, legs_per_node: int = 1, leg_weight: float = 1.0,
                spine_weight: float = 1.0) -> Graph:
    """Caterpillar: a path ("spine") with pendant leaves ("legs").

    Spine nodes are ``0..spine-1``; the legs follow.  With heavy spine
    weights and light legs this family separates hop diameter from
    shortest-path diameter.
    """
    if spine < 1:
        raise GraphError("spine must have >= 1 node")
    n = spine + spine * legs_per_node
    g = Graph(n)
    for u in range(spine - 1):
        g.add_edge(u, u + 1, spine_weight)
    nxt = spine
    for u in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(u, nxt, leg_weight)
            nxt += 1
    return g


def star_path(n_path: int, heavy_weight: Optional[float] = None) -> Graph:
    """Path of ``n_path`` light edges plus a hub shortcut of heavy edges.

    Node ``n_path`` is a hub adjacent to every path node with weight
    ``heavy_weight`` (default: ``n_path``, i.e. the shortcut never helps a
    shortest path).  The result has hop diameter 2 but shortest-path
    diameter ``n_path`` — the paper's motivating gap between ``D`` and
    ``S`` (Section 2.1): online queries via sketches cost ~``D`` rounds
    while any fresh distance computation costs ``Ω(S)``.
    """
    if n_path < 2:
        raise GraphError("star_path needs n_path >= 2")
    hub = n_path
    g = Graph(n_path + 1)
    for u in range(n_path - 1):
        g.add_edge(u, u + 1, 1.0)
    hw = float(n_path) if heavy_weight is None else heavy_weight
    for u in range(n_path):
        g.add_edge(u, hub, hw)
    return g


def from_networkx(nxg) -> Graph:
    """Convert a networkx graph (any hashable labels) to a :class:`Graph`.

    Labels are mapped to ``0..n-1`` in sorted-by-string order; missing
    ``weight`` attributes default to 1.0.
    """
    nodes = sorted(nxg.nodes(), key=str)
    index = {v: i for i, v in enumerate(nodes)}
    g = Graph(len(nodes))
    for u, v, data in nxg.edges(data=True):
        g.add_edge(index[u], index[v], float(data.get("weight", 1.0)))
    return g
