"""The :class:`Graph` type: weighted, undirected, nodes ``0..n-1``.

Design notes
------------
The simulator and the distributed protocols need adjacency lookups that are
cheap in pure Python (``dict`` access), while the centralized baselines need
a sparse matrix for vectorized shortest paths via
:func:`scipy.sparse.csgraph.dijkstra`.  ``Graph`` therefore keeps a dict-of-
dicts adjacency as the source of truth and materializes a CSR matrix lazily
(cached; invalidated on mutation).

Nodes are consecutive integers ``0..n-1``: the paper's round-robin queue
scheduler (Algorithm 2) "assumes without loss of generality that
V = {0, 1, ..., n-1}", and we adopt the same convention globally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphError


class Graph:
    """A weighted undirected graph on nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Optional iterable of ``(u, v, weight)`` triples.  Weights must be
        positive and finite (the paper allows zero weights in principle but
        every bound is stated for positive polynomially-bounded weights;
        we require ``weight > 0`` so shortest paths are simple).
    """

    __slots__ = ("n", "_adj", "_m", "_csr_cache")

    def __init__(self, n: int, edges: Optional[Iterable[tuple[int, int, float]]] = None):
        if n <= 0:
            raise GraphError(f"graph must have at least one node, got n={n}")
        self.n = int(n)
        self._adj: list[dict[int, float]] = [dict() for _ in range(self.n)]
        self._m = 0
        self._csr_cache: Optional[sp.csr_matrix] = None
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # construction / mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add (or overwrite) the undirected edge ``{u, v}``."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u})")
        w = float(weight)
        if not (w > 0) or not np.isfinite(w):
            raise GraphError(f"edge weight must be positive and finite, got {weight!r}")
        if v not in self._adj[u]:
            self._m += 1
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._csr_cache = None

    def set_weight(self, u: int, v: int, weight: float) -> None:
        """Change the weight of an existing edge."""
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        self.add_edge(u, v, weight)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the undirected edge ``{u, v}`` (it must exist).

        Removal may disconnect the graph; callers that require the
        paper's connected model must re-:meth:`validate`.
        """
        self._check_node(u)
        self._check_node(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._m -= 1
        self._csr_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not (0 <= u < self.n):
            raise GraphError(f"node {u} out of range [0, {self.n})")

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    def nodes(self) -> range:
        """Iterate node IDs ``0..n-1``."""
        return range(self.n)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate edges once each, as ``(u, v, w)`` with ``u < v``."""
        for u in range(self.n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def neighbors(self, u: int) -> dict[int, float]:
        """Neighbor -> weight mapping for node ``u`` (do not mutate)."""
        return self._adj[u]

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def has_edge(self, u: int, v: int) -> bool:
        return 0 <= u < self.n and v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None

    def max_weight(self) -> float:
        """Largest edge weight (0.0 for an edgeless graph)."""
        return max((w for _, _, w in self.edges()), default=0.0)

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """BFS connectivity check (the paper requires connected inputs)."""
        if self.n == 1:
            return True
        seen = bytearray(self.n)
        stack = [0]
        seen[0] = 1
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = 1
                    count += 1
                    stack.append(v)
        return count == self.n

    def validate(self) -> None:
        """Raise :class:`GraphError` unless the graph meets the paper's model.

        Checks connectivity and that weights are polynomially bounded
        (we use ``w <= n**4`` as the concrete polynomial bound so that a
        distance always fits in one word).
        """
        if not self.is_connected():
            raise GraphError("graph is not connected")
        bound = float(self.n) ** 4 if self.n > 1 else 1.0
        for u, v, w in self.edges():
            if w > bound:
                raise GraphError(
                    f"edge ({u},{v}) weight {w} exceeds polynomial bound n^4={bound}"
                )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> sp.csr_matrix:
        """Symmetric CSR adjacency matrix (cached until the graph mutates)."""
        if self._csr_cache is None:
            rows, cols, vals = [], [], []
            for u, v, w in self.edges():
                rows.append(u)
                cols.append(v)
                vals.append(w)
                rows.append(v)
                cols.append(u)
                vals.append(w)
            self._csr_cache = sp.csr_matrix(
                (np.asarray(vals, dtype=np.float64), (rows, cols)),
                shape=(self.n, self.n),
            )
        return self._csr_cache

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``weight`` attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(self.edges())
        return g

    def copy(self) -> "Graph":
        return Graph(self.n, self.edges())

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.n == other.n and self._adj == other._adj

    def __hash__(self):  # mutable container semantics
        raise TypeError("Graph is unhashable (mutable)")

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.m})"
