"""Weighted-graph substrate (system S1).

The paper models the network as a weighted, undirected, connected n-node
graph with nonnegative, polynomially bounded edge weights (Section 2.2).
This subpackage provides the graph type, generators for every topology
family used by the experiment suite, exact all-pairs shortest paths, and
the two diameter notions the paper's bounds are stated in: the hop
diameter ``D`` and the shortest-path diameter ``S``.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    erdos_renyi,
    barabasi_albert,
    grid2d,
    ring,
    random_geometric,
    caterpillar,
    star_path,
    complete_graph,
    path_graph,
    tree_graph,
    from_networkx,
)
from repro.graphs.weights import (
    assign_unit_weights,
    assign_uniform_weights,
    assign_exponential_weights,
    assign_integer_weights,
)
from repro.graphs.metrics import (
    apsp,
    apsp_hops,
    hop_diameter,
    shortest_path_diameter,
    weighted_diameter,
    GraphStats,
    graph_stats,
)
from repro.graphs.io import write_edgelist, read_edgelist

__all__ = [
    "Graph",
    "erdos_renyi",
    "barabasi_albert",
    "grid2d",
    "ring",
    "random_geometric",
    "caterpillar",
    "star_path",
    "complete_graph",
    "path_graph",
    "tree_graph",
    "from_networkx",
    "assign_unit_weights",
    "assign_uniform_weights",
    "assign_exponential_weights",
    "assign_integer_weights",
    "apsp",
    "apsp_hops",
    "hop_diameter",
    "shortest_path_diameter",
    "weighted_diameter",
    "GraphStats",
    "graph_stats",
    "write_edgelist",
    "read_edgelist",
]
