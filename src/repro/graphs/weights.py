"""Weight-assignment schemes.

The paper's bounds hold for arbitrary nonnegative polynomially-bounded
weights; the experiments exercise several regimes because the
shortest-path diameter ``S`` (and hence round complexity) is driven by the
weight distribution, not just the topology:

* unit weights — ``S == D``; the baseline regime.
* uniform random weights — mild weight diversity; ``S`` grows modestly.
* exponential-ish (heavy-tailed integer) weights — a few very cheap edges
  create long (many-hop) shortest paths, inflating ``S`` relative to ``D``.

All functions mutate the graph in place and return it for chaining.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.rng import SeedLike, ensure_rng


def assign_unit_weights(g: Graph) -> Graph:
    """Set every edge weight to 1 (makes ``S == D``)."""
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, 1.0)
    return g


def assign_uniform_weights(g: Graph, low: float = 1.0, high: float = 10.0,
                           seed: SeedLike = None) -> Graph:
    """I.i.d. ``Uniform[low, high]`` weights (rounded to integers >= 1)."""
    rng = ensure_rng(seed)
    for u, v, _ in list(g.edges()):
        w = float(np.ceil(rng.uniform(low, high)))
        g.set_weight(u, v, max(1.0, w))
    return g


def assign_exponential_weights(g: Graph, scale: float = 10.0, seed: SeedLike = None) -> Graph:
    """Heavy-tailed integer weights ``1 + floor(Exp(scale))``.

    Creates the cheap-detour structure that separates ``S`` from ``D``.
    """
    rng = ensure_rng(seed)
    for u, v, _ in list(g.edges()):
        w = 1.0 + float(np.floor(rng.exponential(scale)))
        g.set_weight(u, v, w)
    return g


def assign_integer_weights(g: Graph, choices=(1, 2, 5, 10, 100), seed: SeedLike = None) -> Graph:
    """Weights drawn uniformly from a small fixed set (deterministic ratios,
    useful for hand-checkable tests)."""
    rng = ensure_rng(seed)
    arr = np.asarray(choices, dtype=np.float64)
    for u, v, _ in list(g.edges()):
        g.set_weight(u, v, float(arr[int(rng.integers(0, len(arr)))]))
    return g
