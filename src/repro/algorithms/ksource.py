"""k-Source Shortest Paths (paper Section 3.2, phase ``k-1``).

Running distributed Bellman-Ford "from each node in A_{k-1}
simultaneously" under the one-message-per-edge rule is exactly the
round-robin multi-source engine with no participation threshold.  The
paper's Lemma 3.4 bounds this at ``O(|sources| * S)`` rounds and
``O(|E| * |sources| * S)`` messages; experiment E3 checks the shape.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.round_robin import RoundRobinBFProgram
from repro.congest.metrics import RunMetrics
from repro.congest.network import Simulator
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.rng import SeedLike


class KSourceBFProgram(RoundRobinBFProgram):
    """Round-robin BF whose sources are a fixed, globally known set."""

    def __init__(self, node: int, sources: frozenset[int],
                 drain_per_round: int = 1):
        super().__init__(node, is_source=node in sources, kind="ks",
                         drain_per_round=drain_per_round)
        self.sources = sources


def k_source_shortest_paths(graph: Graph, sources: Iterable[int],
                            seed: SeedLike = None,
                            drain_per_round: int = 1,
                            ) -> tuple[list[dict[int, float]], RunMetrics]:
    """Compute every node's distance to every source, distributedly.

    Returns ``(per_node_distance_maps, metrics)`` where
    ``per_node_distance_maps[u][s]`` is ``d(u, s)``.

    ``drain_per_round > 1`` enables the LOCAL-model ablation (several
    updates packed per message; the simulator's bandwidth budget is widened
    accordingly so the run measures round savings, not protocol violations).
    """
    srcs = frozenset(int(s) for s in sources)
    if not srcs:
        raise ConfigError("k_source_shortest_paths needs at least one source")
    for s in srcs:
        if not (0 <= s < graph.n):
            raise ConfigError(f"source {s} out of range")
    bandwidth = 6 if drain_per_round == 1 else 2 + 3 * drain_per_round
    sim = Simulator(graph,
                    lambda u: KSourceBFProgram(u, srcs, drain_per_round),
                    seed=seed, bandwidth_words=bandwidth)
    res = sim.run()
    return [p.result() for p in res.programs], res.metrics
