"""ECHO bookkeeping for the Section 3.3 termination detector.

The paper's scheme, per node ``u`` and per data message ``m`` that ``u``
receives from a neighbor ``w``:

* if ``m`` does **not** cause ``u`` to queue a new broadcast (it failed the
  threshold, or did not improve) — ``u`` owes ``w`` an ECHO of ``m``
  immediately;
* if the queued update based on ``m`` is **superseded** before being sent —
  ``u`` owes ``w`` an ECHO of ``m`` at supersede time;
* if ``u`` **does** broadcast a message ``m'`` based on ``m`` — ``u`` owes
  ``w`` an ECHO of ``m`` once ``u`` has collected ECHOs of ``m'`` from its
  neighbors.

A source's own initial broadcast has no parent; when it is fully ECHOed the
source knows its cluster has stopped growing ("every vertex in C(u) knows
its distance to u") and declares itself *complete*.

:class:`EchoBookkeeper` implements exactly this ledger as an
:class:`~repro.algorithms.round_robin.EngineListener`, so the Bellman-Ford
engine needs no termination-specific code.  Data messages are identified by
their ``(source, quoted-distance)`` pair: per node and source the quoted
distance strictly decreases, so the pair is unique per sender, and quotes
are stored/echoed verbatim (bit-identical floats) so matching is exact.

Echo messages owed are buffered in per-edge FIFO queues; the host protocol
drains at most one per edge per round (the CONGEST rule) and must give them
priority over data broadcasts — the paper charges this at "at most double
the number of messages and rounds", which experiment E4 measures.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.algorithms.round_robin import EngineListener, ParentMsg
from repro.errors import ProtocolError


class EchoBookkeeper(EngineListener):
    """Per-node, per-phase ECHO ledger.

    Parameters
    ----------
    node:
        The owning node's ID.
    neighbors:
        All incident neighbors (a broadcast reaches every one of them, and
        each must eventually ECHO it).
    on_complete:
        Called once, when this node's *own source broadcast* has been fully
        ECHOed (only ever fires if :meth:`on_sent` saw a parentless send).
    """

    def __init__(self, node: int, neighbors: tuple[int, ...],
                 on_complete: Optional[Callable[[], None]] = None):
        self.node = node
        self.neighbors = neighbors
        self.on_complete = on_complete
        #: (src, quoted-dist) -> {"waiting": set[int], "parent": ParentMsg}
        self._outstanding: dict[tuple[int, float], dict] = {}
        #: neighbor -> FIFO of (src, quoted-dist) echoes owed to it
        self.owed: dict[int, deque[tuple[int, float]]] = {}
        self.echoes_sent = 0
        self.echoes_received = 0

    # ------------------------------------------------------------------
    # EngineListener interface (driven by MultiSourceEngine)
    # ------------------------------------------------------------------
    def on_rejected(self, src: int, a: float, via: int) -> None:
        self._owe(via, src, a)

    def on_superseded(self, src: int, parent: ParentMsg) -> None:
        if parent is not None:
            self._owe(parent[0], src, parent[1])

    def on_sent(self, src: int, dist: float, parent: ParentMsg) -> None:
        key = (src, dist)
        if key in self._outstanding:
            raise ProtocolError(
                f"node {self.node}: duplicate broadcast {key} — per-source "
                f"distances must strictly decrease")
        entry = {"waiting": set(self.neighbors), "parent": parent}
        self._outstanding[key] = entry
        if not entry["waiting"]:  # degenerate: broadcast to zero neighbors
            self._settle(key, entry)

    # ------------------------------------------------------------------
    # echo traffic
    # ------------------------------------------------------------------
    def _owe(self, to: int, src: int, quoted: float) -> None:
        self.owed.setdefault(to, deque()).append((src, quoted))

    def receive_echo(self, frm: int, src: int, quoted: float) -> None:
        """A neighbor acknowledged our broadcast ``(src, quoted)``."""
        self.echoes_received += 1
        key = (src, quoted)
        entry = self._outstanding.get(key)
        if entry is None or frm not in entry["waiting"]:
            raise ProtocolError(
                f"node {self.node}: unexpected echo {key} from {frm}")
        entry["waiting"].discard(frm)
        if not entry["waiting"]:
            self._settle(key, entry)

    def _settle(self, key: tuple[int, float], entry: dict) -> None:
        """All echoes for one of our broadcasts are in: discharge upward."""
        del self._outstanding[key]
        parent = entry["parent"]
        if parent is not None:
            self._owe(parent[0], key[0], parent[1])
        elif self.on_complete is not None:
            self.on_complete()

    def pop_owed(self, to: int) -> Optional[tuple[int, float]]:
        """Take the next echo owed to neighbor ``to`` (None if none)."""
        q = self.owed.get(to)
        if not q:
            return None
        self.echoes_sent += 1
        return q.popleft()

    def has_owed(self) -> bool:
        return any(self.owed.values())

    def owed_edges(self) -> list[int]:
        """Neighbors we currently owe at least one echo."""
        return [v for v, q in self.owed.items() if q]

    def quiet(self) -> bool:
        """True when no broadcasts await echoes and no echoes are owed."""
        return not self._outstanding and not self.has_owed()
