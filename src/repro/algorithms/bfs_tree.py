"""Leader election + BFS spanning tree (paper Section 3.3, setup step).

The paper cites Khan et al. for electing a leader ``r`` and building a BFS
tree "in O(D) <= O(S) rounds and O(|E| log n) messages" and treats the step
as negligible.  We implement the textbook CONGEST construction: **max-ID
flooding**.  Every node floods the largest ID it has heard together with a
hop count; it adopts the sender of the best ``(id, hops)`` announcement as
its tree parent.  After ``D`` rounds the maximum ID has reached everyone
and the parent pointers form a BFS tree rooted at the maximum-ID node.

Nodes do not know ``D``, but they do know ``n`` (model assumption, Section
2.2) and ``D <= n - 1``, so the protocol runs for a fixed horizon of ``n``
rounds, then performs one round of ``adopt`` notifications so every parent
learns its children (needed for the COMPLETE convergecast of the
termination detector).  The message-active prefix is only ``O(D)`` rounds;
the remaining rounds are idle waiting, which consumes no bandwidth.  The
simulator charges the idle rounds too, so reported setup-round numbers are
an honest *upper* bound; experiment E4 reports the setup phase separately
so it never contaminates the per-phase measurements of Theorem 3.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.network import Simulator
from repro.congest.node import NodeProgram
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.rng import SeedLike


@dataclass(frozen=True)
class TreeInfo:
    """A node's local view of the elected tree."""

    leader: int
    parent: Optional[int]  # None iff this node is the leader
    children: tuple[int, ...]
    depth: int

    def is_leader(self) -> bool:
        return self.parent is None


class BFSTreeProgram(NodeProgram):
    """Max-ID flooding election with BFS parents and child discovery.

    Messages: ``("elect", candidate-id, hops)`` during flooding, then one
    ``("adopt",)`` from each node to its final parent.

    The program can be *embedded* in a larger protocol: a host protocol
    constructs it, forwards ``on_start``/``on_round`` calls until
    :attr:`done` becomes True, then reads :meth:`tree`.
    """

    needs_clock = True

    def __init__(self, node: int, n: int, horizon: Optional[int] = None,
                 settle: int = 1):
        self.node = node
        # horizon must exceed the largest possible hop-eccentricity (n - 1)
        self.horizon = int(horizon) if horizon is not None else n
        # extra rounds to wait for adopt deliveries after the horizon —
        # 1 suffices synchronously; bounded-delay runs pass max_delay
        self.settle = max(1, int(settle))
        self.best_id = node
        self.best_hops = 0
        self.parent: Optional[int] = None
        self.children: list[int] = []
        self._adopt_sent = False
        self.done = False

    # --------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        ctx.broadcast(("elect", self.node, 0))

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        improved = False
        for w, payload in inbox.items():
            if not isinstance(payload, tuple):
                continue
            if payload[0] == "elect":
                _, cand, hops = payload
                if (cand > self.best_id
                        or (cand == self.best_id and hops + 1 < self.best_hops)):
                    self.best_id = cand
                    self.best_hops = hops + 1
                    self.parent = w
                    improved = True
            elif payload[0] == "adopt":
                self.children.append(w)
        if improved:
            # announce once per round, after absorbing all of this round's
            # mail — a second improvement in the same round would otherwise
            # put two messages on one edge
            ctx.broadcast(("elect", self.best_id, self.best_hops))

        if ctx.round >= self.horizon and not self._adopt_sent:
            self._adopt_sent = True
            if self.parent is not None:
                ctx.send(self.parent, ("adopt",))
        if ctx.round >= self.horizon + self.settle:
            self.done = True

    def has_pending(self) -> bool:
        # "waiting for the horizon" counts as pending work so the simulator
        # keeps the clock running through message-silent rounds
        return not self.done

    # --------------------------------------------------------------
    def tree(self) -> TreeInfo:
        if not self.done:
            raise SimulationError("BFS tree queried before completion")
        return TreeInfo(leader=self.best_id, parent=self.parent,
                        children=tuple(sorted(self.children)),
                        depth=self.best_hops)

    def result(self) -> TreeInfo:
        return self.tree()


def build_bfs_tree(graph: Graph, seed: SeedLike = None,
                   horizon: Optional[int] = None,
                   ) -> tuple[list[TreeInfo], RunMetrics]:
    """Standalone election run. Returns per-node :class:`TreeInfo` + metrics."""
    n = graph.n
    sim = Simulator(graph, lambda u: BFSTreeProgram(u, n, horizon=horizon),
                    seed=seed)
    res = sim.run()
    return [p.result() for p in res.programs], res.metrics
