"""Distributed building-block protocols (systems S3–S7).

These are the CONGEST primitives the paper's constructions are assembled
from: distributed Bellman-Ford (Algorithm 1), the round-robin multi-source
variant at the heart of Algorithm 2, k-Source Shortest Paths, super-source
(distance-to-a-set) Bellman-Ford, leader election with BFS-tree
construction, tree broadcast/convergecast, and the ECHO bookkeeping used by
the Section 3.3 termination detector.
"""

from repro.algorithms.bellman_ford import BellmanFordProgram, single_source_distances
from repro.algorithms.round_robin import RoundRobinBFProgram
from repro.algorithms.ksource import KSourceBFProgram, k_source_shortest_paths
from repro.algorithms.supersource import SuperSourceBFProgram, distances_to_set
from repro.algorithms.bfs_tree import BFSTreeProgram, TreeInfo, build_bfs_tree
from repro.algorithms.broadcast import TreeBroadcastProgram, tree_broadcast
from repro.algorithms.termination import EchoBookkeeper
from repro.algorithms.reliable_bf import (
    ReliableBellmanFordProgram,
    reliable_single_source_distances,
)

__all__ = [
    "BellmanFordProgram",
    "single_source_distances",
    "RoundRobinBFProgram",
    "KSourceBFProgram",
    "k_source_shortest_paths",
    "SuperSourceBFProgram",
    "distances_to_set",
    "BFSTreeProgram",
    "TreeInfo",
    "build_bfs_tree",
    "TreeBroadcastProgram",
    "tree_broadcast",
    "EchoBookkeeper",
    "ReliableBellmanFordProgram",
    "reliable_single_source_distances",
]
