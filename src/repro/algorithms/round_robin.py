"""Round-robin multi-source Bellman-Ford — the engine of paper Algorithm 2.

Many sources flood concurrently, but the CONGEST model allows only one
message per edge per round, so each node keeps **one outgoing slot per
source** ("an outgoing message queue, which will only ever have a 0 or 1
message in it" — Algorithm 2) and serves the nonempty slots in round-robin
order, sending one broadcast per round.  A slot updated again before being
served is *superseded* — the stale value is overwritten, which is what caps
per-source queue occupancy at one.

The machinery is split in two:

* :class:`MultiSourceEngine` — the queueing/acceptance core, *not* a node
  program.  Phase-structured protocols (``repro.tz.distributed``) create a
  fresh engine per phase and drive it from their own ``on_round``.
* :class:`RoundRobinBFProgram` — a thin
  :class:`~repro.congest.node.NodeProgram` wrapper for standalone use
  (k-Source Shortest Paths).

Acceptance rule (Algorithm 2 line 12, with the paper's "distinct distances"
assumption made explicit through :class:`~repro.distkey.DistKey`): an update
for source ``v`` at candidate distance ``c`` is accepted iff
``DistKey(c, v) < threshold`` and ``c`` strictly improves the current guess.
The threshold is ``d(u, A_{i+1})`` as a key — ``INF_KEY`` recovers plain
multi-source shortest paths.

The engine reports accept/reject/supersede/sent events to an optional
*listener*; the ECHO termination detector of paper Section 3.3
(:mod:`repro.algorithms.termination`) is implemented entirely as such a
listener, leaving this hot loop untouched when termination detection is off.

Ablation support: ``drain_per_round > 1`` packs several slots into one
oversized message, emulating a LOCAL-model network without the bandwidth
constraint.  Experiment E3/A1 uses this to show that the ``n^{1/k} log n``
factor in Theorem 1.1's round bound is forced by congestion, not by the
algorithm's logic.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Optional

from repro.congest.context import NodeContext
from repro.congest.node import NodeProgram
from repro.distkey import INF_KEY, DistKey

#: ``(via-neighbor, distance-as-quoted-in-the-received-message)`` — identifies
#: the incoming message a queued update was based on.  ``None`` for a
#: self-injected source.  The termination detector echoes these quotes back
#: verbatim, so they are stored untouched (no float arithmetic) to keep
#: matching exact.
ParentMsg = Optional[tuple[int, float]]


class EngineListener:
    """Event sink for :class:`MultiSourceEngine` (all hooks default to no-op).

    ``a`` is always the distance *as quoted in the message on the wire*,
    never a locally recomputed value.
    """

    def on_rejected(self, src: int, a: float, via: int) -> None:
        """An incoming update did not qualify or did not improve."""

    def on_superseded(self, src: int, parent: ParentMsg) -> None:
        """A queued-but-unsent update was overwritten; its parent message
        is now fully processed."""

    def on_sent(self, src: int, dist: float, parent: ParentMsg) -> None:
        """A slot was served: ``(kind, src, dist)`` was broadcast; the
        broadcast is *based on* ``parent``."""


class MultiSourceEngine:
    """Per-node queueing core of Algorithm 2 (one instance per phase)."""

    __slots__ = ("node", "kind", "threshold", "listener", "dist", "via",
                 "_parent_msg", "_queue", "_queued", "max_queue_len",
                 "payload_fn")

    def __init__(self, node: int, kind: str = "bf",
                 threshold: DistKey = INF_KEY,
                 listener: Optional[EngineListener] = None,
                 payload_fn: Optional[Callable[[int, float], tuple]] = None):
        self.node = node
        self.kind = kind
        self.threshold = threshold
        self.listener = listener
        #: best known distance per source (== B_i(u) with distances at phase end)
        self.dist: dict[int, float] = {}
        #: neighbor each best distance was learned from
        self.via: dict[int, Optional[int]] = {}
        self._parent_msg: dict[int, ParentMsg] = {}
        self._queue: deque[int] = deque()
        self._queued: set[int] = set()
        self.max_queue_len = 0  # observability: Lemma 3.6 bounds this w.h.p.
        self.payload_fn = payload_fn or (lambda src, d: (self.kind, src, d))

    # ------------------------------------------------------------------
    def inject_source(self, ctx: NodeContext) -> None:
        """This node is a source of the current phase: distance 0, broadcast
        immediately (Algorithm 2, "In the first round")."""
        self.dist[self.node] = 0.0
        self.via[self.node] = None
        ctx.broadcast(self.payload_fn(self.node, 0.0))
        if self.listener is not None:
            self.listener.on_sent(self.node, 0.0, None)

    def enqueue_source(self) -> None:
        """This node is a source: queue the distance-0 self-announcement as
        a normal slot (served when the host protocol's edges are free —
        phase-structured hosts cannot always broadcast at phase entry)."""
        self.dist[self.node] = 0.0
        self.via[self.node] = None
        self._parent_msg[self.node] = None
        self._queued.add(self.node)
        self._queue.append(self.node)
        if len(self._queue) > self.max_queue_len:
            self.max_queue_len = len(self._queue)

    def accept(self, src: int, a: float, via: int, weight: float) -> bool:
        """Algorithm 2 lines 12-14 for one incoming update ``(src, a)``
        received from neighbor ``via`` over an edge of the given weight."""
        cand = a + weight
        if (not DistKey(cand, src) < self.threshold
                or cand >= self.dist.get(src, math.inf)):
            if self.listener is not None:
                self.listener.on_rejected(src, a, via)
            return False
        if src in self._queued:
            # the queued update is superseded before it was ever sent
            if self.listener is not None:
                self.listener.on_superseded(src, self._parent_msg[src])
        else:
            self._queued.add(src)
            self._queue.append(src)
            if len(self._queue) > self.max_queue_len:
                self.max_queue_len = len(self._queue)
        self.dist[src] = cand
        self.via[src] = via
        self._parent_msg[src] = (via, a)
        return True

    def process(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        """Filter ``inbox`` for this engine's kind and apply :meth:`accept`."""
        kind = self.kind
        for w, payload in inbox.items():
            if isinstance(payload, tuple) and payload[0] == kind:
                self.accept(payload[1], payload[2], w, ctx.edge_weight(w))

    def serve(self, ctx: NodeContext) -> bool:
        """Serve one queue slot (Algorithm 2 lines 15-20).  Returns True if
        a broadcast was sent.  The caller must ensure all incident edges are
        free this round (a broadcast uses every edge)."""
        if not self._queue:
            return False
        src = self._queue.popleft()
        self._queued.discard(src)
        parent = self._parent_msg.pop(src, None)
        d = self.dist[src]
        ctx.broadcast(self.payload_fn(src, d))
        if self.listener is not None:
            self.listener.on_sent(src, d, parent)
        return True

    def pending(self) -> bool:
        return bool(self._queue)

    def queue_len(self) -> int:
        return len(self._queue)


class RoundRobinBFProgram(NodeProgram):
    """Standalone node program wrapping one :class:`MultiSourceEngine`.

    Supports the LOCAL-model ablation via ``drain_per_round``: several slots
    are packed into one ``(kind+"pack", ((src, d), ...))`` message, which the
    host simulator must be configured to allow (larger ``bandwidth_words``).
    """

    def __init__(self, node: int, is_source: bool, kind: str = "bf",
                 threshold: DistKey = INF_KEY, drain_per_round: int = 1,
                 listener: Optional[EngineListener] = None):
        self.engine = MultiSourceEngine(node, kind=kind, threshold=threshold,
                                        listener=listener)
        self.node = node
        self.is_source = is_source
        self.drain_per_round = max(1, int(drain_per_round))

    def on_start(self, ctx: NodeContext) -> None:
        if not self.is_source:
            return
        if self.drain_per_round == 1:
            self.engine.inject_source(ctx)
        else:
            # ablation wire format: sources announce in pack framing too
            self.engine.dist[self.node] = 0.0
            self.engine.via[self.node] = None
            ctx.broadcast((self.engine.kind + "pack", ((self.node, 0.0),)))

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        eng = self.engine
        if self.drain_per_round == 1:
            eng.process(ctx, inbox)
            eng.serve(ctx)
            return
        # LOCAL-model ablation path
        pack_kind = eng.kind + "pack"
        for w, payload in inbox.items():
            if isinstance(payload, tuple) and payload[0] == pack_kind:
                weight = ctx.edge_weight(w)
                for src, a in payload[1]:
                    eng.accept(src, a, w, weight)
        batch = []
        while eng._queue and len(batch) < self.drain_per_round:
            src = eng._queue.popleft()
            eng._queued.discard(src)
            eng._parent_msg.pop(src, None)
            batch.append((src, eng.dist[src]))
        if batch:
            ctx.broadcast((pack_kind, tuple(batch)))

    def has_pending(self) -> bool:
        return self.engine.pending()

    def result(self) -> dict[int, float]:
        """Final ``source -> distance`` map (only participated sources)."""
        return dict(self.engine.dist)
