"""Tree broadcast and convergecast over an elected BFS tree.

Used standalone (e.g. to disseminate a value from the leader in ``O(depth)``
rounds) and as the template for the START/COMPLETE waves of the Section 3.3
termination detector.  Messages travel only on tree edges, so the cost is
``O(n)`` messages and ``O(depth)`` rounds per wave — the "negligible"
overhead the paper claims for phase synchronization.
"""

from __future__ import annotations

from typing import Any

from repro.algorithms.bfs_tree import TreeInfo
from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.network import Simulator
from repro.congest.node import NodeProgram
from repro.graphs.graph import Graph
from repro.rng import SeedLike


class TreeBroadcastProgram(NodeProgram):
    """Flood one value from the tree root to every node along tree edges.

    Optionally convergecasts an ``ack`` wave back so the root learns when
    the broadcast has completed (the pattern COMPLETE messages reuse).
    """

    def __init__(self, node: int, tree: TreeInfo, value: Any = None,
                 ack: bool = True):
        self.node = node
        self.tree = tree
        self.value = value if tree.is_leader() else None
        self.ack = ack
        self._acks_needed = set(tree.children)
        self._value_sent = False
        self._acked = False
        self.root_done = False

    def on_start(self, ctx: NodeContext) -> None:
        if self.tree.is_leader():
            self._push_down(ctx)

    def _push_down(self, ctx: NodeContext) -> None:
        self._value_sent = True
        for c in self.tree.children:
            ctx.send(c, ("bcast", self.value))
        self._maybe_ack(ctx)

    def _maybe_ack(self, ctx: NodeContext) -> None:
        if not self.ack or self._acked or self._acks_needed:
            return
        self._acked = True
        if self.tree.parent is not None:
            ctx.send(self.tree.parent, ("bcack",))
        else:
            self.root_done = True

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        for w, payload in inbox.items():
            if not isinstance(payload, tuple):
                continue
            if payload[0] == "bcast" and w == self.tree.parent:
                self.value = payload[1]
                if not self._value_sent:
                    self._push_down(ctx)
            elif payload[0] == "bcack" and w in self._acks_needed:
                self._acks_needed.discard(w)
        if self._value_sent:
            self._maybe_ack(ctx)

    def result(self) -> Any:
        return self.value


def tree_broadcast(graph: Graph, trees: list[TreeInfo], value: Any,
                   seed: SeedLike = None) -> tuple[list[Any], RunMetrics]:
    """Broadcast ``value`` from the leader over ``trees`` (one per node)."""
    sim = Simulator(graph,
                    lambda u: TreeBroadcastProgram(u, trees[u], value),
                    seed=seed)
    res = sim.run()
    return res.results(), res.metrics
