"""Super-source Bellman-Ford: distance to a node *set*.

Paper, proof of Lemma 4.5: "we just imagine a 'super node' consisting of
all of N" — a single Bellman-Ford run where every member of ``N`` starts at
distance 0.  Each node ends up knowing ``d(u, N)`` *and* the identity of
its closest net node (the ``u'`` of the CDG sketch), in ``O(S)`` rounds and
``O(S |E|)`` messages.

Tie-breaking follows :mod:`repro.distkey`: among equidistant net nodes the
smallest ID wins, so the distributed result is comparable bit-for-bit with
the centralized reference in :mod:`repro.slack.density_net`.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.network import Simulator
from repro.congest.node import NodeProgram
from repro.distkey import INF_KEY, DistKey
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.rng import SeedLike


class SuperSourceBFProgram(NodeProgram):
    """Single-wavefront BF from a virtual source attached to a set.

    Message format: ``("ss", closest-set-node-id, distance)``.  Each node
    keeps one best ``DistKey`` and one pending-broadcast flag, so the
    protocol needs no queueing machinery.
    """

    KIND = "ss"

    def __init__(self, node: int, members: frozenset[int]):
        self.node = node
        self.in_set = node in members
        self.best: DistKey = DistKey(0.0, node) if self.in_set else INF_KEY
        self.parent: Optional[int] = None
        self._dirty = False

    def on_start(self, ctx: NodeContext) -> None:
        if self.in_set:
            ctx.broadcast((self.KIND, self.node, 0.0))

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        for w, payload in inbox.items():
            if not (isinstance(payload, tuple) and payload[0] == self.KIND):
                continue
            _, origin, a = payload
            key = DistKey(a + ctx.edge_weight(w), origin)
            if key < self.best:
                self.best = key
                self.parent = w
                self._dirty = True
        if self._dirty:
            ctx.broadcast((self.KIND, self.best.node, self.best.dist))
            self._dirty = False

    def has_pending(self) -> bool:
        return self._dirty

    def result(self) -> tuple[float, int, Optional[int]]:
        """``(d(u, N), closest member ID, BF-tree parent)``."""
        return (self.best.dist, self.best.node, self.parent)


def distances_to_set(graph: Graph, members: Iterable[int],
                     seed: SeedLike = None,
                     ) -> tuple[list[tuple[float, int]], RunMetrics]:
    """Distributed ``d(u, N)`` with witnesses.

    Returns ``(assignments, metrics)`` where ``assignments[u]`` is the pair
    ``(d(u, N), closest member)``.
    """
    mset = frozenset(int(v) for v in members)
    if not mset:
        raise ConfigError("distances_to_set needs a nonempty member set")
    for v in mset:
        if not (0 <= v < graph.n):
            raise ConfigError(f"set member {v} out of range")
    sim = Simulator(graph, lambda u: SuperSourceBFProgram(u, mset), seed=seed)
    res = sim.run()
    out = [(p.result()[0], p.result()[1]) for p in res.programs]
    return out, res.metrics
