"""Retransmitting Bellman-Ford: correctness under message loss.

The paper's protocols assume reliable synchronous links (Section 2.2) and
its conclusion names "failure-prone settings" as future work.  This module
takes the first step the paper gestures at: plain Bellman-Ford becomes
robust to independent message loss if every node periodically rebroadcasts
its current best distance — the classic soft-state repair idea.

:class:`ReliableBellmanFordProgram` rebroadcasts every ``period`` rounds
while it has been "recently active" and stops after ``patience`` silent
periods, giving a protocol that (a) converges to exact distances provided
each edge eventually delivers (probability 1 under i.i.d. loss < 1) and
(b) terminates.  The fault-injection tests drive it through loss rates up
to 50% and assert exact convergence, and show that the *non*-retransmitting
Algorithm 1 visibly fails under the same faults (wrong distances at
quiescence) — motivating exactly the future work the paper names.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.congest.context import NodeContext
from repro.congest.faults import FaultModel, FaultySimulator
from repro.congest.metrics import RunMetrics
from repro.congest.node import NodeProgram
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.rng import SeedLike


class ReliableBellmanFordProgram(NodeProgram):
    """Single-source BF with periodic soft-state rebroadcast.

    Parameters
    ----------
    period:
        Rebroadcast the current distance every ``period`` rounds.
    patience:
        Stop rebroadcasting after this many consecutive periods with no
        improvement anywhere in the local view (the node goes quiet; a
        later improvement wakes it again).
    """

    needs_clock = True

    KIND = "rbf"

    def __init__(self, node: int, source: int, period: int = 2,
                 patience: int = 8):
        if period < 1 or patience < 1:
            raise ConfigError("period and patience must be >= 1")
        self.node = node
        self.is_source = node == source
        self.dist: float = 0.0 if self.is_source else math.inf
        self.period = period
        self.patience = patience
        self._quiet_periods = 0
        self._done = self.dist == math.inf  # non-sources start dormant

    def on_start(self, ctx: NodeContext) -> None:
        if self.is_source:
            ctx.broadcast((self.KIND, 0.0))

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        improved = False
        for w, payload in inbox.items():
            if not (isinstance(payload, tuple) and payload[0] == self.KIND):
                continue
            z = payload[1] + ctx.edge_weight(w)
            if z < self.dist:
                self.dist = z
                improved = True
        if improved:
            self._quiet_periods = 0
            self._done = False
            ctx.broadcast((self.KIND, self.dist))
            return
        # soft-state repair: periodically re-announce the current value so
        # a lost message is eventually replaced
        if self._done or math.isinf(self.dist):
            return
        if ctx.round % self.period == 0:
            self._quiet_periods += 1
            if self._quiet_periods > self.patience:
                self._done = True
                return
            ctx.broadcast((self.KIND, self.dist))

    def has_pending(self) -> bool:
        return not self._done and not math.isinf(self.dist)

    def result(self) -> float:
        return self.dist


def reliable_single_source_distances(
        graph: Graph, source: int,
        loss_rate: float = 0.0,
        crashes: Optional[dict[int, int]] = None,
        seed: SeedLike = None,
        fault_seed: SeedLike = None,
        period: int = 2,
        patience: int = 8,
        max_rounds: int = 200_000,
) -> tuple[list[float], FaultModel, RunMetrics]:
    """Run retransmitting BF under a fault model.

    Returns ``(distances, fault_model, metrics)`` — the fault model carries
    the drop/block counters for reporting.
    """
    fm = FaultModel(loss_rate=loss_rate, crashes=dict(crashes or {}),
                    seed=fault_seed)
    sim = FaultySimulator(
        graph,
        lambda u: ReliableBellmanFordProgram(u, source, period=period,
                                             patience=patience),
        seed=seed, fault_model=fm)
    res = sim.run(max_rounds=max_rounds)
    return [p.result() for p in res.programs], fm, res.metrics
