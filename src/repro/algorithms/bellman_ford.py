"""Distributed single-source Bellman-Ford — paper Algorithm 1, verbatim.

Each node keeps a distance guess ``d'`` (initially infinity); on hearing a
neighbor's guess ``a(w)`` it checks whether ``a(w) + w(u, w)`` improves
``d'`` and, if so, adopts it and broadcasts the new value.  The source
starts by broadcasting 0.  After ``O(S)`` rounds (``S`` = shortest-path
diameter) every node's guess equals its true distance, using ``O(S |E|)``
messages — the standard analysis the paper builds on (Lemmas 3.3/3.4 cite
it for the k-source generalization).

This module is the single-source special case, kept separate and
deliberately simple because it is the paper's Algorithm 1 and serves as the
reference point for the more elaborate multi-source machinery in
:mod:`repro.algorithms.round_robin`.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.node import NodeProgram
from repro.graphs.graph import Graph
from repro.rng import SeedLike


class BellmanFordProgram(NodeProgram):
    """Node program for paper Algorithm 1.

    Message format: ``("bf1", distance)`` — the sender's current distance
    guess.  The sender's identity is implicit in the edge the message
    arrives on, exactly as in the paper's pseudocode.
    """

    KIND = "bf1"

    def __init__(self, node: int, source: int):
        self.node = node
        self.is_source = node == source
        self.dist: float = 0.0 if self.is_source else math.inf
        self.parent: Optional[int] = None

    def on_start(self, ctx: NodeContext) -> None:
        if self.is_source:
            ctx.broadcast((self.KIND, 0.0))

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        # line 2 of Algorithm 1: z <- min over neighbors of a(w) + d(u, w)
        best = self.dist
        best_from: Optional[int] = None
        for w, payload in inbox.items():
            z = payload[1] + ctx.edge_weight(w)
            if z < best:
                best = z
                best_from = w
        # lines 3-5: adopt and re-broadcast on improvement
        if best_from is not None:
            self.dist = best
            self.parent = best_from
            ctx.broadcast((self.KIND, best))

    def result(self) -> tuple[float, Optional[int]]:
        """``(distance-to-source, shortest-path-tree parent)``."""
        return (self.dist, self.parent)


def single_source_distances(graph: Graph, source: int, seed: SeedLike = None,
                            ) -> tuple[list[float], list[Optional[int]], RunMetrics]:
    """Run Algorithm 1 and return ``(distances, parents, metrics)``.

    The run terminates at network quiescence, which for Bellman-Ford
    coincides with global correctness (no node can improve, hence no node
    ever will).
    """
    from repro.congest.network import Simulator

    sim = Simulator(graph, lambda u: BellmanFordProgram(u, source), seed=seed)
    res = sim.run()
    dists = [p.result()[0] for p in res.programs]
    parents = [p.result()[1] for p in res.programs]
    return dists, parents, res.metrics
