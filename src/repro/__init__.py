"""repro — distributed distance sketches in the CONGEST model.

A full reproduction of *Efficient Computation of Distance Sketches in
Distributed Networks* (Das Sarma, Dinitz, Pandurangan; SPAA 2012):

* :mod:`repro.graphs` — the weighted-network substrate,
* :mod:`repro.congest` — the synchronous CONGEST simulator,
* :mod:`repro.algorithms` — Bellman-Ford variants, BFS trees, termination
  detection,
* :mod:`repro.tz` — Thorup–Zwick sketches, centralized and distributed,
* :mod:`repro.slack` — ε-slack, CDG, and gracefully degrading sketches,
* :mod:`repro.oracle` — the high-level build/query/evaluate API,
* :mod:`repro.analysis` — stretch statistics and theory-curve checks.

Quickstart::

    from repro import build_sketches, estimate_distance
    from repro.graphs import erdos_renyi

    g = erdos_renyi(128, seed=1)
    built = build_sketches(g, scheme="tz", k=3, seed=2)
    est = built.query(5, 99)
"""

from repro._version import __version__
from repro.oracle.api import build_sketches, BuiltSketches
from repro.tz.sketch import TZSketch, estimate_distance

__all__ = [
    "__version__",
    "build_sketches",
    "BuiltSketches",
    "TZSketch",
    "estimate_distance",
]
