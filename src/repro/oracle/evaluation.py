"""Stretch evaluation against exact distances.

This is the measurement core of the experiment suite: it compares sketch
estimates against the APSP ground truth over all pairs (or a sampled
subset), understands ε-slack (restricting a bound to ε-far pairs, paper
Section 4), and computes the average stretch of Lemma 4.7.

Definitions (paper):

* ``v`` is **ε-far** from ``u`` if at least ``εn`` vertices ``w`` satisfy
  ``d(u, w) < d(u, v)``.  Note the relation is *not* symmetric; a pair
  ``(u, v)`` is slack-covered when ``v`` is ε-far from ``u`` **or** ``u``
  is ε-far from ``v`` (either direction licenses the routing argument).
* **average stretch** = mean over unordered pairs of
  ``d'(u, v) / d(u, v)``.

The all-pairs loops are NumPy-vectorized where they dominate (rank
computation, ratio statistics); the per-pair query itself is a few dict
lookups (Lemma 3.2's O(k)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigError
from repro.rng import SeedLike, ensure_rng


def eps_far_mask(dist_matrix: np.ndarray, eps: float) -> np.ndarray:
    """Boolean matrix ``M[u, v]`` = "``v`` is ε-far from ``u``".

    ``rank[u, v]`` counts vertices strictly closer to ``u`` than ``v``
    (``u`` itself always counts for ``v != u`` since ``d(u,u) = 0``).
    """
    n = dist_matrix.shape[0]
    need = eps * n
    mask = np.zeros((n, n), dtype=bool)
    for u in range(n):
        row = dist_matrix[u]
        order = np.sort(row)
        ranks = np.searchsorted(order, row, side="left")
        mask[u] = ranks >= need
    np.fill_diagonal(mask, False)
    return mask


@dataclass(frozen=True)
class StretchReport:
    """Stretch statistics over a set of evaluated pairs."""

    pairs: int
    max_stretch: float
    mean_stretch: float
    median_stretch: float
    p95_stretch: float
    underestimates: int  # must be 0 for any correct sketch
    exact_fraction: float  # fraction of pairs answered exactly

    def as_row(self) -> dict:
        return {
            "pairs": self.pairs,
            "max": round(self.max_stretch, 3),
            "mean": round(self.mean_stretch, 3),
            "p95": round(self.p95_stretch, 3),
            "exact%": round(100 * self.exact_fraction, 1),
        }


def _pairs_iter(n: int, max_pairs: Optional[int], rng) -> np.ndarray:
    """All unordered pairs, or a uniform sample of them as an (m, 2) array."""
    iu, ju = np.triu_indices(n, k=1)
    total = iu.shape[0]
    if max_pairs is not None and total > max_pairs:
        sel = rng.choice(total, size=max_pairs, replace=False)
        iu, ju = iu[sel], ju[sel]
    return np.stack([iu, ju], axis=1)


def evaluate_stretch(dist_matrix: np.ndarray,
                     query: Callable[[int, int], float],
                     eps: Optional[float] = None,
                     max_pairs: Optional[int] = None,
                     seed: SeedLike = None,
                     rel_tol: float = 1e-9) -> StretchReport:
    """Measure the stretch of ``query`` against exact distances.

    With ``eps`` set, only pairs where at least one endpoint is ε-far from
    the other are scored (the pairs the slack guarantee covers).
    """
    n = dist_matrix.shape[0]
    if n < 2:
        raise ConfigError("need at least two nodes to evaluate stretch")
    rng = ensure_rng(seed)
    pairs = _pairs_iter(n, max_pairs, rng)
    far = eps_far_mask(dist_matrix, eps) if eps is not None else None

    ratios = []
    under = 0
    exact = 0
    for u, v in pairs:
        u, v = int(u), int(v)
        if far is not None and not (far[u, v] or far[v, u]):
            continue
        d = float(dist_matrix[u, v])
        est = query(u, v)
        if est < d * (1.0 - rel_tol):
            under += 1
        if est <= d * (1.0 + rel_tol):
            exact += 1
        ratios.append(est / d if d > 0 else 1.0)
    if not ratios:
        raise ConfigError("no pairs matched the slack filter")
    arr = np.asarray(ratios)
    return StretchReport(
        pairs=arr.size,
        max_stretch=float(arr.max()),
        mean_stretch=float(arr.mean()),
        median_stretch=float(np.median(arr)),
        p95_stretch=float(np.percentile(arr, 95)),
        underestimates=under,
        exact_fraction=exact / arr.size,
    )


def average_stretch(dist_matrix: np.ndarray,
                    query: Callable[[int, int], float],
                    max_pairs: Optional[int] = None,
                    seed: SeedLike = None) -> float:
    """Lemma 4.7's average stretch: mean of ``d'(u,v)/d(u,v)`` over pairs."""
    report = evaluate_stretch(dist_matrix, query, eps=None,
                              max_pairs=max_pairs, seed=seed)
    return report.mean_stretch


def slack_coverage(dist_matrix: np.ndarray, eps: float) -> float:
    """Fraction of unordered pairs the ε-slack guarantee covers — the
    ``1 - ε`` of the paper's informal statement (measured exactly)."""
    far = eps_far_mask(dist_matrix, eps)
    cover = far | far.T
    n = dist_matrix.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    return float(cover[iu, ju].mean())
