"""The online sketch-exchange query (paper Section 2.1).

After preprocessing, two nodes estimate their distance by *exchanging
sketches over the network*: ``v`` ships its sketch to ``u`` (or both ship
to each other), then the estimate is computed locally.  The paper's claim:
this costs at most ``O(D · sketch-size)`` rounds (``D`` = hop diameter),
whereas any from-scratch distance computation (Bellman-Ford, a ping...)
needs ``Ω(S)`` rounds — and ``S`` can exceed ``D`` by a factor of ``n``
(the ``star_path`` family realizes the gap).

We model the exchange as chunked store-and-forward along a hop-shortest
path: a sketch of ``W`` words moves in ``ceil(W / B)`` chunks of ``B``
words; consecutive chunks pipeline, so a path of ``h`` hops delivers the
sketch in ``h + ceil(W/B) - 1`` rounds (classic pipelining bound, and the
exact behaviour of a chunked relay in the simulator — verified by a test
against :class:`SketchRelayProgram` below).  Experiment E10 reports this
against the measured ``Ω(S)`` of a fresh Bellman-Ford run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.congest.context import NodeContext
from repro.congest.metrics import RunMetrics
from repro.congest.network import Simulator
from repro.congest.node import NodeProgram
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp_hops
from repro.rng import SeedLike
from repro.words import DEFAULT_BANDWIDTH_WORDS


@dataclass(frozen=True)
class OnlineQueryCost:
    """Predicted cost of one online sketch exchange."""

    hops: int
    sketch_words: int
    chunks: int
    rounds_pipelined: int
    rounds_naive: int  # store-and-forward without pipelining: hops * chunks

    def as_row(self) -> dict:
        return {"hops": self.hops, "words": self.sketch_words,
                "rounds": self.rounds_pipelined,
                "rounds_naive": self.rounds_naive}


def online_query_cost(hops: int, sketch_words: int,
                      bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
                      ) -> OnlineQueryCost:
    """Closed-form cost of shipping one sketch over ``hops`` hops."""
    if hops < 0 or sketch_words < 0:
        raise ConfigError("hops and sketch_words must be nonnegative")
    if bandwidth_words < 1:
        raise ConfigError("bandwidth_words must be >= 1")
    chunks = max(1, math.ceil(sketch_words / bandwidth_words))
    return OnlineQueryCost(
        hops=hops, sketch_words=sketch_words, chunks=chunks,
        rounds_pipelined=(0 if hops == 0 else hops + chunks - 1),
        rounds_naive=hops * chunks)


def online_query_cost_many(hops, sketch_words,
                           bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
                           ) -> dict:
    """Vectorized :func:`online_query_cost` for a whole query batch.

    ``hops`` and ``sketch_words`` broadcast against each other (e.g. one
    hop count per pair, one shared sketch size).  Returns arrays keyed like
    :meth:`OnlineQueryCost.as_row`, so the serving layer can budget the
    total round cost of answering a batch online.
    """
    if bandwidth_words < 1:
        raise ConfigError("bandwidth_words must be >= 1")
    hops_a = np.atleast_1d(np.asarray(hops, dtype=np.int64))
    words_a = np.atleast_1d(np.asarray(sketch_words, dtype=np.int64))
    hops_a, words_a = np.broadcast_arrays(hops_a, words_a)
    if (hops_a < 0).any() or (words_a < 0).any():
        raise ConfigError("hops and sketch_words must be nonnegative")
    chunks = np.maximum(1, -(-words_a // bandwidth_words))
    return {
        "hops": hops_a,
        "words": words_a,
        "chunks": chunks,
        "rounds": np.where(hops_a == 0, 0, hops_a + chunks - 1),
        "rounds_naive": hops_a * chunks,
    }


class SketchRelayProgram(NodeProgram):
    """Chunked relay of an opaque payload along a fixed path.

    Each chunk is ``("chunk", seq, filler...)`` padded to the bandwidth
    budget; a relay node forwards the chunk it received last round (classic
    store-and-forward pipelining).  Used by tests to confirm the
    closed-form :func:`online_query_cost` matches simulated behaviour.
    """

    def __init__(self, node: int, path: list[int], n_chunks: int,
                 chunk_words: int):
        self.node = node
        self.path = path
        self.n_chunks = n_chunks
        self.chunk_words = chunk_words
        try:
            idx = path.index(node)
            self.next_hop: Optional[int] = (
                path[idx + 1] if idx + 1 < len(path) else None)
        except ValueError:
            self.next_hop = None
        self.is_origin = bool(path) and node == path[0]
        self._to_send = list(range(n_chunks)) if self.is_origin else []
        self.received: list[int] = []

    def _chunk(self, seq: int) -> tuple:
        filler = tuple(0 for _ in range(max(0, self.chunk_words - 2)))
        return ("chunk", seq) + filler

    def on_start(self, ctx: NodeContext) -> None:
        self._pump(ctx)

    def _pump(self, ctx: NodeContext) -> None:
        if self._to_send and self.next_hop is not None:
            ctx.send(self.next_hop, self._chunk(self._to_send.pop(0)))

    def on_round(self, ctx: NodeContext, inbox: dict[int, Any]) -> None:
        for payload in inbox.values():
            if isinstance(payload, tuple) and payload[0] == "chunk":
                seq = payload[1]
                if self.next_hop is not None:
                    self._to_send.append(seq)
                else:
                    self.received.append(seq)
        self._pump(ctx)

    def has_pending(self) -> bool:
        return bool(self._to_send) and self.next_hop is not None

    def result(self) -> list[int]:
        return self.received


def simulate_online_exchange(graph: Graph, u: int, v: int, sketch_words: int,
                             bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
                             seed: SeedLike = None,
                             ) -> tuple[OnlineQueryCost, RunMetrics]:
    """Ship a ``sketch_words``-word payload from ``v`` to ``u`` along a
    hop-shortest path, for real, in the simulator.

    Returns the closed-form prediction and the measured metrics (tests
    assert ``metrics.rounds == prediction.rounds_pipelined``).
    """
    path = _hop_shortest_path(graph, v, u)
    cost = online_query_cost(len(path) - 1, sketch_words, bandwidth_words)
    sim = Simulator(
        graph,
        lambda w: SketchRelayProgram(w, path, cost.chunks, bandwidth_words),
        seed=seed, bandwidth_words=bandwidth_words)
    res = sim.run()
    received = res.programs[u].result()
    if sorted(received) != list(range(cost.chunks)):
        raise ConfigError("relay lost chunks — simulator bug")
    return cost, res.metrics


def _hop_shortest_path(graph: Graph, src: int, dst: int) -> list[int]:
    """BFS path (fewest hops) from src to dst."""
    from collections import deque

    prev = {src: None}
    dq = deque([src])
    while dq:
        x = dq.popleft()
        if x == dst:
            break
        for y in graph.neighbors(x):
            if y not in prev:
                prev[y] = x
                dq.append(y)
    if dst not in prev:
        raise ConfigError(f"no path {src} -> {dst}")
    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    return path[::-1]


def hop_distance(graph: Graph, u: int, v: int) -> int:
    """Minimum hop count between two nodes (helper for E10 tables)."""
    h = apsp_hops(graph)
    return int(h[u, v])
