"""Scheme registry: one :class:`SchemeSpec` per sketch family.

Each spec records the paper result it implements, the theoretical
worst-case stretch as a function of the build parameters, and the slack
semantics (whether the stretch bound holds for all pairs or only ε-far
pairs) — the evaluation layer uses these to know which pairs a bound
applies to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class SchemeSpec:
    """Metadata for one sketch scheme."""

    name: str
    paper_result: str
    #: worst-case stretch bound as a function of the build params dict;
    #: applies to all pairs (slack=None) or only eps-far pairs
    stretch_bound: Callable[[dict], float]
    #: returns the eps for which the bound holds, or None for all-pairs
    slack_of: Callable[[dict], Optional[float]]
    #: whether the serving layer (:mod:`repro.service`) has a vectorized
    #: batched-query index for this scheme; others fall back to a loop
    supports_batch: bool = False

    def describe(self, params: dict) -> str:
        slack = self.slack_of(params)
        bound = self.stretch_bound(params)
        tail = f" with {slack}-slack" if slack is not None else ""
        return f"{self.name}: stretch <= {bound:g}{tail} ({self.paper_result})"


def _tz_stretch(p: dict) -> float:
    return 2 * p["k"] - 1


def _stretch3_stretch(p: dict) -> float:
    return 3.0


def _cdg_stretch(p: dict) -> float:
    return 8 * p["k"] - 1


def _graceful_stretch(p: dict) -> float:
    # worst case: the eps < 1/n component, stretch 8*ceil(log2 n) - 1
    n = p["n"]
    return 8 * max(1, math.ceil(math.log2(max(n, 2)))) - 1


SCHEMES: dict[str, SchemeSpec] = {
    "tz": SchemeSpec(
        name="tz",
        paper_result="Theorem 1.1/3.8 (distributed Thorup-Zwick)",
        stretch_bound=_tz_stretch,
        slack_of=lambda p: None,
        supports_batch=True,
    ),
    "stretch3": SchemeSpec(
        name="stretch3",
        paper_result="Theorem 4.3 (density-net table)",
        stretch_bound=_stretch3_stretch,
        slack_of=lambda p: p["eps"],
    ),
    "cdg": SchemeSpec(
        name="cdg",
        paper_result="Theorem 4.6 ((eps,k)-CDG)",
        stretch_bound=_cdg_stretch,
        slack_of=lambda p: p["eps"],
    ),
    "graceful": SchemeSpec(
        name="graceful",
        paper_result="Theorem 4.8 / Corollary 4.9 (gracefully degrading)",
        stretch_bound=_graceful_stretch,
        slack_of=lambda p: None,  # all pairs, at the O(log n) worst case
    ),
}


def get_scheme(name: str) -> SchemeSpec:
    try:
        return SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {sorted(SCHEMES)}") from None
