"""Scheme registry: one :class:`SchemeSpec` per sketch family.

Each spec records the paper result it implements, the theoretical
worst-case stretch as a function of the build parameters, and the slack
semantics (whether the stretch bound holds for all pairs or only ε-far
pairs) — the evaluation layer uses these to know which pairs a bound
applies to.

The registry is also the source of the capability matrix rendered by
``python -m repro schemes --markdown`` (and pasted into the README):
which build modes exist, whether the serving layer has a vectorized
batched index, and whether the wire format round-trips the sketches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class SchemeSpec:
    """Metadata for one sketch scheme.

    :param name: registry key (``"tz"``, ``"stretch3"``, ``"cdg"``,
        ``"graceful"``).
    :param paper_result: the theorem/lemma this scheme implements.
    :param stretch_bound: worst-case stretch bound as a function of the
        build params dict; applies to all pairs (``slack_of`` returns
        ``None``) or only eps-far pairs.
    :param slack_of: returns the eps for which the bound holds, or
        ``None`` for all-pairs.
    :param supports_batch: whether the serving layer
        (:mod:`repro.service`) has a vectorized batched-query index for
        this scheme.  Every built-in scheme does (see
        :mod:`repro.service.index`); the flag exists so external schemes
        registered without an index fall back to the generic loop.
    :param build_modes: construction modes :func:`~repro.oracle.api.build_sketches`
        accepts for this scheme.
    :param supports_serialize: whether :mod:`repro.oracle.serialization`
        round-trips this scheme's sketches (and its pre-built index).
    :param supports_updates: whether the dynamic-update subsystem
        (:mod:`repro.service.updates`) can incrementally repair this
        scheme's index on edge-weight changes (every built-in scheme
        can; external schemes without a repair strategy rebuild).
    """

    name: str
    paper_result: str
    stretch_bound: Callable[[dict], float]
    slack_of: Callable[[dict], Optional[float]]
    supports_batch: bool = False
    build_modes: tuple[str, ...] = ("centralized", "distributed")
    supports_serialize: bool = True
    supports_updates: bool = False

    @property
    def transports(self) -> tuple[str, ...]:
        """Which serving transports (:mod:`repro.service.transport`) can
        host this scheme.  ``inproc`` always works (the generic
        single-pair loop needs no index); ``proc`` and ``tcp`` route
        through the shard-decomposed batched index, so they require
        :attr:`supports_batch`."""
        if self.supports_batch:
            return ("inproc", "proc", "tcp")
        return ("inproc",)

    @property
    def pools(self) -> tuple[str, ...]:
        """Which shard execution planes
        (:data:`~repro.service.workers.POOL_MODES`) can fan this
        scheme's batches out.  Both require the shard-decomposed
        batched index; without one the scheme serves in-process only."""
        if self.supports_batch:
            return ("proc", "thread")
        return ()

    def describe(self, params: dict) -> str:
        """One-line human summary of the guarantee under ``params``."""
        slack = self.slack_of(params)
        bound = self.stretch_bound(params)
        tail = f" with {slack}-slack" if slack is not None else ""
        return f"{self.name}: stretch <= {bound:g}{tail} ({self.paper_result})"


def _tz_stretch(p: dict) -> float:
    return 2 * p["k"] - 1


def _stretch3_stretch(p: dict) -> float:
    return 3.0


def _cdg_stretch(p: dict) -> float:
    return 8 * p["k"] - 1


def _graceful_stretch(p: dict) -> float:
    # worst case: the eps < 1/n component, stretch 8*ceil(log2 n) - 1
    n = p["n"]
    return 8 * max(1, math.ceil(math.log2(max(n, 2)))) - 1


SCHEMES: dict[str, SchemeSpec] = {
    "tz": SchemeSpec(
        name="tz",
        paper_result="Theorem 1.1/3.8 (distributed Thorup-Zwick)",
        stretch_bound=_tz_stretch,
        slack_of=lambda p: None,
        supports_batch=True,
        supports_updates=True,
    ),
    "stretch3": SchemeSpec(
        name="stretch3",
        paper_result="Theorem 4.3 (density-net table)",
        stretch_bound=_stretch3_stretch,
        slack_of=lambda p: p["eps"],
        supports_batch=True,
        supports_updates=True,
    ),
    "cdg": SchemeSpec(
        name="cdg",
        paper_result="Theorem 4.6 ((eps,k)-CDG)",
        stretch_bound=_cdg_stretch,
        slack_of=lambda p: p["eps"],
        supports_batch=True,
        supports_updates=True,
    ),
    "graceful": SchemeSpec(
        name="graceful",
        paper_result="Theorem 4.8 / Corollary 4.9 (gracefully degrading)",
        stretch_bound=_graceful_stretch,
        slack_of=lambda p: None,  # all pairs, at the O(log n) worst case
        supports_batch=True,
        supports_updates=True,
    ),
}


def get_scheme(name: str) -> SchemeSpec:
    """Look a scheme up by registry name.

    :raises ConfigError: for an unknown name.
    """
    try:
        return SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {sorted(SCHEMES)}") from None


# ----------------------------------------------------------------------
# the capability matrix (``python -m repro schemes``)
# ----------------------------------------------------------------------
def scheme_support_matrix() -> list[dict]:
    """One JSON-ready row per registered scheme, derived entirely from the
    :data:`SCHEMES` registry (so the docs can never drift from the code)."""
    return [{
        "scheme": name,
        "paper_result": spec.paper_result,
        "build": list(spec.build_modes),
        "query": True,  # every registered scheme answers single queries
        "batch": spec.supports_batch,
        "serialize": spec.supports_serialize,
        "updates": spec.supports_updates,
        "transports": list(spec.transports),
        "pools": list(spec.pools),
    } for name, spec in sorted(SCHEMES.items())]


def schemes_markdown() -> str:
    """The support matrix as a GitHub-flavored markdown table — the exact
    text ``python -m repro schemes --markdown`` prints and the README
    embeds."""
    yn = {True: "yes", False: "no"}
    lines = [
        "| scheme | build | single query | batched query | serialized "
        "| incremental updates | transports | pools |",
        "|--------|-------|--------------|---------------|------------"
        "|---------------------|------------|-------|",
    ]
    lines.extend(
        f"| `{row['scheme']}` | {', '.join(row['build'])} "
        f"| {yn[row['query']]} | {yn[row['batch']]} "
        f"| {yn[row['serialize']]} | {yn[row['updates']]} "
        f"| {', '.join(row['transports'])} "
        f"| {', '.join(row['pools']) or '—'} |"
        for row in scheme_support_matrix())
    return "\n".join(lines)
