"""Sketch serialization: ship labels between processes or to disk.

A distance sketch is only useful if it can leave the node that built it
(the online query of Section 2.1 literally transmits one).  This module
provides a stable, JSON-compatible wire format for every sketch type in
the library, with word-size-faithful content (IDs, distances, levels —
nothing else), plus round-trip helpers for whole sketch sets and for the
pre-built serving indexes of :mod:`repro.service.index` (one encoder per
:class:`~repro.service.index.IndexStore` implementation).

Format: ``{"type": ..., "v": 1, ...payload...}``.  Decoding validates the
type tag and version so mixed-version archives fail loudly.  Infinite
distances (possible on disconnected graphs) are encoded as ``null`` —
RFC 8259 JSON has no ``Infinity`` token, and the files must stay readable
by strict parsers; the decoder accepts both spellings.
"""

from __future__ import annotations

import io
import json
import math
import os
import struct
from typing import Optional, Union

import numpy as np

from repro.errors import QueryError
from repro.slack.cdg import CDGSketch
from repro.slack.graceful import GracefulSketch
from repro.slack.stretch3 import Stretch3Sketch
from repro.tz.sketch import TZSketch

VERSION = 1

#: magic prefix of the binary index container (see ``save_index_binary``)
BINARY_MAGIC = b"RPIX"
#: version of the binary container layout (independent of the JSON
#: payload version above, which governs the logical content)
BINARY_VERSION = 1

AnySketch = Union[TZSketch, Stretch3Sketch, CDGSketch, GracefulSketch]

_INDEX_TAGS = {"tz_index", "stretch3_index", "cdg_index", "graceful_index"}


def _enc_dist(d: float) -> Optional[float]:
    """Finite distance -> float, infinite -> ``null`` (strict JSON)."""
    return float(d) if math.isfinite(d) else None


def _dec_dist(d) -> float:
    """Inverse of :func:`_enc_dist`; tolerates legacy raw ``Infinity``."""
    return math.inf if d is None else float(d)


def sketch_to_dict(sketch: AnySketch) -> dict:
    """Encode any library sketch as a JSON-compatible dict."""
    if isinstance(sketch, TZSketch):
        # sorted entry streams: the wire form is canonical — independent
        # of the in-memory dict's insertion history, so equal sketches
        # always serialize to equal bytes
        return {
            "type": "tz", "v": VERSION, "node": sketch.node, "k": sketch.k,
            "pivots": [[p, _enc_dist(d)] for p, d in sketch.pivots],
            "bunch": [[v, sketch.bunch[v][0], sketch.bunch[v][1]]
                      for v in sorted(sketch.bunch)],
        }
    if isinstance(sketch, Stretch3Sketch):
        return {
            "type": "stretch3", "v": VERSION, "node": sketch.node,
            "eps": sketch.eps,
            "entries": [[w, _enc_dist(sketch.entries[w])]
                        for w in sorted(sketch.entries)],
        }
    if isinstance(sketch, CDGSketch):
        return {
            "type": "cdg", "v": VERSION, "node": sketch.node,
            "eps": sketch.eps, "k": sketch.k,
            "gateway": sketch.gateway,
            "gateway_dist": _enc_dist(sketch.gateway_dist),
            "label": sketch_to_dict(sketch.label),
        }
    if isinstance(sketch, GracefulSketch):
        return {
            "type": "graceful", "v": VERSION, "node": sketch.node,
            "components": [sketch_to_dict(c) for c in sketch.components],
        }
    raise QueryError(f"cannot serialize {type(sketch).__name__}")


def sketch_from_dict(data: dict) -> AnySketch:
    """Decode a dict produced by :func:`sketch_to_dict`."""
    if not isinstance(data, dict) or "type" not in data:
        raise QueryError("not a serialized sketch")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    t = data["type"]
    if t == "tz":
        return TZSketch(
            node=data["node"], k=data["k"],
            pivots=tuple((int(p), _dec_dist(d)) for p, d in data["pivots"]),
            bunch={int(v): (float(d), int(lvl))
                   for v, d, lvl in data["bunch"]})
    if t == "stretch3":
        return Stretch3Sketch(
            node=data["node"], eps=data["eps"],
            entries={int(w): _dec_dist(d) for w, d in data["entries"]})
    if t == "cdg":
        return CDGSketch(
            node=data["node"], eps=data["eps"], k=data["k"],
            gateway=data["gateway"],
            gateway_dist=_dec_dist(data["gateway_dist"]),
            label=sketch_from_dict(data["label"]))
    if t == "graceful":
        return GracefulSketch(
            node=data["node"],
            components=tuple(sketch_from_dict(c)
                             for c in data["components"]))
    raise QueryError(f"unknown sketch type tag {t!r}")


# ----------------------------------------------------------------------
# edge-change streams (the dynamic-update subsystem's wire format)
# ----------------------------------------------------------------------
def change_to_dict(change) -> dict:
    """Encode an :class:`~repro.service.updates.EdgeChange` with the
    library's standard ``{"type", "v"}`` envelope (one JSON line of a
    ``changes.jsonl`` stream, as consumed by ``repro build
    --apply-updates`` and :meth:`~repro.service.updates.UpdateableIndex.
    apply`).  The endpoints travel as an ``"edge": [u, v]`` pair — the
    envelope's ``"v"`` key is the format version, as everywhere else."""
    out = {"type": "edge_change", "v": VERSION, "op": change.op,
           "edge": [int(change.u), int(change.v)]}
    if change.op != "remove":
        out["weight"] = float(change.weight)
    return out


def change_from_dict(data: dict):
    """Decode a dict produced by :func:`change_to_dict`."""
    from repro.service.updates import EdgeChange

    if not isinstance(data, dict) or data.get("type") != "edge_change":
        raise QueryError("not a serialized edge change")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    edge = data.get("edge")
    if not isinstance(edge, (list, tuple)) or len(edge) != 2:
        raise QueryError("edge change wants an [u, v] endpoint pair")
    return EdgeChange(op=str(data["op"]), u=int(edge[0]), v=int(edge[1]),
                      weight=data.get("weight"))


# ----------------------------------------------------------------------
# pre-built serving indexes
# ----------------------------------------------------------------------
def index_to_dict(index) -> dict:
    """Encode any :class:`~repro.service.index.IndexStore` implementation.

    Each payload is the index's canonical form — shard-count independent
    and independent of any dense/sparse storage split — so a load
    rebuilds a store with identical batched answers:

    * ``tz_index`` — per-node pivot tables plus the bunch-entry stream in
      composite-key order;
    * ``stretch3_index`` — the finite ``(owner, net node, dist)`` stream;
    * ``cdg_index`` — per-node gateway pairs plus the net labels;
    * ``graceful_index`` — one ``cdg_index`` payload per ε-component.
    """
    from repro.service.index import (CDGIndex, GracefulIndex, Stretch3Index,
                                     TZIndex)

    if isinstance(index, TZIndex):
        return {
            "type": "tz_index", "v": VERSION,
            "n": index.n, "k": index.k, "num_shards": index.num_shards,
            "pivots": [[[int(index.pivot_ids[u, i]),
                         _enc_dist(index.pivot_dists[u, i])]
                        for i in range(index.k)] for u in range(index.n)],
            "entries": [[u, w, d, lvl]
                        for u, w, d, lvl in index.iter_entries()],
        }
    if isinstance(index, Stretch3Index):
        return {
            "type": "stretch3_index", "v": VERSION,
            "n": index.n, "eps": index.eps,
            "num_shards": index.num_shards,
            "entries": [[u, w, d] for u, w, d in index.iter_entries()],
        }
    if isinstance(index, CDGIndex):
        return {
            "type": "cdg_index", "v": VERSION,
            "n": index.n, "eps": index.eps, "k": index.k,
            "num_shards": index.num_shards,
            "gateways": [[int(index.gateway_ids[u]),
                          _enc_dist(index.gateway_dists[u])]
                         for u in range(index.n)],
            "labels": [sketch_to_dict(index.labels[w])
                       for w in sorted(index.labels)],
        }
    if isinstance(index, GracefulIndex):
        # the top-level shard count governs every component on load, so
        # the nested cdg payloads drop theirs (keeps the form canonical)
        components = []
        for c in index.components:
            payload = index_to_dict(c)
            payload.pop("num_shards")
            components.append(payload)
        return {
            "type": "graceful_index", "v": VERSION,
            "n": index.n, "num_shards": index.num_shards,
            "components": components,
        }
    raise QueryError(f"cannot serialize index {type(index).__name__}")


def _check_index_header(data, tag: str) -> None:
    if not isinstance(data, dict) or data.get("type") not in _INDEX_TAGS:
        raise QueryError("not a serialized index")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    if data["type"] != tag:  # pragma: no cover - internal dispatch only
        raise QueryError(f"expected a {tag}, got {data['type']}")


def _cdg_sketch_list(data: dict) -> list[CDGSketch]:
    """Rebuild the per-node CDG sketch set behind a ``cdg_index`` payload
    (shared by the cdg and graceful decoders)."""
    _check_index_header(data, "cdg_index")
    n, eps, k = int(data["n"]), float(data["eps"]), int(data["k"])
    labels: dict[int, TZSketch] = {}
    for entry in data["labels"]:
        lbl = sketch_from_dict(entry)
        if not isinstance(lbl, TZSketch):
            raise QueryError("cdg_index labels must be tz sketches")
        labels[lbl.node] = lbl
    if len(data["gateways"]) != n:
        raise QueryError(f"cdg_index wants {n} gateway rows, "
                         f"got {len(data['gateways'])}")
    out = []
    for u, (gw, gd) in enumerate(data["gateways"]):
        gw = int(gw)
        lbl = labels.get(gw)
        if lbl is None:
            raise QueryError(f"cdg_index gateway {gw} has no label")
        out.append(CDGSketch(node=u, eps=eps, k=k, gateway=gw,
                             gateway_dist=_dec_dist(gd), label=lbl))
    return out


def index_from_dict(data: dict):
    """Decode a dict produced by :func:`index_to_dict` (any index type)."""
    from repro.service.index import (CDGIndex, GracefulIndex, Stretch3Index,
                                     TZIndex)

    if not isinstance(data, dict) or data.get("type") not in _INDEX_TAGS:
        raise QueryError("not a serialized index")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    t = data["type"]
    shards = int(data.get("num_shards", 1))

    if t == "tz_index":
        n, k = int(data["n"]), int(data["k"])
        bunches: list[dict[int, tuple[float, int]]] = [dict()
                                                       for _ in range(n)]
        for u, w, d, lvl in data["entries"]:
            u, w = int(u), int(w)
            if not (0 <= u < n and 0 <= w < n):
                raise QueryError(
                    f"tz_index entry ({u}, {w}) out of range [0, {n})")
            bunches[u][w] = (float(d), int(lvl))

        def pivot(p, d) -> tuple[int, float]:
            p = int(p)
            if not (-1 <= p < n):  # -1 is the INF_KEY sentinel
                raise QueryError(
                    f"tz_index pivot id {p} out of range [0, {n})")
            return p, _dec_dist(d)

        sketches = [TZSketch(node=u, k=k,
                             pivots=tuple(pivot(p, d)
                                          for p, d in data["pivots"][u]),
                             bunch=bunches[u])
                    for u in range(n)]
        return TZIndex(sketches, num_shards=shards)

    if t == "stretch3_index":
        n, eps = int(data["n"]), float(data["eps"])
        per: list[dict[int, float]] = [dict() for _ in range(n)]
        for u, w, d in data["entries"]:
            u = int(u)
            if not 0 <= u < n:
                raise QueryError(
                    f"stretch3_index owner {u} out of range [0, {n})")
            per[u][int(w)] = float(d)
        sketches = [Stretch3Sketch(node=u, eps=eps, entries=per[u])
                    for u in range(n)]
        return Stretch3Index(sketches, num_shards=shards)

    if t == "cdg_index":
        return CDGIndex(_cdg_sketch_list(data), num_shards=shards)

    # graceful_index
    comp_lists = [_cdg_sketch_list(c) for c in data["components"]]
    n = int(data["n"])
    if any(len(cl) != n for cl in comp_lists):
        raise QueryError("graceful_index component size mismatch")
    sketches = [GracefulSketch(node=u,
                               components=tuple(cl[u] for cl in comp_lists))
                for u in range(n)]
    return GracefulIndex(sketches, num_shards=shards)


def save_index(index, path) -> None:
    """Persist a pre-indexed store as one strict-JSON document."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(index_to_dict(index), fh, separators=(",", ":"),
                  allow_nan=False)
        fh.write("\n")


def load_index(path):
    """Load a store written by :func:`save_index`."""
    with open(path, "r", encoding="ascii") as fh:
        return index_from_dict(json.load(fh))


# ----------------------------------------------------------------------
# the binary index container (header + raw array blobs)
# ----------------------------------------------------------------------
# Layout (little-endian):
#
#   offset 0   BINARY_MAGIC  (4 bytes, b"RPIX")
#   offset 4   uint16  container version (BINARY_VERSION)
#   offset 6   uint16  reserved (zero)
#   offset 8   uint32  header length H
#   offset 12  H bytes of ASCII JSON:
#              {"type": tag, "v": VERSION, "meta": {...},
#               "manifest": [[name, dtype, shape, offset], ...],
#               "nbytes": blob span, "base": blob start in the file}
#   offset base  the raw array blobs, 64-byte aligned relative to base
#
# The blobs are exactly a BufferPack layout, so loading with
# ``backing="mmap"`` attaches the arrays straight off the page cache —
# the only parsing is the (small) JSON header.  The JSON format above
# stays the canonical interchange form; this container is the fast path
# for serving boxes.
def write_index_binary(index, fh) -> None:
    """Write the binary container to an open binary file object.

    The streamable core of :func:`save_index_binary` — also what the
    TCP transport's index-fetch frame serializes into, so a remote
    worker downloads byte-for-byte the container ``repro build
    --format binary`` would have written and attaches/mmaps it
    unchanged (zero-parse on the wire).
    """
    from repro.service.buffers import plan_layout
    from repro.service.index import INDEX_TAGS

    tag = INDEX_TAGS.get(type(index))
    if tag is None:
        raise QueryError(f"cannot serialize index {type(index).__name__}")
    arrays = index.pack_arrays()
    manifest, nbytes = plan_layout(arrays)
    header = {
        "type": tag, "v": VERSION, "meta": index.pack_meta(),
        "manifest": [[name, dt, list(shape), off]
                     for name, dt, shape, off in manifest],
        "nbytes": nbytes,
    }
    probe = json.dumps({**header, "base": 0}, separators=(",", ":"))
    # the final header embeds its own blob base; pad the estimate so the
    # base digits cannot change the header length
    base = 12 + len(probe) + 16
    base = (base + 63) & ~63
    header_json = json.dumps({**header, "base": base},
                             separators=(",", ":")).encode("ascii")
    fh.write(BINARY_MAGIC)
    fh.write(struct.pack("<HHI", BINARY_VERSION, 0, len(header_json)))
    fh.write(header_json)
    fh.write(b"\0" * (base - 12 - len(header_json)))
    cursor = 0
    values = list(arrays.values())
    for (name, dt, shape, off), arr in zip(manifest, values):
        if off > cursor:
            fh.write(b"\0" * (off - cursor))
            cursor = off
        blob = np.ascontiguousarray(arr).tobytes()
        fh.write(blob)
        cursor += len(blob)


def index_binary_bytes(index) -> bytes:
    """The binary container as one byte string (the TCP index blob)."""
    buf = io.BytesIO()
    write_index_binary(index, buf)
    return buf.getvalue()


def save_index_binary(index, path) -> None:
    """Persist any pre-built store as a binary container: a small JSON
    header plus the store's contiguous arrays as raw aligned blobs."""
    with open(path, "wb") as fh:
        write_index_binary(index, fh)


def _read_binary_header(fh) -> dict:
    head = fh.read(12)
    if len(head) < 12 or head[:4] != BINARY_MAGIC:
        raise QueryError("not a binary index container")
    version, _, hlen = struct.unpack("<HHI", head[4:])
    if version != BINARY_VERSION:
        raise QueryError(
            f"unsupported binary container version {version}")
    try:
        header = json.loads(fh.read(hlen).decode("ascii"))
    except (ValueError, UnicodeDecodeError):  # short read or garbage
        raise QueryError("binary index container header is corrupt") \
            from None
    if not isinstance(header, dict):
        raise QueryError("binary index container header is corrupt")
    # the binary path is registry-driven end to end: accept exactly the
    # tags save_index_binary can write (unlike _INDEX_TAGS, which names
    # the formats the hand-written JSON decoders understand)
    from repro.service.index import INDEX_TAGS

    if header.get("type") not in set(INDEX_TAGS.values()):
        raise QueryError("binary container holds no known index type")
    if header.get("v") != VERSION:
        raise QueryError(
            f"unsupported sketch format version {header.get('v')}")
    return header


def is_binary_index(path) -> bool:
    """True when ``path`` starts with the binary container magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(BINARY_MAGIC)) == BINARY_MAGIC
    except OSError:
        return False


def load_index_binary(path, backing: str = "heap"):
    """Load a store written by :func:`save_index_binary`.

    :param backing: ``"heap"`` reads the blobs into memory; ``"mmap"``
        memory-maps the file and serves the arrays straight from the
        page cache — no blob parsing, no copy, instant loads however
        large the index.
    :raises QueryError: on a bad magic, container version, or type tag.
    """
    from repro.service.buffers import BufferPack, PackedIndex, PackHandle
    from repro.service.index import index_from_pack

    if backing not in ("heap", "mmap"):
        raise QueryError(
            f"load_index_binary backing must be 'heap' or 'mmap', "
            f"got {backing!r}")
    with open(path, "rb") as fh:
        header = _read_binary_header(fh)
        manifest = tuple((name, dt, tuple(shape), off)
                         for name, dt, shape, off in header["manifest"])
        nbytes, base = int(header["nbytes"]), int(header["base"])
        if backing == "heap":
            fh.seek(base)
            blob = fh.read(nbytes)
            if len(blob) < nbytes:
                raise QueryError("binary index container is truncated")
            handle = PackHandle("heap", manifest, nbytes, data=blob)
        else:
            if os.fstat(fh.fileno()).st_size < base + nbytes:
                raise QueryError("binary index container is truncated")
            handle = PackHandle("mmap", manifest, nbytes, path=str(path),
                                base=base)
    packed = PackedIndex(tag=header["type"], meta=header["meta"],
                         pack=BufferPack.attach(handle))
    return index_from_pack(packed)


def dumps(sketch: AnySketch) -> str:
    """Sketch -> JSON string."""
    return json.dumps(sketch_to_dict(sketch), separators=(",", ":"))


def loads(text: str) -> AnySketch:
    """JSON string -> sketch."""
    return sketch_from_dict(json.loads(text))


def save_sketch_set(sketches: list[AnySketch], path) -> None:
    """Persist a whole per-node sketch set as JSON lines."""
    with open(path, "w", encoding="ascii") as fh:
        for s in sketches:
            fh.write(dumps(s))
            fh.write("\n")


def load_sketch_set(path) -> list[AnySketch]:
    """Load a sketch set written by :func:`save_sketch_set`."""
    out = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(loads(line))
    return out
