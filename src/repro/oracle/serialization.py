"""Sketch serialization: ship labels between processes or to disk.

A distance sketch is only useful if it can leave the node that built it
(the online query of Section 2.1 literally transmits one).  This module
provides a stable, JSON-compatible wire format for every sketch type in
the library, with word-size-faithful content (IDs, distances, levels —
nothing else), plus round-trip helpers for whole sketch sets.

Format: ``{"type": ..., "v": 1, ...payload...}``.  Decoding validates the
type tag and version so mixed-version archives fail loudly.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.errors import QueryError
from repro.slack.cdg import CDGSketch
from repro.slack.graceful import GracefulSketch
from repro.slack.stretch3 import Stretch3Sketch
from repro.tz.sketch import TZSketch

VERSION = 1

AnySketch = Union[TZSketch, Stretch3Sketch, CDGSketch, GracefulSketch]


def sketch_to_dict(sketch: AnySketch) -> dict:
    """Encode any library sketch as a JSON-compatible dict."""
    if isinstance(sketch, TZSketch):
        return {
            "type": "tz", "v": VERSION, "node": sketch.node, "k": sketch.k,
            "pivots": [[p, d] for p, d in sketch.pivots],
            "bunch": [[v, d, lvl] for v, (d, lvl) in sketch.bunch.items()],
        }
    if isinstance(sketch, Stretch3Sketch):
        return {
            "type": "stretch3", "v": VERSION, "node": sketch.node,
            "eps": sketch.eps,
            "entries": [[w, d] for w, d in sketch.entries.items()],
        }
    if isinstance(sketch, CDGSketch):
        return {
            "type": "cdg", "v": VERSION, "node": sketch.node,
            "eps": sketch.eps, "k": sketch.k,
            "gateway": sketch.gateway, "gateway_dist": sketch.gateway_dist,
            "label": sketch_to_dict(sketch.label),
        }
    if isinstance(sketch, GracefulSketch):
        return {
            "type": "graceful", "v": VERSION, "node": sketch.node,
            "components": [sketch_to_dict(c) for c in sketch.components],
        }
    raise QueryError(f"cannot serialize {type(sketch).__name__}")


def sketch_from_dict(data: dict) -> AnySketch:
    """Decode a dict produced by :func:`sketch_to_dict`."""
    if not isinstance(data, dict) or "type" not in data:
        raise QueryError("not a serialized sketch")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    t = data["type"]
    if t == "tz":
        return TZSketch(
            node=data["node"], k=data["k"],
            pivots=tuple((int(p), float(d)) for p, d in data["pivots"]),
            bunch={int(v): (float(d), int(lvl))
                   for v, d, lvl in data["bunch"]})
    if t == "stretch3":
        return Stretch3Sketch(
            node=data["node"], eps=data["eps"],
            entries={int(w): float(d) for w, d in data["entries"]})
    if t == "cdg":
        return CDGSketch(
            node=data["node"], eps=data["eps"], k=data["k"],
            gateway=data["gateway"], gateway_dist=data["gateway_dist"],
            label=sketch_from_dict(data["label"]))
    if t == "graceful":
        return GracefulSketch(
            node=data["node"],
            components=tuple(sketch_from_dict(c)
                             for c in data["components"]))
    raise QueryError(f"unknown sketch type tag {t!r}")


def dumps(sketch: AnySketch) -> str:
    """Sketch -> JSON string."""
    return json.dumps(sketch_to_dict(sketch), separators=(",", ":"))


def loads(text: str) -> AnySketch:
    """JSON string -> sketch."""
    return sketch_from_dict(json.loads(text))


def save_sketch_set(sketches: list[AnySketch], path) -> None:
    """Persist a whole per-node sketch set as JSON lines."""
    with open(path, "w", encoding="ascii") as fh:
        for s in sketches:
            fh.write(dumps(s))
            fh.write("\n")


def load_sketch_set(path) -> list[AnySketch]:
    """Load a sketch set written by :func:`save_sketch_set`."""
    out = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(loads(line))
    return out
