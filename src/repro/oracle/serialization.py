"""Sketch serialization: ship labels between processes or to disk.

A distance sketch is only useful if it can leave the node that built it
(the online query of Section 2.1 literally transmits one).  This module
provides a stable, JSON-compatible wire format for every sketch type in
the library, with word-size-faithful content (IDs, distances, levels —
nothing else), plus round-trip helpers for whole sketch sets.

Format: ``{"type": ..., "v": 1, ...payload...}``.  Decoding validates the
type tag and version so mixed-version archives fail loudly.
"""

from __future__ import annotations

import json
import math
from typing import Any, Union

from repro.errors import QueryError
from repro.slack.cdg import CDGSketch
from repro.slack.graceful import GracefulSketch
from repro.slack.stretch3 import Stretch3Sketch
from repro.tz.sketch import TZSketch

VERSION = 1

AnySketch = Union[TZSketch, Stretch3Sketch, CDGSketch, GracefulSketch]


def sketch_to_dict(sketch: AnySketch) -> dict:
    """Encode any library sketch as a JSON-compatible dict."""
    if isinstance(sketch, TZSketch):
        return {
            "type": "tz", "v": VERSION, "node": sketch.node, "k": sketch.k,
            "pivots": [[p, d] for p, d in sketch.pivots],
            "bunch": [[v, d, lvl] for v, (d, lvl) in sketch.bunch.items()],
        }
    if isinstance(sketch, Stretch3Sketch):
        return {
            "type": "stretch3", "v": VERSION, "node": sketch.node,
            "eps": sketch.eps,
            "entries": [[w, d] for w, d in sketch.entries.items()],
        }
    if isinstance(sketch, CDGSketch):
        return {
            "type": "cdg", "v": VERSION, "node": sketch.node,
            "eps": sketch.eps, "k": sketch.k,
            "gateway": sketch.gateway, "gateway_dist": sketch.gateway_dist,
            "label": sketch_to_dict(sketch.label),
        }
    if isinstance(sketch, GracefulSketch):
        return {
            "type": "graceful", "v": VERSION, "node": sketch.node,
            "components": [sketch_to_dict(c) for c in sketch.components],
        }
    raise QueryError(f"cannot serialize {type(sketch).__name__}")


def sketch_from_dict(data: dict) -> AnySketch:
    """Decode a dict produced by :func:`sketch_to_dict`."""
    if not isinstance(data, dict) or "type" not in data:
        raise QueryError("not a serialized sketch")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    t = data["type"]
    if t == "tz":
        return TZSketch(
            node=data["node"], k=data["k"],
            pivots=tuple((int(p), float(d)) for p, d in data["pivots"]),
            bunch={int(v): (float(d), int(lvl))
                   for v, d, lvl in data["bunch"]})
    if t == "stretch3":
        return Stretch3Sketch(
            node=data["node"], eps=data["eps"],
            entries={int(w): float(d) for w, d in data["entries"]})
    if t == "cdg":
        return CDGSketch(
            node=data["node"], eps=data["eps"], k=data["k"],
            gateway=data["gateway"], gateway_dist=data["gateway_dist"],
            label=sketch_from_dict(data["label"]))
    if t == "graceful":
        return GracefulSketch(
            node=data["node"],
            components=tuple(sketch_from_dict(c)
                             for c in data["components"]))
    raise QueryError(f"unknown sketch type tag {t!r}")


def index_to_dict(index) -> dict:
    """Encode a :class:`~repro.service.index.TZIndex` (the pre-indexed
    batched-query store).

    The payload is the index's canonical form — per-node pivot tables plus
    the bunch-entry stream in composite-key order — so the encoding is
    independent of the shard count and of the dense/sparse storage split,
    and a load rebuilds a store with identical batched answers.

    An infinite pivot distance (the INF_KEY sentinel on disconnected
    graphs) is encoded as ``null``: RFC 8259 JSON has no ``Infinity``
    token, and the file must stay readable by strict parsers.
    """
    return {
        "type": "tz_index", "v": VERSION,
        "n": index.n, "k": index.k, "num_shards": index.num_shards,
        "pivots": [[[int(index.pivot_ids[u, i]),
                     (float(index.pivot_dists[u, i])
                      if math.isfinite(index.pivot_dists[u, i]) else None)]
                    for i in range(index.k)] for u in range(index.n)],
        "entries": [[u, w, d, lvl] for u, w, d, lvl in index.iter_entries()],
    }


def index_from_dict(data: dict):
    """Decode a dict produced by :func:`index_to_dict`."""
    from repro.service.index import TZIndex
    from repro.tz.sketch import TZSketch as TZ

    if not isinstance(data, dict) or data.get("type") != "tz_index":
        raise QueryError("not a serialized tz_index")
    if data.get("v") != VERSION:
        raise QueryError(f"unsupported sketch format version {data.get('v')}")
    n, k = int(data["n"]), int(data["k"])
    bunches: list[dict[int, tuple[float, int]]] = [dict() for _ in range(n)]
    for u, w, d, lvl in data["entries"]:
        u, w = int(u), int(w)
        if not (0 <= u < n and 0 <= w < n):
            raise QueryError(
                f"tz_index entry ({u}, {w}) out of range [0, {n})")
        bunches[u][w] = (float(d), int(lvl))
    inf = float("inf")

    def pivot(p, d) -> tuple[int, float]:
        p = int(p)
        if not (-1 <= p < n):  # -1 is the INF_KEY sentinel
            raise QueryError(f"tz_index pivot id {p} out of range [0, {n})")
        return p, (inf if d is None else float(d))

    sketches = [TZ(node=u, k=k,
                   pivots=tuple(pivot(p, d) for p, d in data["pivots"][u]),
                   bunch=bunches[u])
                for u in range(n)]
    return TZIndex(sketches, num_shards=int(data.get("num_shards", 1)))


def save_index(index, path) -> None:
    """Persist a pre-indexed store as one JSON document."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(index_to_dict(index), fh, separators=(",", ":"),
                  allow_nan=False)
        fh.write("\n")


def load_index(path):
    """Load a store written by :func:`save_index`."""
    with open(path, "r", encoding="ascii") as fh:
        return index_from_dict(json.load(fh))


def dumps(sketch: AnySketch) -> str:
    """Sketch -> JSON string."""
    return json.dumps(sketch_to_dict(sketch), separators=(",", ":"))


def loads(text: str) -> AnySketch:
    """JSON string -> sketch."""
    return sketch_from_dict(json.loads(text))


def save_sketch_set(sketches: list[AnySketch], path) -> None:
    """Persist a whole per-node sketch set as JSON lines."""
    with open(path, "w", encoding="ascii") as fh:
        for s in sketches:
            fh.write(dumps(s))
            fh.write("\n")


def load_sketch_set(path) -> list[AnySketch]:
    """Load a sketch set written by :func:`save_sketch_set`."""
    out = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(loads(line))
    return out
