"""High-level build/query/evaluate API (systems S16–S17).

:func:`repro.oracle.api.build_sketches` is the single entry point a
downstream user needs: pick a scheme (``"tz"``, ``"stretch3"``, ``"cdg"``,
``"graceful"``), a mode (``"centralized"`` or ``"distributed"``), and get a
:class:`~repro.oracle.api.BuiltSketches` that answers pairwise queries and
reports sizes and construction cost.
"""

from repro.oracle.api import build_sketches, BuiltSketches
from repro.oracle.schemes import (SCHEMES, SchemeSpec, get_scheme,
                                  scheme_support_matrix, schemes_markdown)
from repro.oracle.evaluation import (
    StretchReport,
    evaluate_stretch,
    eps_far_mask,
    average_stretch,
    slack_coverage,
)
from repro.oracle.online import (
    online_query_cost,
    online_query_cost_many,
    simulate_online_exchange,
)

__all__ = [
    "build_sketches",
    "BuiltSketches",
    "SCHEMES",
    "SchemeSpec",
    "get_scheme",
    "scheme_support_matrix",
    "schemes_markdown",
    "StretchReport",
    "evaluate_stretch",
    "eps_far_mask",
    "average_stretch",
    "slack_coverage",
    "online_query_cost",
    "online_query_cost_many",
    "simulate_online_exchange",
]
