"""The public build/query surface.

``build_sketches(graph, scheme=..., mode=...)`` dispatches to the right
construction and wraps the result in :class:`BuiltSketches`, which holds

* one sketch object per node (all schemes expose ``estimate_to`` and
  ``size_words``),
* the CONGEST cost (:class:`~repro.congest.metrics.RunMetrics`) for
  distributed builds (``None`` for centralized ones),
* the scheme metadata needed to interpret stretch guarantees.

TZ-specific parameters: ``k`` (and ``sync``/``S``/``budget`` when
distributed).  Slack schemes take ``eps`` (+ ``k`` for CDG); graceful takes
no scheme parameters (the schedule is fixed by Theorem 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.congest.metrics import RunMetrics
from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.oracle.schemes import SchemeSpec, get_scheme
from repro.rng import SeedLike
from repro.tz.sketch import estimate_distance


@dataclass
class BuiltSketches:
    """A complete per-node sketch set plus its provenance."""

    graph: Graph
    scheme: SchemeSpec
    mode: str
    params: dict
    sketches: list[Any]
    metrics: Optional[RunMetrics] = None
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def query(self, u: int, v: int, **kwargs) -> float:
        """Estimate ``d(u, v)`` from the two sketches alone."""
        su, sv = self.sketches[u], self.sketches[v]
        if self.scheme.name == "tz":
            return estimate_distance(su, sv, **kwargs)
        return su.estimate_to(sv)

    def connect(self, spec: str = "inproc://", *,
                cache_size: Optional[int] = None):
        """A serving session over this build —
        ``built.connect("proc://jobs=4;memory=shared")`` is shorthand
        for :func:`repro.service.transport.connect` with this sketch set
        as the source (``proc://jobs=4;pool=thread`` serves the shards
        from a GIL-releasing thread pool instead of worker processes).
        Returns an :class:`~repro.service.transport.OracleClient`; close
        it (or use it as a context manager) when done.
        """
        from repro.service.transport import connect as _connect

        return _connect(spec, self.sketches, cache_size=cache_size)

    def engine(self, cache_size: int = 65536, num_shards: int = 1,
               jobs: int = 1, memory: str = "heap"):
        """The batched :class:`~repro.service.engine.QueryEngine` over this
        sketch set (built on first use, then cached in ``extras``; asking
        for a different configuration rebuilds it — closing the previous
        engine's worker pool and shared segments, if it had any).

        .. deprecated::
            Open a session with :meth:`connect` (or
            :func:`repro.service.transport.connect`) instead; this path
            emits a single :class:`DeprecationWarning`.

        :param cache_size: LRU result-cache capacity.
        :param num_shards: landmark shard count for the index.
        :param jobs: worker processes behind the shards (``1`` =
            in-process); see :class:`~repro.service.workers.ShardServer`.
        :param memory: serving data plane — ``"heap"``, ``"shared"``
            (zero-copy worker attach + shared ring buffers), or
            ``"mmap"``; answers are identical in every mode.
        """
        from repro.service.engine import _warn_deprecated

        _warn_deprecated("BuiltSketches.engine")
        return self._engine(cache_size=cache_size, num_shards=num_shards,
                            jobs=jobs, memory=memory)

    def _engine(self, cache_size: int = 65536, num_shards: int = 1,
                jobs: int = 1, memory: str = "heap"):
        config = (cache_size, num_shards, jobs, memory)
        cached = self.extras.get("_engine")
        if cached is not None:
            if cached[0] == config:
                return cached[1]
            cached[1].close()
        from repro.service.engine import QueryEngine
        eng = QueryEngine(self.sketches, cache_size=cache_size,
                          num_shards=num_shards, jobs=jobs, memory=memory,
                          use_index=self.scheme.supports_batch,
                          _deprecation=False)
        self.extras["_engine"] = (config, eng)
        return eng

    def query_many(self, pairs):
        """Batched estimates for an iterable/array of ``(u, v)`` pairs —
        answers are bit-identical to looping :meth:`query`."""
        return self._engine().dist_many(pairs)

    def updateable(self, num_shards: int = 1,
                   rebuild_threshold: Optional[float] = None,
                   policy=None):
        """An :class:`~repro.service.updates.UpdateableIndex` over this
        build — accepts edge-change streams and incrementally repairs
        the index (bit-identical to a rebuild with the same artifacts).

        Reuses the already-built sketches and the build's random
        artifacts (hierarchy / density net) from ``extras``, so no
        reconstruction happens here.  Centralized builds of ``tz`` /
        ``stretch3`` / ``cdg`` only: distributed builds' metrics would
        not survive a repair, and a graceful build does not record its
        per-component nets — construct
        :class:`~repro.service.updates.UpdateableIndex` from the graph
        and a seed for those.

        ``policy`` is a :class:`~repro.service.updates.RepairPolicy`
        (or a :func:`~repro.service.updates.make_policy` name such as
        ``"adaptive"``) deciding repair vs rebuild per batch; by
        default the static ``rebuild_threshold`` rule applies.  Policy
        choice can only ever change seconds, never answers.

        :raises ConfigError: for a distributed build or a scheme whose
            artifacts are not recoverable from ``extras``.
        """
        from repro.service.updates import (REBUILD_THRESHOLD_DEFAULT,
                                           UpdateableIndex, make_policy)

        if isinstance(policy, str):
            policy = make_policy(policy, rebuild_threshold=rebuild_threshold)
        if self.mode != "centralized":
            raise ConfigError(
                "updateable() needs a centralized build (distributed "
                "cost metrics cannot be repaired incrementally)")
        if not self.scheme.supports_updates:
            raise ConfigError(
                f"scheme {self.scheme.name!r} has no update support")
        if rebuild_threshold is None:
            rebuild_threshold = REBUILD_THRESHOLD_DEFAULT
        name = self.scheme.name
        artifacts: dict = {}
        if name == "tz":
            artifacts["hierarchy"] = self.extras["hierarchy"]
        elif name == "stretch3":
            artifacts["net"] = self.extras["net"]
            artifacts["eps"] = self.params["eps"]
        elif name == "cdg":
            artifacts["net"] = self.extras["net"]
            artifacts["hierarchy"] = self.extras["hierarchy"]
            artifacts["eps"] = self.params["eps"]
            artifacts["k"] = self.params["k"]
        else:
            raise ConfigError(
                f"a built {name!r} set does not record the artifacts an "
                f"updateable index needs; build "
                f"UpdateableIndex(graph, scheme={name!r}, seed=...) "
                f"directly instead")
        return UpdateableIndex(self.graph, scheme=name,
                               num_shards=num_shards,
                               rebuild_threshold=rebuild_threshold,
                               policy=policy,
                               sketches=self.sketches, **artifacts)

    def sizes_words(self) -> list[int]:
        return [s.size_words() for s in self.sketches]

    def max_size_words(self) -> int:
        return max(self.sizes_words())

    def mean_size_words(self) -> float:
        sizes = self.sizes_words()
        return sum(sizes) / len(sizes)

    def stretch_bound(self) -> float:
        return self.scheme.stretch_bound({**self.params, "n": self.graph.n})

    def slack(self) -> Optional[float]:
        return self.scheme.slack_of({**self.params, "n": self.graph.n})

    def describe(self) -> str:
        cost = (f"{self.metrics.rounds} rounds / {self.metrics.messages} msgs"
                if self.metrics is not None else "centralized")
        return (f"[{self.scheme.name}/{self.mode}] n={self.graph.n} "
                f"max-size={self.max_size_words()}w, {cost}; "
                f"{self.scheme.describe({**self.params, 'n': self.graph.n})}")


def build_sketches(graph: Graph, scheme: str = "tz", mode: str = "centralized",
                   seed: SeedLike = None, jobs: Optional[int] = None,
                   **params) -> BuiltSketches:
    """Build distance sketches for every node of ``graph``.

    Parameters
    ----------
    scheme:
        ``"tz"`` | ``"stretch3"`` | ``"cdg"`` | ``"graceful"``.
    mode:
        ``"centralized"`` (fast reference construction) or
        ``"distributed"`` (full CONGEST protocol with cost accounting).
    jobs:
        Worker processes for the construction (centralized tz only; see
        :mod:`repro.service.parallel`).  The output is byte-identical for
        every worker count; ``None`` keeps the in-process serial path.
    params:
        Scheme-specific (see module docstring).
    """
    spec = get_scheme(scheme)
    if mode not in ("centralized", "distributed"):
        raise ConfigError(f"unknown mode {mode!r}")
    if jobs is not None and (scheme != "tz" or mode != "centralized"):
        raise ConfigError("jobs= is only supported for scheme='tz' with "
                          "mode='centralized'")
    if jobs is not None:
        params["jobs"] = jobs

    if scheme == "tz":
        return _build_tz(graph, spec, mode, seed, params)
    if scheme == "stretch3":
        return _build_stretch3(graph, spec, mode, seed, params)
    if scheme == "cdg":
        return _build_cdg(graph, spec, mode, seed, params)
    if scheme == "graceful":
        return _build_graceful(graph, spec, mode, seed, params)
    raise ConfigError(f"scheme {scheme!r} has no builder")  # pragma: no cover


def _build_tz(graph, spec, mode, seed, params) -> BuiltSketches:
    from repro.tz.centralized import build_tz_sketches_centralized
    from repro.tz.distributed import build_tz_sketches_distributed

    k = params.get("k")
    hierarchy = params.get("hierarchy")
    jobs = params.get("jobs")
    if k is None and hierarchy is None:
        raise ConfigError("tz scheme needs k (or an explicit hierarchy)")
    if mode == "centralized":
        if jobs is not None:
            from repro.service.parallel import build_tz_sketches_parallel
            sketches, h = build_tz_sketches_parallel(graph, k=k,
                                                     hierarchy=hierarchy,
                                                     seed=seed, jobs=jobs)
        else:
            sketches, h = build_tz_sketches_centralized(graph, k=k,
                                                        hierarchy=hierarchy,
                                                        seed=seed)
        return BuiltSketches(graph, spec, mode,
                             {"k": h.k}, sketches, None, {"hierarchy": h})
    res = build_tz_sketches_distributed(
        graph, k=k, hierarchy=hierarchy, seed=seed,
        sync=params.get("sync", "oracle"), S=params.get("S"),
        budget=params.get("budget", "whp"))
    return BuiltSketches(graph, spec, mode, {"k": res.hierarchy.k},
                         res.sketches, res.metrics,
                         {"hierarchy": res.hierarchy,
                          "max_queue_len": res.max_queue_len,
                          "tree_depth": res.tree_depth,
                          "sync": res.sync})


def _build_stretch3(graph, spec, mode, seed, params) -> BuiltSketches:
    from repro.slack.stretch3 import (build_stretch3_centralized,
                                      build_stretch3_distributed)

    eps = params.get("eps")
    if eps is None:
        raise ConfigError("stretch3 scheme needs eps")
    if mode == "centralized":
        sketches, net = build_stretch3_centralized(
            graph, eps, seed=seed, net=params.get("net"),
            dist_matrix=params.get("dist_matrix"))
        return BuiltSketches(graph, spec, mode, {"eps": eps}, sketches, None,
                             {"net": net})
    sketches, net, metrics = build_stretch3_distributed(
        graph, eps, seed=seed, net=params.get("net"))
    return BuiltSketches(graph, spec, mode, {"eps": eps}, sketches, metrics,
                         {"net": net})


def _build_cdg(graph, spec, mode, seed, params) -> BuiltSketches:
    from repro.slack.cdg import build_cdg_centralized, build_cdg_distributed

    eps, k = params.get("eps"), params.get("k")
    if eps is None or k is None:
        raise ConfigError("cdg scheme needs eps and k")
    if mode == "centralized":
        sketches, net, h = build_cdg_centralized(
            graph, eps, k, seed=seed, net=params.get("net"),
            hierarchy=params.get("hierarchy"),
            dist_matrix=params.get("dist_matrix"))
        return BuiltSketches(graph, spec, mode, {"eps": eps, "k": k},
                             sketches, None, {"net": net, "hierarchy": h})
    sketches, net, h, metrics = build_cdg_distributed(
        graph, eps, k, seed=seed, net=params.get("net"),
        hierarchy=params.get("hierarchy"), sync=params.get("sync", "oracle"),
        S=params.get("S"), budget=params.get("budget", "whp"))
    return BuiltSketches(graph, spec, mode, {"eps": eps, "k": k},
                         sketches, metrics, {"net": net, "hierarchy": h})


def _build_graceful(graph, spec, mode, seed, params) -> BuiltSketches:
    from repro.slack.graceful import (build_graceful_centralized,
                                      build_graceful_distributed)

    if mode == "centralized":
        sketches, schedule = build_graceful_centralized(
            graph, seed=seed, schedule=params.get("schedule"),
            dist_matrix=params.get("dist_matrix"))
        return BuiltSketches(graph, spec, mode, {}, sketches, None,
                             {"schedule": schedule})
    sketches, schedule, metrics = build_graceful_distributed(
        graph, seed=seed, schedule=params.get("schedule"),
        sync=params.get("sync", "oracle"), S=params.get("S"),
        budget=params.get("budget", "whp"))
    return BuiltSketches(graph, spec, mode, {}, sketches, metrics,
                         {"schedule": schedule})
