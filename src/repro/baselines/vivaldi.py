"""Vivaldi-style network coordinates [DCKM04] — the paper's §1 comparator.

Vivaldi embeds nodes into a low-dimensional Euclidean space by simulating
a spring system: each observed distance `d(u, v)` is a spring of rest
length `d(u, v)` between the points `x_u`, `x_v`; points move along the
net force until the system relaxes.  The distance estimate for any pair is
then simply `||x_u - x_v||` — constant-size "sketches" (one coordinate
vector per node) with *no* worst-case guarantee.

Implementation notes (kept faithful to the decentralized algorithm's
behaviour while running as a centralized simulation, like the original
evaluation):

* each node observes distances to a bounded random neighbor set (Vivaldi
  nodes sample a few dozen peers, not all pairs),
* updates use the classic Vivaldi rule: move `x_u` along the unit vector
  away from/toward `x_v` by `delta * (||x_u - x_v|| - d(u, v))`,
* `delta` decays over rounds (the adaptive-timestep simplification).

The point of this module is the *comparison*: unlike every sketch in this
library, coordinate estimates can (and do) **underestimate** true
distances, and their stretch is unbounded on instances that do not embed
into the chosen dimension — exactly the paper's §1 criticism.  Experiment
E13 quantifies both failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graphs.graph import Graph
from repro.graphs.metrics import apsp
from repro.rng import SeedLike, ensure_rng


@dataclass
class VivaldiCoordinates:
    """The embedded coordinates and their query interface."""

    dim: int
    coords: np.ndarray  # shape (n, dim)

    def estimate(self, u: int, v: int) -> float:
        """Euclidean distance between the two coordinate vectors."""
        diff = self.coords[u] - self.coords[v]
        return float(np.sqrt(diff @ diff))

    def size_words(self) -> int:
        """Per-node 'sketch' size: one coordinate per dimension."""
        return self.dim


def build_vivaldi(graph: Graph, dim: int = 3, rounds: int = 200,
                  samples_per_node: int = 16,
                  dist_matrix: np.ndarray = None,
                  seed: SeedLike = None) -> VivaldiCoordinates:
    """Relax a Vivaldi spring system over sampled distance observations.

    Parameters
    ----------
    dim:
        Embedding dimension (Vivaldi typically uses 2-5).
    rounds:
        Relaxation sweeps; `delta` decays linearly to zero across them.
    samples_per_node:
        How many peers each node observes (random, fixed per run).
    """
    if dim < 1:
        raise ConfigError("dim must be >= 1")
    if rounds < 1:
        raise ConfigError("rounds must be >= 1")
    rng = ensure_rng(seed)
    n = graph.n
    d = apsp(graph) if dist_matrix is None else dist_matrix
    scale = float(np.median(d[d > 0])) if n > 1 else 1.0

    # random small initial placement (breaking symmetry, as Vivaldi does)
    coords = rng.normal(0.0, 0.1 * scale, size=(n, dim))

    # fixed observation sets: a few random peers per node
    k = min(samples_per_node, max(1, n - 1))
    peers = np.empty((n, k), dtype=np.int64)
    for u in range(n):
        choices = np.delete(np.arange(n), u)
        peers[u] = rng.choice(choices, size=k, replace=(k > choices.size))

    for r in range(rounds):
        delta = 0.25 * (1.0 - r / rounds)  # decaying timestep
        order = rng.permutation(n)
        for u in order:
            for v in peers[u]:
                target = d[u, v]
                diff = coords[u] - coords[v]
                norm = float(np.sqrt(diff @ diff))
                if norm < 1e-12:
                    direction = rng.normal(size=dim)
                    direction /= np.linalg.norm(direction)
                    norm = 0.0
                else:
                    direction = diff / norm
                # spring force: positive error pushes u away from v
                coords[u] += delta * (target - norm) * direction
    return VivaldiCoordinates(dim=dim, coords=coords)
