"""Comparator baselines from the paper's related work (Section 1).

The paper positions distance sketches against *network coordinate
systems* — Vivaldi [DCKM04] and Meridian [WSS05] — noting that while such
systems are practical, "most of them can easily be shown to exhibit poor
behavior in pathological instances".  To make that comparison concrete,
this subpackage implements a faithful Vivaldi-style spring-embedding
coordinate system; experiment E13 reproduces the paper's qualitative
claim: coordinates do fine on low-dimensional (geometric) networks and
fail badly — including *underestimating*, which sketches never do — on
non-embeddable instances.
"""

from repro.baselines.vivaldi import (
    VivaldiCoordinates,
    build_vivaldi,
)

__all__ = ["VivaldiCoordinates", "build_vivaldi"]
