"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library can throw with a single ``except`` clause while
still being able to discriminate between configuration problems, protocol
violations detected by the CONGEST simulator, and graph-validation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A graph violates a structural requirement (connectivity, weights...)."""


class ConfigError(ReproError):
    """Invalid parameter combination passed to a public API entry point."""


class ProtocolError(ReproError):
    """A node program violated the CONGEST model rules.

    Raised by the simulator when a program tries to send more than one
    message per edge per round, exceeds the per-message word budget, or
    addresses a non-neighbor.
    """


class SimulationError(ReproError):
    """The simulator itself reached an inconsistent state.

    This indicates a bug in a protocol implementation (e.g. a phase that
    never quiesces within its safety horizon), not a user error.
    """


class QueryError(ReproError):
    """A sketch query could not be answered (e.g. sketches from different
    builds, or a malformed label)."""


class ClusterError(ReproError):
    """A fleet operation failed on one or more hosts.

    ``causes`` maps ``"host:port"`` to the underlying failure (an exception
    or a short description), so a query against a fleet with a dead host
    reports *which* hosts died instead of a bare ``ConnectionError`` from
    whichever socket happened to fail first.
    """

    def __init__(self, message: str, causes: dict | None = None):
        self.causes = dict(causes or {})
        if self.causes:
            detail = "; ".join(f"{host}: {why}"
                               for host, why in sorted(self.causes.items()))
            message = f"{message} [{detail}]"
        super().__init__(message)
