"""Seeded randomness helpers.

Every randomized component of the library (hierarchy sampling, density-net
sampling, graph generators, workload generators) accepts either an integer
seed or a :class:`numpy.random.Generator` and routes it through
:func:`ensure_rng`.  Derived streams (:func:`spawn`) are used when two
components must make *independent* random decisions from one user-provided
seed — e.g. the graph generator and the TZ hierarchy in an experiment —
so that changing one component's consumption pattern does not perturb the
other (a standard reproducibility discipline for HPC experiments).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives a nondeterministic generator; an ``int`` or
    ``SeedSequence`` gives a deterministic one; a ``Generator`` is returned
    unchanged (shared state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are seeded from ``rng``'s own stream, so a fixed parent
    seed yields a fixed, order-stable family of child streams.
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw one 63-bit seed from ``rng`` (for handing to a sub-component)."""
    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))


def optional_seed(seed: SeedLike, default: Optional[int] = None) -> SeedLike:
    """Return ``seed`` unless it is ``None``, in which case ``default``."""
    return default if seed is None else seed
