"""E3 — distributed TZ round/message complexity (Theorem 1.1/3.8) + A1.

Claims under test:
* rounds = O(k n^{1/k} S log n) and messages = O(k n^{1/k} S |E| log n):
  the implied constants must stay bounded along an n sweep on every
  topology family,
* Lemma 3.6 in action: the maximum round-robin queue occupancy (which
  drives the congestion term) stays O(n^{1/k} log n),
* A1 ablation: removing the bandwidth constraint (LOCAL-model packing)
  collapses rounds toward O(S) — evidence that the n^{1/k} log n factor
  is congestion, not algorithm logic.
"""

from __future__ import annotations

import math

import pytest

from benchmarks._workloads import workload, workload_S
from repro.analysis import render_table, summarize_ratios, tz_message_bound, tz_round_bound
from repro.algorithms.ksource import k_source_shortest_paths
from repro.tz import build_tz_sketches_distributed

SWEEP = (("er", (32, 64, 128)), ("grid", (36, 64, 100)), ("ring", (24, 48, 96)))
K = 2


@pytest.fixture(scope="module")
def e3_table(experiment_report):
    rows = []
    for family, ns in SWEEP:
        for n in ns:
            g = workload(family, n)
            S = workload_S(family, n)
            res = build_tz_sketches_distributed(g, k=K, seed=n)
            r_bound = tz_round_bound(g.n, K, S)
            m_bound = tz_message_bound(g.n, K, S, g.m)
            rows.append({
                "family": family,
                "n": g.n,
                "S": S,
                "rounds": res.metrics.rounds,
                "rounds/bound": round(res.metrics.rounds / r_bound, 4),
                "msgs": res.metrics.messages,
                "msgs/bound": round(res.metrics.messages / m_bound, 4),
                "maxQ": res.max_queue_len,
                "Q-bound": round(g.n ** (1 / K) * math.log(g.n), 1),
            })
    experiment_report("E3-tz-rounds", render_table(
        rows, title=f"E3: distributed TZ (k={K}, oracle sync) vs "
                    "Thm 1.1 curves k n^(1/k) S log n"))
    return rows


@pytest.fixture(scope="module")
def e3_ablation(experiment_report):
    """A1: CONGEST round-robin vs LOCAL-model packing, k-source kernel.

    The sources are *clustered* (adjacent ring nodes) so their waves travel
    together and genuinely contend for edges — with evenly spread sources
    the waves pipeline and congestion hides.
    """
    rows = []
    g = workload("ring", 48)
    S = workload_S("ring", 48)
    sources = list(range(12))  # 12 adjacent, maximally contending sources
    for drain, label in ((1, "CONGEST (1 msg/edge/round)"),
                         (len(sources), "LOCAL ablation (packed)")):
        _, m = k_source_shortest_paths(g, sources, seed=3,
                                       drain_per_round=drain)
        rows.append({"discipline": label, "rounds": m.rounds,
                     "messages": m.messages, "words": m.words,
                     "S": S, "sources": len(sources)})
    experiment_report("E3a-congestion-ablation", render_table(
        rows, title="E3/A1: the congestion term is real — packing updates "
                    "(LOCAL model) collapses rounds toward S"))
    return rows


def test_e3_round_constant_flat(e3_table):
    for family, _ in SWEEP:
        ratios = [r["rounds/bound"] for r in e3_table if r["family"] == family]
        s = summarize_ratios(ratios, [1.0] * len(ratios))
        assert s.shape_holds(drift_tolerance=2.0), (family, ratios)


def test_e3_message_constant_flat(e3_table):
    for family, _ in SWEEP:
        ratios = [r["msgs/bound"] for r in e3_table if r["family"] == family]
        assert ratios[-1] <= 2.0 * ratios[0] + 0.05, (family, ratios)


def test_e3_queue_occupancy_within_lemma36(e3_table):
    assert all(r["maxQ"] <= 3 * r["Q-bound"] for r in e3_table)


def test_e3_ablation_local_faster_in_rounds(e3_ablation):
    congest, local = e3_ablation
    assert local["rounds"] < congest["rounds"]
    assert local["rounds"] <= 3 * local["S"] + 3


def test_e3_benchmark_distributed_build(benchmark, e3_table, e3_ablation):
    """Timing kernel: full distributed TZ build (oracle sync), n=64 ER."""
    g = workload("er", 64)

    def run():
        return build_tz_sketches_distributed(g, k=2, seed=9)

    benchmark.pedantic(run, rounds=3, iterations=1)
