"""E21 — fleet serving: shard-range hosts vs one full host.

The paper's construction is distributed; this experiment distributes the
*serving*.  One index is served three ways — a single full
:class:`~repro.service.transport.OracleServer`, then loopback fleets of
1, 2, and 4 shard-range hosts behind a ``cluster://`` session — and the
same query workload runs against every topology.

The headline claim is **identity, not speed**: every fleet's answers
(``dist_many`` and the pipelined ``dist_stream`` path) are compared
bitwise against the single host inside
:func:`~repro.service.cluster.run_cluster_benchmark`, which raises on
the first divergent batch — the assertion is unconditional, there is no
way to record a timing row for a wrong fleet.  Timings are reported for
the trajectory record and never gated: loopback fleets pay real frame
and fan-out overhead per host, so the interesting column is how little
the per-host cost grows, not a speedup.

``REPRO_E21_N`` / ``REPRO_E21_QUERIES`` shrink the workload (CI's
bench-smoke runs n=300).
"""

from __future__ import annotations

import os

import pytest

from benchmarks._workloads import workload
from repro import build_sketches
from repro.analysis import render_table
from repro.service import build_index
from repro.service.cluster import run_cluster_benchmark

N = int(os.environ.get("REPRO_E21_N", "600"))
QUERIES = int(os.environ.get("REPRO_E21_QUERIES", "2000"))
SHARDS = 8
HOSTS = (1, 2, 4)


@pytest.fixture(scope="module")
def e21_report(experiment_report):
    g = workload("geo", N)
    built = build_sketches(g, scheme="tz", k=3, seed=33)
    index = build_index(built.sketches, num_shards=SHARDS)
    data = run_cluster_benchmark(index, hosts=HOSTS, queries=QUERIES,
                                 batch=256, seed=0)
    rows = [{
        "topology": (f"{r['hosts']}-host fleet" if r["topology"] == "fleet"
                     else "single host"),
        "many(s)": round(r["dist_many_s"], 4),
        "stream(s)": round(r["dist_stream_s"], 4),
        "qps": round(r["qps_many"]),
        "identical": "yes" if r["identical"] else "NO",
    } for r in data["rows"]]
    experiment_report(
        "E21-cluster",
        render_table(rows, title=f"E21: loopback fleets vs single host, "
                                 f"tz k=3 geo n={N} shards={SHARDS} "
                                 f"({QUERIES} queries, identity asserted)"),
        data)
    return data


def test_e21_every_topology_identical(e21_report):
    """run_cluster_benchmark raises on divergence; this re-asserts the
    recorded flags so the JSON envelope can never say otherwise."""
    assert all(r["identical"] for r in e21_report["rows"])
    assert {r["hosts"] for r in e21_report["rows"]} == {0, *HOSTS}


def test_e21_fleet_sizes_covered(e21_report):
    fleets = [r for r in e21_report["rows"] if r["topology"] == "fleet"]
    assert [r["hosts"] for r in fleets] == list(HOSTS)
    assert all(r["dist_many_s"] > 0 and r["dist_stream_s"] > 0
               for r in fleets)


def test_e21_benchmark_fleet_batch(benchmark, e21_report):
    """Timing kernel: one dist_many batch against a 2-host fleet."""
    import numpy as np

    from repro.service import connect, loopback_fleet

    g = workload("geo", N)
    built = build_sketches(g, scheme="tz", k=3, seed=33)
    index = build_index(built.sketches, num_shards=SHARDS)
    rng = np.random.default_rng(1)
    pairs = rng.integers(0, g.n, size=(256, 2), dtype=np.int64)
    with loopback_fleet(index, 2) as (spec, _servers):
        with connect(spec) as session:
            benchmark(lambda: session.dist_many(pairs))
