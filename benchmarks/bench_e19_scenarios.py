"""E19 — correctness and latency under sustained churn (scenarios).

E16 measured one apply in isolation and E18 one query fleet in
isolation; this experiment replays the **combined** workload the
dynamic-update subsystem exists for: named churn+query scenario traces
(``repro.service.scenario``) driven over real TCP sockets against a
live ``OracleServer`` while the correctness oracle verifies every
consumed answer bit-for-bit against a twin replay.

Per scenario the report (``BENCH_E19-scenarios.json``) carries

* **hot-swap stall** p50/p99/max — the wall-clock an ``apply_updates``
  call holds the writer (the serving tier keeps answering reads
  throughout; this is the write-path cost),
* **staleness-window stats** — how many consumed answers were pinned to
  an epoch older than the newest one the session had observed (legal
  under the monotonic-epoch rule) and for how long the newer epoch had
  already been visible,
* **query latency** split into churn-overlapped vs quiet records, and
* the **static-vs-adaptive repair policy** comparison: per-batch
  repair/rebuild decisions, apply seconds, and the bitwise cross-check
  of the final indexes (policy choice may only ever spend seconds).

Hard claims (always asserted, any size, any hardware): zero oracle
violations on every scenario, ≥ 3 scenarios in the report, and the
policy comparison bitwise-identical.  There is **no** wall-clock gate
by design (E17 precedent): churn replay timing on a shared runner is
noise, and the numbers are telemetry, not acceptance.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e19_scenarios.py -q``
(size via ``REPRO_E19_N`` / ``REPRO_E19_ROUNDS``; the CI smoke job runs
n=300).
"""

from __future__ import annotations

import os

import pytest

from benchmarks._workloads import workload
from repro.analysis import render_table
from repro.service import (UpdateableIndex, compare_policies,
                           generate_trace, make_policy, run_scenario,
                           ScenarioOracle)

N = int(os.environ.get("REPRO_E19_N", "800"))
ROUNDS = int(os.environ.get("REPRO_E19_ROUNDS", "10"))
K = 2
SEED = 61
SCENARIOS = ("flash-crowd", "weight-flap", "steady-mix")


@pytest.fixture(scope="module")
def e19_results():
    g = workload("geo", N)
    out = {}
    for name in SCENARIOS:
        trace = generate_trace(name, g, seed=SEED, rounds=ROUNDS)
        source = UpdateableIndex(g, "tz", seed=SEED, k=K,
                                 policy=make_policy("adaptive"))
        oracle = ScenarioOracle(g, scheme="tz", seed=SEED, k=K,
                                checkpoint_every=0)
        result = run_scenario(trace, "tcp://", source=source,
                              oracle=oracle, query_threads=3)
        cmp = compare_policies(g, trace, scheme="tz", seed=SEED, k=K)
        out[name] = {"result": result, "summary": result.summary(),
                     "policies": cmp}
    return out


@pytest.fixture(scope="module")
def e19_report(experiment_report, e19_results):
    rows = []
    data = {"n": N, "rounds": ROUNDS, "k": K, "seed": SEED,
            "scenarios": {}}
    for name, entry in e19_results.items():
        s = entry["summary"]
        cmp = entry["policies"]
        adaptive = cmp["policies"]["adaptive"]
        static = cmp["policies"]["static"]
        rows.append({
            "scenario": name,
            "records": s["queries"]["records"],
            "stall-p50-ms": round(s["hotswap"]["stall_ms"]["p50_ms"], 3),
            "stall-p99-ms": round(s["hotswap"]["stall_ms"]["p99_ms"], 3),
            "stale": s["staleness"]["stale_results"],
            "lag-max": s["staleness"]["max_epoch_lag"],
            "static": _mode_str(static["modes"]),
            "adaptive": _mode_str(adaptive["modes"]),
            "violations": len(s["oracle"]["violations"]),
        })
        data["scenarios"][name] = {"summary": s, "policies": cmp}
    experiment_report("E19-scenarios", render_table(
        rows, title=f"E19: churn+query scenarios over tcp "
                    f"(tz k={K}, geo n={N}, {ROUNDS} rounds, "
                    f"oracle armed)"),
        data=data)
    return data


def _mode_str(modes: dict) -> str:
    return "+".join(f"{v}{k[:3]}" for k, v in sorted(modes.items()))


def test_e19_zero_oracle_violations(e19_results):
    """The headline claim: every consumed answer on every scenario was
    bit-identical to a legally observable epoch of the twin replay."""
    for name, entry in e19_results.items():
        result = entry["result"]
        assert result.oracle_report is not None, name
        assert result.ok, (name, result.violations[:3])
        assert result.oracle_report["checked"] > 0, name


def test_e19_policy_choice_never_changes_answers(e19_results):
    """Static and adaptive replays of the same churn end bitwise
    identical — the policy may only ever spend seconds."""
    for name, entry in e19_results.items():
        assert entry["policies"]["bitwise_identical"], name


def test_e19_report_complete(e19_report):
    """The telemetry the JSON exists for: ≥ 3 scenarios, hot-swap stall
    percentiles, staleness stats, and both policies' decisions."""
    assert len(e19_report["scenarios"]) >= 3
    for name, entry in e19_report["scenarios"].items():
        s = entry["summary"]
        stall = s["hotswap"]["stall_ms"]
        assert stall["count"] > 0, name
        assert stall["p50_ms"] is not None, name
        assert stall["p50_ms"] <= stall["p99_ms"] <= stall["max_ms"], name
        assert "stale_results" in s["staleness"], name
        assert "window_ms" in s["staleness"], name
        pol = entry["policies"]["policies"]
        assert set(pol) == {"static", "adaptive"}, name
        assert pol["adaptive"]["describe"]["decisions"], name
        assert s["queries"]["latency_ms"]["count"] > 0, name
