"""Benchmark-harness plumbing.

Each experiment file (``bench_e1_*`` … ``bench_e10_*``) computes the table
for one paper claim and registers it via the ``experiment_report`` fixture.
All registered tables are printed in the terminal summary (so they appear
in ``bench_output.txt``) and persisted under ``benchmarks/results/``.

The ``benchmark`` fixture times a representative kernel of each experiment;
the tables themselves are computed once per session.
"""

from __future__ import annotations

import os
import pathlib

import pytest

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def experiment_report():
    """Callable ``report(name, text)`` registering an experiment table."""

    def report(name: str, text: str) -> None:
        _REPORTS.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("experiment tables (paper-claim reproduction)")
    for name, text in _REPORTS:
        tr.write_line("")
        tr.write_line(f"──── {name} " + "─" * max(0, 66 - len(name)))
        for line in text.splitlines():
            tr.write_line(line)
