"""Benchmark-harness plumbing.

Each experiment file (``bench_e1_*`` … ``bench_e16_*``) computes the
table for one paper claim and registers it via the ``experiment_report``
fixture.  All registered tables are printed in the terminal summary (so
they appear in ``bench_output.txt``) and persisted under
``benchmarks/results/``.

Every registered report also writes a machine-readable
``BENCH_<name>.json`` next to the text table — an envelope carrying the
git sha, timestamp, python/platform, and whatever structured ``data``
the experiment passed (throughput rows, per-phase timings, graph sizes).
CI uploads these as workflow artifacts from the ``bench-smoke`` and
``nightly`` jobs, so the perf trajectory is recorded run over run
instead of evaporating with the runner.

The ``benchmark`` fixture times a representative kernel of each
experiment; the tables themselves are computed once per session.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import subprocess

import pytest

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=pathlib.Path(__file__).parent, timeout=10)
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:  # pragma: no cover - no git binary
        return "unknown"


@pytest.fixture(scope="session")
def experiment_report():
    """Callable ``report(name, text, data=None)`` registering an
    experiment table.

    ``text`` is the human table (``<name>.txt``); ``data``, when given,
    is any JSON-serializable payload (rows, timings, parameters) stored
    in the ``BENCH_<name>.json`` envelope.  The envelope is written even
    without ``data`` so every benchmark leaves a machine-readable trace.
    """
    sha = _git_sha()

    def report(name: str, text: str, data=None) -> None:
        _REPORTS.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n",
                                                  encoding="utf-8")
        envelope = {
            "name": name,
            "git_sha": sha,
            "generated_at": datetime.datetime.now(
                datetime.timezone.utc).isoformat(timespec="seconds"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "data": data,
        }
        (_RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(envelope, indent=2, sort_keys=True, default=float)
            + "\n", encoding="utf-8")

    return report


@pytest.fixture()
def timing_gate():
    """Gate for wall-clock assertions that need real parallel hardware
    (the benchmarks-side twin of the fixture in ``tests/conftest.py``).

    Identity claims in the experiment files are asserted unconditionally;
    speedup ratios call ``timing_gate(why)`` first and self-skip on CI
    runners and single-CPU boxes, where scheduling noise dwarfs the
    effect under test.  ``REPRO_FORCE_TIMING=1`` arms the gate anywhere.
    """

    def gate(why: str) -> None:
        if os.environ.get("REPRO_FORCE_TIMING"):
            return
        if os.environ.get("CI"):
            pytest.skip(f"{why}: timing assertion self-skips on CI "
                        "(set REPRO_FORCE_TIMING=1 to arm)")
        if (os.cpu_count() or 1) < 2:
            pytest.skip(f"{why}: timing assertion needs >= 2 CPUs "
                        "(set REPRO_FORCE_TIMING=1 to arm)")

    return gate


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("experiment tables (paper-claim reproduction)")
    for name, text in _REPORTS:
        tr.write_line("")
        tr.write_line(f"──── {name} " + "─" * max(0, 66 - len(name)))
        for line in text.splitlines():
            tr.write_line(line)
