"""E7 — (ε,k)-CDG sketches (Lemmas 4.4/4.5, Theorem 4.6).

Claims under test:
* stretch <= 8k-1 on ε-far pairs, never an underestimate,
* size O(k ((1/ε) log n)^{1/k} log n) words — sublinear in 1/ε, the point
  of running TZ on the net (compare the E6 sizes),
* distributed cost O(k S ((1/ε) log n)^{1/k} log n) rounds,
* the k knob: larger k shrinks sketches and loosens stretch, mirroring the
  TZ tradeoff one level up.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp, workload_S
from repro.analysis import cdg_round_bound, cdg_size_bound, render_table
from repro.oracle.evaluation import evaluate_stretch
from repro.slack.cdg import build_cdg_centralized, build_cdg_distributed

N = 256
GRID = [(0.25, 1), (0.25, 2), (0.25, 3), (0.1, 2), (0.05, 2)]


@pytest.fixture(scope="module")
def e7_table(experiment_report):
    g = workload("er", N, weighted=True)
    d = workload_apsp("er", N, weighted=True)
    rows = []
    for eps, k in GRID:
        sketches, net, _ = build_cdg_centralized(g, eps, k, seed=31,
                                                 dist_matrix=d)
        rep = evaluate_stretch(
            d, lambda u, v: sketches[u].estimate_to(sketches[v]),
            eps=eps, max_pairs=4000, seed=3)
        sizes = [s.size_words() for s in sketches]
        rows.append({
            "eps": eps,
            "k": k,
            "|N|": net.size(),
            "mean-size(w)": round(float(np.mean(sizes)), 1),
            "size-bound": round(2 * cdg_size_bound(N, eps, k), 1),
            "bound(8k-1)": 8 * k - 1,
            "max-stretch(far)": round(rep.max_stretch, 2),
            "mean": round(rep.mean_stretch, 3),
            "under": rep.underestimates,
        })
    experiment_report("E7-cdg", render_table(
        rows, title=f"E7: (eps,k)-CDG sketches, er n={N} (Theorem 4.6)"))
    return rows


@pytest.fixture(scope="module")
def e7_distributed(experiment_report):
    rows = []
    for n in (48, 96):
        g = workload("er", n, weighted=True)
        S = workload_S("er", n, weighted=True)
        sketches, net, _, metrics = build_cdg_distributed(g, 0.25, 2, seed=33)
        bound = cdg_round_bound(n, 0.25, 2, S)
        rows.append({
            "n": n, "S": S, "|N|": net.size(),
            "rounds": metrics.rounds,
            "rounds/bound": round(metrics.rounds / bound, 3),
            "messages": metrics.messages,
        })
    experiment_report("E7b-cdg-cost", render_table(
        rows, title="E7: distributed CDG cost vs k S ((1/eps) log n)^(1/k) log n"))
    return rows


def test_e7_stretch_bound(e7_table):
    assert all(r["max-stretch(far)"] <= r["bound(8k-1)"] + 1e-9
               for r in e7_table)


def test_e7_no_underestimates(e7_table):
    assert all(r["under"] == 0 for r in e7_table)


def test_e7_size_within_bound_constant(e7_table):
    assert all(r["mean-size(w)"] <= 3 * r["size-bound"] for r in e7_table)


def test_e7_k_shrinks_size(e7_table):
    fixed_eps = [r for r in e7_table if r["eps"] == 0.25]
    sizes = {r["k"]: r["mean-size(w)"] for r in fixed_eps}
    assert sizes[3] <= sizes[1]


def test_e7_sublinear_in_inverse_eps(e7_table):
    # at k=2, going 0.25 -> 0.05 (5x denser guarantee) must cost far less
    # than 5x the size (the E6 table pays the full linear factor)
    k2 = {r["eps"]: r["mean-size(w)"] for r in e7_table if r["k"] == 2}
    assert k2[0.05] <= 3.0 * k2[0.25]


def test_e7_distributed_rounds_flat(e7_distributed):
    ratios = [r["rounds/bound"] for r in e7_distributed]
    assert ratios[-1] <= 2.0 * ratios[0] + 0.05


def test_e7_benchmark_build(benchmark, e7_table, e7_distributed):
    """Timing kernel: centralized CDG build at n=256, eps=0.1, k=2."""
    g = workload("er", N, weighted=True)
    d = workload_apsp("er", N, weighted=True)

    def run():
        return build_cdg_centralized(g, 0.1, 2, seed=7, dist_matrix=d)

    benchmark.pedantic(run, rounds=3, iterations=1)
