"""E15 — multi-process shard serving: worker scaling over the landmark shards.

The per-landmark shard decomposition (``plan`` → ``shard_answer`` × S →
``finish``) puts real processes behind the shards.  This experiment
measures how batched throughput moves as workers are added, and — the
part that is a hard claim rather than a hardware-dependent number —
asserts that **answers are bit-identical for every worker count**, for
the TZ scheme and for a slack scheme.

Two honest caveats the table makes visible:

* per-batch IPC (pickling requests/responses) is a fixed tax, so small
  batches can be *slower* with workers than in-process — the table
  reports both a small and a large batch;
* with ``jobs=1`` the identical decomposition runs in-process, so the
  jobs=1 row is the fair baseline for the scaling ratio.

There is no default throughput gate (shared CI runners make worker
scaling unpredictable); set ``REPRO_E15_MIN_EFFICIENCY`` to enforce a
``jobs=4`` vs ``jobs=1`` ratio on quiet hardware.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e15_shard_workers.py -q``
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks._workloads import workload
from repro.analysis import render_table
from repro.service import (QueryEngine, build_tz_sketches_parallel,
                           run_serve_benchmark, sample_query_pairs)

N = 2000
QUERIES = 4000
SEED = 71
#: (jobs, pool) cells — proc scaling plus the thread-plane arm (E20
#: duels the planes head to head; this row keeps the scaling table whole)
CELLS = ((1, "proc"), (2, "proc"), (4, "proc"), (4, "thread"))
SHARDS = 4
MIN_EFFICIENCY = os.environ.get("REPRO_E15_MIN_EFFICIENCY")


@pytest.fixture(scope="module")
def e15_sketches():
    g = workload("er", N, weighted=True)
    sketches, _ = build_tz_sketches_parallel(g, k=2, seed=SEED, jobs=2)
    return sketches


@pytest.fixture(scope="module")
def e15_table(experiment_report, e15_sketches):
    rows = []
    for jobs, pool in CELLS:
        rep = run_serve_benchmark(e15_sketches, queries=QUERIES,
                                  batch=QUERIES, seed=7, repeats=3,
                                  num_shards=SHARDS, jobs=jobs, pool=pool)
        assert rep["identical"], \
            f"jobs={jobs} pool={pool}: batched answers diverged"
        rows.append({
            "jobs": jobs, "pool": pool, "shards": SHARDS,
            "Q": rep["queries"],
            "batched-qps": int(rep["batched_qps"]),
            "vs-jobs1": (round(rep["batched_qps"] / rows[0]["batched-qps"], 2)
                         if rows else 1.0),
        })
    experiment_report("E15-shard-workers", render_table(
        rows, title=f"E15: shard-worker scaling (TZ k=2, ER n={N}, "
                    f"{SHARDS} landmark shards, batch={QUERIES})"),
        data={"n": N, "queries": QUERIES, "shards": SHARDS, "rows": rows})
    return rows


def test_e15_answers_identical_across_worker_counts(e15_table, e15_sketches):
    """The hard claim: jobs=1 and jobs=4 produce the same bytes."""
    pairs = sample_query_pairs(N, 1000, seed=3)
    with QueryEngine(e15_sketches, cache_size=0, num_shards=SHARDS,
                     jobs=1) as solo:
        base = solo.dist_many(pairs)
    with QueryEngine(e15_sketches, cache_size=0, num_shards=SHARDS,
                     jobs=4) as fleet:
        assert np.array_equal(fleet.dist_many(pairs), base)


def test_e15_slack_scheme_through_workers():
    """A slack scheme end to end: stretch3 batched through 4 workers is
    exact against the single-query loop."""
    from repro import build_sketches

    g = workload("er", 600, weighted=True)
    built = build_sketches(g, scheme="stretch3", eps=0.25, seed=SEED)
    rep = run_serve_benchmark(built.sketches, queries=1000, seed=5,
                              repeats=1, num_shards=4, jobs=4)
    assert rep["identical"] and rep["scheme"] == "stretch3"


def test_e15_table_complete(e15_table):
    assert [(r["jobs"], r["pool"]) for r in e15_table] == list(CELLS)
    if MIN_EFFICIENCY is not None:
        proc4 = next(r for r in e15_table
                     if r["jobs"] == 4 and r["pool"] == "proc")
        assert proc4["vs-jobs1"] >= float(MIN_EFFICIENCY)


def test_e15_thread_plane_identical(e15_sketches):
    """The thread arm serves the same bytes as the in-process path."""
    pairs = sample_query_pairs(N, 1000, seed=3)
    with QueryEngine(e15_sketches, cache_size=0, num_shards=SHARDS,
                     jobs=1) as solo:
        base = solo.dist_many(pairs)
    with QueryEngine(e15_sketches, cache_size=0, num_shards=SHARDS,
                     jobs=4, pool="thread") as threaded:
        assert np.array_equal(threaded.dist_many(pairs), base)


def test_e15_benchmark_pooled_pass(benchmark, e15_sketches, e15_table):
    """Timing kernel: one cold-cache batched pass through the 4-worker
    pool (pool start-up excluded — it is a one-time cost)."""
    with QueryEngine(e15_sketches, cache_size=0, num_shards=SHARDS,
                     jobs=4) as eng:
        pairs = sample_query_pairs(N, QUERIES, seed=7)
        eng.dist_many(pairs)  # warm the pool

        def run():
            return eng.dist_many(pairs)

        benchmark(run)
