"""E16 — incremental index updates vs full rebuild on edge-weight changes.

The serving indexes of E14/E15 are build-once snapshots; real networks
change.  This experiment measures the dynamic-update subsystem
(:mod:`repro.service.updates`): for change batches of growing size, the
time to ``UpdateableIndex.apply`` (dirty-frontier sweep + localized
sketch repair + shard-surgical index refresh) against the time to
rebuild the index from scratch on the mutated graph.

Workload: TZ k=2 on a random geometric graph — the network-coordinate
topology whose locality is exactly what an incremental repair exploits
(a single edge perturbation dirties a small neighbourhood, not half the
graph; the table's ``dirty`` column shows the measured frontier).  The
change batches perturb random distinct edge weights by uniform factors.

Hard claim (always asserted): the updated index is **identical** to the
from-scratch rebuild — ``==`` on the stores plus bitwise-equal batched
estimates — for every batch size.  Timing claim (incremental beats
rebuild at the smallest batch): asserted only on quiet non-CI hardware
at full size, mirroring the E14/E15b gate pattern — shared runners
cannot measure a ratio honestly.  ``REPRO_E16_MIN_SPEEDUP`` arms the
gate anywhere (and sets the bar); ``REPRO_E16_SKIP_TIMING=1``
force-disables it.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e16_updates.py -q``
"""

from __future__ import annotations

import os

import pytest

from benchmarks._workloads import workload
from repro.analysis import render_table
from repro.service.updates import run_update_benchmark

N = int(os.environ.get("REPRO_E16_N", "1200"))
BATCHES = (1, 4, 16, 64)
SHARDS = 4
SEED = 61
MIN_SPEEDUP = float(os.environ.get("REPRO_E16_MIN_SPEEDUP", "1.0"))
# self-arm only where the ratio is physically meaningful: full size,
# >= 2 CPUs, and not a throttled CI runner; an explicit
# REPRO_E16_MIN_SPEEDUP arms it anywhere
_GATE_TIMING = (N >= 1200
                and not os.environ.get("REPRO_E16_SKIP_TIMING")
                and ("REPRO_E16_MIN_SPEEDUP" in os.environ
                     or ((os.cpu_count() or 1) >= 2
                         and not os.environ.get("CI"))))


@pytest.fixture(scope="module")
def e16_report():
    g = workload("geo", N)
    return run_update_benchmark(g, scheme="tz", k=2, seed=SEED,
                                batch_sizes=BATCHES, num_shards=SHARDS,
                                rebuild_threshold=1.0)


@pytest.fixture(scope="module")
def e16_table(experiment_report, e16_report):
    rows = [{
        "batch": r["batch"], "mode": r["mode"], "dirty": r["dirty"],
        "dirty-frac": round(r["dirty"] / e16_report["n"], 3),
        "update-ms": round(r["update_seconds"] * 1e3, 1),
        "rebuild-ms": round(r["rebuild_seconds"] * 1e3, 1),
        "speedup": round(r["speedup"], 2),
        "identical": r["identical"],
    } for r in e16_report["rows"]]
    experiment_report("E16-incremental-updates", render_table(
        rows, title=f"E16: incremental update vs full rebuild "
                    f"(TZ k=2, geometric n={N}, {SHARDS} shards, "
                    f"repair path forced)"),
        data={"n": e16_report["n"], "m": e16_report["m"],
              "shards": SHARDS, "scheme": "tz", "rows": rows})
    return rows


def test_e16_updated_index_identical_to_rebuild(e16_report):
    """The hard claim: incremental repair is bit-identical to a rebuild
    at every batch size (the harness compares stores and estimates)."""
    assert e16_report["identical"]
    for row in e16_report["rows"]:
        assert row["identical"], row


def test_e16_table_complete(e16_table):
    assert [r["batch"] for r in e16_table] == list(BATCHES)
    for row in e16_table:
        assert row["update-ms"] > 0 and row["rebuild-ms"] > 0


def test_e16_frontier_grows_with_batch(e16_table):
    """Sanity on the dirty-frontier shape: more changed edges can only
    dirty at least as large a fraction (up to noise, compare ends)."""
    assert e16_table[0]["dirty"] <= e16_table[-1]["dirty"]


def test_e16_small_batches_beat_rebuild(e16_table):
    """The tentpole claim: at the smallest change batch, incremental
    repair beats the from-scratch rebuild (gated to hardware where a
    timing ratio means something — see the module docstring)."""
    if not _GATE_TIMING:
        pytest.skip("timing gate needs full size, >= 2 CPUs, and no CI "
                    "(set REPRO_E16_MIN_SPEEDUP to arm it anywhere)")
    smallest = e16_table[0]
    assert smallest["speedup"] >= MIN_SPEEDUP, (
        f"batch={smallest['batch']} repair at {smallest['speedup']}x vs "
        f"rebuild (need >= {MIN_SPEEDUP}); dirty={smallest['dirty']}")
