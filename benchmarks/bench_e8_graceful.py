"""E8 — gracefully degrading sketches (Theorem 4.8, Lemma 4.7, Cor 4.9).

Claims under test:
* graceful degradation: a *single* sketch achieves stretch O(log 1/ε) with
  ε-slack simultaneously for every ε (per-ε curve below),
* worst-case stretch O(log n) over all pairs,
* **average stretch O(1)** — the headline (Corollary 4.9) — measured
  across n and compared against plain TZ at k = log n (which only
  guarantees O(log n) average),
* size O(log^4 n) words and build cost O(S log^4 n) rounds — the modest
  polylog premium over one TZ build that buys the constant average.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp
from repro.analysis import graceful_size_bound, render_table
from repro.oracle.evaluation import average_stretch, evaluate_stretch
from repro.slack.graceful import build_graceful_centralized
from repro.tz import build_tz_sketches_centralized, estimate_distance


@pytest.fixture(scope="module")
def e8_degradation(experiment_report):
    """Per-ε stretch curve of one sketch (the definition of graceful)."""
    n = 192
    g = workload("er", n, weighted=True)
    d = workload_apsp("er", n, weighted=True)
    sketches, schedule = build_graceful_centralized(g, seed=41,
                                                    dist_matrix=d)
    rows = []
    for eps, k in schedule:
        rep = evaluate_stretch(
            d, lambda u, v: sketches[u].estimate_to(sketches[v]),
            eps=eps, max_pairs=3000, seed=4)
        rows.append({
            "eps": round(eps, 4),
            "f(eps)-bound(8k-1)": 8 * k - 1,
            "max-stretch(eps-far)": round(rep.max_stretch, 2),
            "mean": round(rep.mean_stretch, 3),
            "under": rep.underestimates,
        })
    experiment_report("E8-graceful-degradation", render_table(
        rows, title=f"E8: one graceful sketch, er n={n} — stretch vs eps "
                    "(Theorem 4.8: all rows from the SAME sketch)"))
    return rows


@pytest.fixture(scope="module")
def e8_average(experiment_report):
    """Average stretch vs n: graceful (O(1)) against TZ k=log n."""
    rows = []
    for n in (96, 192, 320):
        g = workload("ba", n)
        d = workload_apsp("ba", n)
        graceful, _ = build_graceful_centralized(g, seed=43, dist_matrix=d)
        k = max(1, int(math.log2(n)))
        tz, _ = build_tz_sketches_centralized(g, k=k, seed=44)
        avg_g = average_stretch(
            d, lambda u, v: graceful[u].estimate_to(graceful[v]),
            max_pairs=3000, seed=5)
        avg_tz = average_stretch(
            d, lambda u, v: estimate_distance(tz[u], tz[v]),
            max_pairs=3000, seed=5)
        rows.append({
            "n": n,
            "graceful-avg": round(avg_g, 3),
            "tz(k=log n)-avg": round(avg_tz, 3),
            "graceful-size(w)": int(np.mean([s.size_words()
                                             for s in graceful])),
            "tz-size(w)": int(np.mean([s.size_words() for s in tz])),
            "size-bound-log^4": round(graceful_size_bound(n), 0),
        })
    experiment_report("E8b-average-stretch", render_table(
        rows, title="E8: average stretch (Cor 4.9: graceful stays O(1)) "
                    "and the polylog size premium"))
    return rows


def test_e8_per_eps_bound_holds(e8_degradation):
    assert all(r["max-stretch(eps-far)"] <= r["f(eps)-bound(8k-1)"] + 1e-9
               for r in e8_degradation)


def test_e8_no_underestimates(e8_degradation):
    assert all(r["under"] == 0 for r in e8_degradation)


def test_e8_average_stretch_constant(e8_average):
    """Corollary 4.9: the measured average stays below a small constant
    and does not grow with n."""
    avgs = [r["graceful-avg"] for r in e8_average]
    assert max(avgs) <= 2.5
    assert avgs[-1] <= avgs[0] * 1.5 + 0.2


def test_e8_graceful_at_least_as_good_as_tz_on_average(e8_average):
    for r in e8_average:
        assert r["graceful-avg"] <= r["tz(k=log n)-avg"] + 0.05


def test_e8_size_within_polylog_bound(e8_average):
    assert all(r["graceful-size(w)"] <= 3 * r["size-bound-log^4"]
               for r in e8_average)


def test_e8_benchmark_build(benchmark, e8_degradation, e8_average):
    """Timing kernel: full graceful build at n=128 (centralized)."""
    g = workload("er", 128, weighted=True)
    d = workload_apsp("er", 128, weighted=True)

    def run():
        return build_graceful_centralized(g, seed=9, dist_matrix=d)

    benchmark.pedantic(run, rounds=3, iterations=1)
