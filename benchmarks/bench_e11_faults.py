"""E11 (extension) — the paper's named future work: failure-prone networks.

The paper (Section 5) points at "failure-prone and asynchronous settings"
as the open direction.  This extension experiment quantifies the first
step the library takes there:

* plain Algorithm 1 under i.i.d. message loss: fraction of nodes left
  with wrong/infinite distances at quiescence (it fails, visibly),
* retransmitting Bellman-Ford (soft-state repair): exact convergence up
  to 50% loss, at a measured retransmission overhead,
* crash faults: convergence of the surviving component.

There is no paper table to match here — the experiment documents where
the reproduction extends beyond the paper, per DESIGN.md.
"""

from __future__ import annotations

import math

import pytest

from benchmarks._workloads import workload, workload_apsp
from repro.algorithms.bellman_ford import BellmanFordProgram
from repro.algorithms.reliable_bf import reliable_single_source_distances
from repro.analysis import render_table
from repro.congest.faults import FaultModel, FaultySimulator

N = 96
LOSSES = (0.0, 0.1, 0.3, 0.5)


def _plain_bf_errors(g, d, loss: float, seed: int) -> int:
    fm = FaultModel(loss_rate=loss, seed=seed)
    sim = FaultySimulator(g, lambda u: BellmanFordProgram(u, 0),
                          seed=seed + 1, fault_model=fm)
    res = sim.run()
    dists = [p.result()[0] for p in res.programs]
    return sum(1 for u, x in enumerate(dists)
               if math.isinf(x) or abs(x - d[0, u]) > 1e-9)


@pytest.fixture(scope="module")
def e11_table(experiment_report):
    g = workload("er", N, weighted=True)
    d = workload_apsp("er", N, weighted=True)
    rows = []
    for loss in LOSSES:
        plain_err = _plain_bf_errors(g, d, loss, seed=13)
        dists, fm, metrics = reliable_single_source_distances(
            g, 0, loss_rate=loss, seed=14, fault_seed=15, patience=30)
        rel_err = sum(1 for u, x in enumerate(dists)
                      if abs(x - d[0, u]) > 1e-9)
        rows.append({
            "loss": loss,
            "plain-BF wrong-nodes": f"{plain_err}/{N}",
            "reliable-BF wrong-nodes": f"{rel_err}/{N}",
            "delivered": metrics.messages,
            "dropped": fm.dropped,
            "attempted": metrics.messages + fm.dropped,
            "rounds": metrics.rounds,
        })
    experiment_report("E11-fault-injection", render_table(
        rows, title=f"E11 (extension): message loss on er n={N} — "
                    "soft-state retransmission restores exactness"))
    return rows


def test_e11_plain_bf_fails_under_loss(e11_table):
    lossy = [r for r in e11_table if r["loss"] >= 0.3]
    assert any(int(r["plain-BF wrong-nodes"].split("/")[0]) > 0
               for r in lossy)


def test_e11_reliable_bf_always_exact(e11_table):
    assert all(r["reliable-BF wrong-nodes"] == f"0/{N}" for r in e11_table)


def test_e11_overhead_grows_with_loss(e11_table):
    # attempted transmissions (delivered + dropped) grow with the loss
    # rate — the cost of the soft-state repair
    attempted = [r["attempted"] for r in e11_table]
    assert attempted[-1] > attempted[0]


def test_e11_benchmark_reliable_bf(benchmark, e11_table):
    """Timing kernel: retransmitting BF at 30% loss, n=96."""
    g = workload("er", N, weighted=True)

    def run():
        return reliable_single_source_distances(g, 0, loss_rate=0.3,
                                                seed=16, fault_seed=17,
                                                patience=30)

    benchmark.pedantic(run, rounds=3, iterations=1)
