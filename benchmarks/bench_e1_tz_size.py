"""E1 — Thorup-Zwick sketch size (Lemma 3.1, Theorem 1.1/3.8).

Claims under test:
* expected label size O(k n^{1/k}) words (Lemma 3.1),
* w.h.p. label size O(k n^{1/k} log n) words (Lemma 3.6 / Theorem 3.8),
* the size/stretch knob: k = log n minimizes size at O(log^2 n)-ish words.

The table reports, for each (family, n, k): measured mean and max label
size in words against both theory curves; the implied constants must not
drift upward with n (shape reproduction).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks._workloads import workload
from repro.analysis import render_table, tz_size_bound
from repro.tz import build_tz_sketches_centralized

FAMILIES = ("er", "geo")
NS = (64, 128, 256, 512)
KS = (1, 2, 3, "log n")


def _resolve_k(k, n: int) -> int:
    return max(1, int(math.log2(n))) if k == "log n" else k


def _measure(family: str, n: int, k) -> dict:
    kk = _resolve_k(k, n)
    g = workload(family, n)
    sketches, _ = build_tz_sketches_centralized(g, k=kk, seed=n + kk)
    sizes = np.array([s.size_words() for s in sketches])
    return {
        "family": family,
        "n": n,
        "k": f"{k}" if k != "log n" else f"log n={kk}",
        "mean(words)": round(float(sizes.mean()), 1),
        "max(words)": int(sizes.max()),
        "E-bound k*n^(1/k)": round(2 * tz_size_bound(n, kk, whp=False), 1),
        "mean/E-bound": round(float(sizes.mean())
                              / (2 * tz_size_bound(n, kk, whp=False)), 3),
        "max/whp-bound": round(int(sizes.max())
                               / (2 * tz_size_bound(n, kk, whp=True)), 3),
    }


@pytest.fixture(scope="module")
def e1_table(experiment_report):
    rows = [_measure(f, n, k) for f in FAMILIES for n in NS for k in KS]
    experiment_report("E1-tz-sketch-size", render_table(
        rows, title="E1: TZ label size vs k n^{1/k} (Lemma 3.1 / Thm 3.8); "
                     "bounds in words = 2 entries"))
    return rows


def test_e1_mean_size_tracks_expectation(e1_table):
    """Implied constant of the Lemma 3.1 expectation stays O(1)."""
    assert all(r["mean/E-bound"] <= 3.0 for r in e1_table)


def test_e1_max_size_within_whp_bound(e1_table):
    assert all(r["max/whp-bound"] <= 3.0 for r in e1_table)


def test_e1_no_upward_drift_in_n(e1_table):
    """Shape: the implied constant must not grow along the n sweep."""
    for family in FAMILIES:
        for k in ("2", "3"):
            ratios = [r["mean/E-bound"] for r in e1_table
                      if r["family"] == family and r["k"] == k]
            assert ratios[-1] <= 2.0 * ratios[0] + 0.2


def test_e1_klogn_smallest_at_large_n(e1_table):
    """k=log n gives the smallest sketches at the largest n (paper: the
    minimum-size point of the tradeoff)."""
    big = [r for r in e1_table if r["n"] == max(NS) and r["family"] == "er"]
    sizes = {r["k"]: r["mean(words)"] for r in big}
    logk = next(v for k, v in sizes.items() if k.startswith("log"))
    assert logk <= sizes["1"]
    assert logk <= sizes["2"]


def bench_build(n=256, k=3):
    g = workload("er", n)
    return build_tz_sketches_centralized(g, k=k, seed=1)


def test_e1_benchmark_build_centralized(benchmark, e1_table):
    """Timing kernel: centralized TZ preprocessing at n=256, k=3."""
    benchmark.pedantic(bench_build, rounds=3, iterations=1)
