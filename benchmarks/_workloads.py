"""Shared workload generators for the experiment suite.

Centralizing the graph construction keeps every experiment's workload
reproducible (fixed seeds derived from the experiment id) and documented
in one place: ER for unstructured networks, geometric for the
network-coordinate setting, grid/ring for high-diameter topologies,
star-path for the D-vs-S gap.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.graphs import (
    Graph,
    apsp,
    assign_uniform_weights,
    barabasi_albert,
    erdos_renyi,
    grid2d,
    random_geometric,
    ring,
    shortest_path_diameter,
    star_path,
)

BASE_SEED = 20120625  # SPAA'12 conference date — fixed workload seed


@functools.lru_cache(maxsize=64)
def workload(family: str, n: int, weighted: bool = False) -> Graph:
    """A reproducible experiment graph of the given family and size."""
    seed = BASE_SEED + hash((family, n, weighted)) % 100_000
    if family == "er":
        g = erdos_renyi(n, seed=seed)
    elif family == "ba":
        g = barabasi_albert(n, m_attach=2, seed=seed)
    elif family == "geo":
        g = random_geometric(n, seed=seed)
    elif family == "grid":
        side = int(round(n ** 0.5))
        g = grid2d(side, max(1, n // side))
    elif family == "ring":
        g = ring(n)
    elif family == "star_path":
        g = star_path(n)
    else:
        raise ValueError(f"unknown workload family {family!r}")
    if weighted and family not in ("geo",):  # geo is already weighted
        assign_uniform_weights(g, low=1, high=10, seed=seed + 1)
    return g


@functools.lru_cache(maxsize=64)
def workload_apsp(family: str, n: int, weighted: bool = False) -> np.ndarray:
    return apsp(workload(family, n, weighted))


@functools.lru_cache(maxsize=64)
def workload_S(family: str, n: int, weighted: bool = False) -> int:
    return shortest_path_diameter(workload(family, n, weighted))
