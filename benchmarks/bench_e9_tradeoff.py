"""E9 — the combined tradeoff table (paper Section 1.1 narrative).

One network, every scheme, full distributed accounting: "these tradeoffs
can then be combined to give an efficient construction of small sketches
with provable average-case as well as worst-case performance."  This is
the table a systems reader would want: size vs worst-case stretch vs
average stretch vs construction cost, side by side.
"""

from __future__ import annotations

import pytest

from benchmarks._workloads import workload, workload_apsp
from repro import build_sketches
from repro.analysis import render_table
from repro.oracle.evaluation import average_stretch, evaluate_stretch

N = 96
SCHEMES = [
    ("tz k=2", "tz", {"k": 2}),
    ("tz k=3", "tz", {"k": 3}),
    ("tz k=log n", "tz", {"k": 6}),
    ("stretch3 e=.25", "stretch3", {"eps": 0.25}),
    ("cdg e=.25 k=2", "cdg", {"eps": 0.25, "k": 2}),
    ("graceful", "graceful", {}),
]


@pytest.fixture(scope="module")
def e9_table(experiment_report):
    g = workload("ba", N)
    d = workload_apsp("ba", N)
    rows = []
    for label, scheme, params in SCHEMES:
        built = build_sketches(g, scheme=scheme, mode="distributed",
                               seed=51, **params)
        rep = evaluate_stretch(d, built.query, eps=built.slack())
        avg = average_stretch(d, built.query)
        rows.append({
            "scheme": label,
            "bound": built.stretch_bound(),
            "slack": built.slack() if built.slack() is not None else "-",
            "max-str": round(rep.max_stretch, 2),
            "avg-str": round(avg, 3),
            "size(w)": built.max_size_words(),
            "rounds": built.metrics.rounds,
            "messages": built.metrics.messages,
        })
    experiment_report("E9-tradeoff", render_table(
        rows, title=f"E9: all schemes on one ba n={N} overlay, distributed "
                    "builds (max-str on slack-covered pairs)"))
    return rows


def test_e9_all_bounds_hold(e9_table):
    assert all(r["max-str"] <= r["bound"] + 1e-9 for r in e9_table)


def test_e9_graceful_has_best_average(e9_table):
    avg = {r["scheme"]: r["avg-str"] for r in e9_table}
    assert avg["graceful"] <= min(v for k, v in avg.items()
                                  if k != "graceful") + 0.1


def test_e9_tz_size_decreases_with_k(e9_table):
    size = {r["scheme"]: r["size(w)"] for r in e9_table}
    assert size["tz k=log n"] <= size["tz k=2"]


def test_e9_benchmark_full_tradeoff_query(benchmark, e9_table):
    """Timing kernel: graceful query (the most expensive query path)."""
    g = workload("ba", N)
    built = build_sketches(g, scheme="graceful", seed=51)

    def run():
        s = 0.0
        for u in range(0, N, 11):
            s += built.query(u, (u * 5 + 2) % N)
        return s

    benchmark(run)
