"""E12 (extension) — compact routing from the sketch structures.

The paper motivates sketches with "basic node to node communication"
(Section 1); the canonical communication application of the Thorup-Zwick
machinery is compact routing.  This experiment measures the scheme built
in ``repro.routing`` (tables from the cluster trees, O(k)-word addresses,
O(1)-word headers):

* routed stretch vs the proved ``4k-3`` bound and vs the *distance
  estimate* stretch of the same k (routing pays extra because the packet
  commits to one pivot without seeing the target's bunch),
* table/address sizes vs k — the same size-vs-stretch dial as sketches.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp
from repro.analysis import render_table
from repro.oracle.evaluation import evaluate_stretch
from repro.routing import build_routing_scheme, evaluate_routing, route_packet
from repro.tz import build_tz_sketches_centralized, estimate_distance

N = 128
KS = (1, 2, 3, 4)


@pytest.fixture(scope="module")
def e12_table(experiment_report):
    g = workload("er", N, weighted=True)
    d = workload_apsp("er", N, weighted=True)
    rng = np.random.default_rng(8)
    iu, ju = np.triu_indices(N, k=1)
    sel = rng.choice(iu.shape[0], size=2500, replace=False)
    pairs = list(zip(iu[sel].tolist(), ju[sel].tolist()))
    rows = []
    for k in KS:
        scheme = build_routing_scheme(g, k=k, seed=k)
        rep = evaluate_routing(scheme, g, d, pairs=pairs)
        sketches, _ = build_tz_sketches_centralized(
            g, hierarchy=scheme.hierarchy)
        est = evaluate_stretch(
            d, lambda u, v: estimate_distance(sketches[u], sketches[v]),
            max_pairs=2500, seed=8)
        rows.append({
            "k": k,
            "route-max": round(rep["max_stretch"], 2),
            "route-mean": round(rep["mean_stretch"], 3),
            "bound(4k-3)": scheme.stretch_bound(),
            "estimate-max": round(est.max_stretch, 2),
            "estimate-bound": 2 * k - 1,
            "table(w)": scheme.max_table_words(),
            "addr(w)": scheme.max_address_words(),
        })
    experiment_report("E12-compact-routing", render_table(
        rows, title=f"E12 (extension): routed stretch vs proved 4k-3, "
                    f"er n={N}, 2500 pairs (same hierarchy as the "
                    "estimate columns)"))
    return rows


def test_e12_routes_within_bound(e12_table):
    assert all(r["route-max"] <= r["bound(4k-3)"] + 1e-9 for r in e12_table)


def test_e12_k1_exact(e12_table):
    assert e12_table[0]["route-max"] == 1.0


def test_e12_tables_shrink_with_k(e12_table):
    tables = [r["table(w)"] for r in e12_table]
    assert tables[-1] < tables[0]


def test_e12_routing_no_cheaper_than_estimation(e12_table):
    # the routed path realizes a real walk; it can never beat the best
    # label-based estimate bound regime: mean route stretch >= 1
    assert all(r["route-mean"] >= 1.0 for r in e12_table)


def test_e12_benchmark_route(benchmark, e12_table):
    """Timing kernel: one packet forwarding at n=128, k=3."""
    g = workload("er", N, weighted=True)
    scheme = build_routing_scheme(g, k=3, seed=3)

    def run():
        total = 0.0
        for u in range(0, N, 13):
            total += route_packet(scheme, g, u, (u * 7 + 5) % N).weight
        return total

    benchmark(run)
