"""E2 — Thorup-Zwick stretch (Lemma 3.2) + query-algorithm ablation A3.

Claims under test:
* ``d(u,v) <= d'(u,v) <= (2k-1) d(u,v)`` for every pair (Lemma 3.2),
* query time O(k) (measured as the timing kernel),
* A3: the paper's level-scan query vs the classic [TZ05] bunch walk —
  same worst-case bound, empirically compared head to head.
"""

from __future__ import annotations

import pytest

from benchmarks._workloads import workload, workload_apsp
from repro.analysis import render_table
from repro.oracle.evaluation import evaluate_stretch
from repro.tz import build_tz_sketches_centralized, estimate_distance

FAMILIES = ("er", "ba", "geo")
N = 192
KS = (1, 2, 3, 4)


@pytest.fixture(scope="module")
def e2_table(experiment_report):
    rows = []
    for family in FAMILIES:
        g = workload(family, N, weighted=(family != "geo"))
        d = workload_apsp(family, N, weighted=(family != "geo"))
        for k in KS:
            sketches, _ = build_tz_sketches_centralized(g, k=k, seed=k)
            for method in ("paper", "classic"):
                rep = evaluate_stretch(
                    d, lambda u, v: estimate_distance(sketches[u],
                                                      sketches[v],
                                                      method=method),
                    max_pairs=4000, seed=1)
                rows.append({
                    "family": family,
                    "k": k,
                    "query": method,
                    "bound": 2 * k - 1,
                    "max": round(rep.max_stretch, 2),
                    "mean": round(rep.mean_stretch, 3),
                    "p95": round(rep.p95_stretch, 2),
                    "exact%": round(100 * rep.exact_fraction, 1),
                    "under": rep.underestimates,
                })
    experiment_report("E2-tz-stretch", render_table(
        rows, title=f"E2: TZ stretch vs 2k-1 (Lemma 3.2), n={N}, "
                    f"4000 sampled pairs; A3 = paper vs classic query"))
    return rows


def test_e2_stretch_within_bound(e2_table):
    assert all(r["max"] <= r["bound"] + 1e-9 for r in e2_table)


def test_e2_never_underestimates(e2_table):
    assert all(r["under"] == 0 for r in e2_table)


def test_e2_k1_exact(e2_table):
    assert all(r["max"] == 1.0 for r in e2_table if r["k"] == 1)


def test_e2_mean_stretch_much_better_than_worst_case(e2_table):
    # the well-known empirical fact the paper's average-stretch section
    # leverages: typical stretch is far below 2k-1
    assert all(r["mean"] <= (r["bound"] + 1) / 2 for r in e2_table)


def test_e2_benchmark_query(benchmark, e2_table):
    """Timing kernel: one O(k) label-pair query (k=4, n=192)."""
    g = workload("er", N, weighted=True)
    sketches, _ = build_tz_sketches_centralized(g, k=4, seed=4)

    def run():
        s = 0.0
        for u in range(0, N, 7):
            s += estimate_distance(sketches[u], sketches[(u * 3 + 1) % N])
        return s

    benchmark(run)
