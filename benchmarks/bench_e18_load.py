"""E18 — tail latency under concurrent TCP load (protocol v2).

E17 showed the wire cost of one session; this experiment measures the
fleet story the async transport rebuild exists for: **N concurrent
closed-loop clients** against one ``OracleServer`` event loop, each
pushing its own workload twice —

* ``seq``  — one ``dist_many`` per batch, one request in flight per
  connection (the protocol-v1 behaviour, the baseline), and
* ``pipe`` — one ``dist_stream`` with a request-id window ≥ 2 deep, so
  batch *k+1*'s encode and round-trip overlap batch *k*'s server-side
  probes.

The report (``BENCH_E18-load.json``) carries per-client and aggregate
p50/p99 latency (ms) and qps for both modes — the telemetry-tracked
numbers for "is ``repro serve`` credible under heavy concurrency".

Hard claims (always asserted, any size, any hardware):

* every client's pipelined answers are bit-identical to its sequential
  pass (distinct per-client workloads also catch cross-request reply
  mixups under multiplexing),
* pipelining actually engages: every client saw ≥ 2 requests in flight
  (the wall-clock half — ``overlap_seconds > 0`` — rides the timing
  gate),
* p50/p99 are present and ordered (p50 ≤ p99) in both modes.

Timing gate (pipelined throughput above the sequential baseline for
every client) arms only on a quiet box — ≥ 2 CPUs outside CI — because
loopback RTT under a loaded shared runner is noise; set
``REPRO_E18_SKIP_TIMING=1`` to disarm it explicitly (the CI smoke job
does).

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e18_load.py -q``
"""

from __future__ import annotations

import os

import pytest

from benchmarks._workloads import workload, workload_apsp
from repro import build_sketches
from repro.analysis import render_table
from repro.service import OracleServer, run_load_benchmark

N = int(os.environ.get("REPRO_E18_N", "1500"))
QUERIES = int(os.environ.get("REPRO_E18_QUERIES", "2000"))
CLIENTS = int(os.environ.get("REPRO_E18_CLIENTS", "4"))
EPS = 0.08
SEED = 57
DEPTH = 4


def _timing_gate_armed() -> bool:
    if os.environ.get("REPRO_E18_SKIP_TIMING"):
        return False
    return (os.cpu_count() or 1) >= 2 and not os.environ.get("CI")


@pytest.fixture(scope="module")
def e18_built():
    g = workload("er", N, weighted=True)
    return build_sketches(g, scheme="stretch3", eps=EPS, seed=SEED,
                          dist_matrix=workload_apsp("er", N, weighted=True))


@pytest.fixture(scope="module")
def e18_report(experiment_report, e18_built):
    # cache=0: the load generator replays the same pairs in both modes,
    # and a warm LRU would turn the pipelined pass into a cache test
    with OracleServer(e18_built, jobs=1, cache_size=0) as server:
        host, port = server.serve("127.0.0.1:0", block=False,
                                  handlers=CLIENTS)
        report = run_load_benchmark(f"tcp://{host}:{port}",
                                    clients=CLIENTS, queries=QUERIES,
                                    seed=9, depth=DEPTH)
    assert report["identical"], \
        "pipelined answers diverged from the sequential pass"
    rows = [{
        "client": row["client"],
        "seq-qps": int(row["seq_qps"]),
        "pipe-qps": int(row["pipe_qps"]),
        "speedup": round(row["pipe_qps"] / row["seq_qps"], 2),
        "inflight": row["max_inflight"],
        "seq-p99-ms": round(row["seq"]["p99_ms"], 3),
        "pipe-p99-ms": round(row["pipe"]["p99_ms"], 3),
    } for row in report["per_client"]]
    experiment_report("E18-load", render_table(
        rows, title=f"E18: {CLIENTS} concurrent tcp clients "
                    f"(stretch3 eps={EPS}, ER n={N}, "
                    f"{QUERIES} queries/client, depth={DEPTH})"),
        data={"n": N, "eps": EPS, "depth": DEPTH, **report})
    return report


def test_e18_pipelining_engages_for_every_client(e18_report):
    """Structural claim: each of the N sessions actually multiplexed —
    ≥ 2 requests in flight.  (``overlap_seconds > 0`` is a wall-clock
    claim and lives behind the timing gate below.)"""
    assert len(e18_report["per_client"]) == CLIENTS
    for row in e18_report["per_client"]:
        assert row["max_inflight"] >= 2, row


def test_e18_percentiles_present_and_ordered(e18_report):
    """The telemetry the JSON exists for: p50/p99 per mode, aggregate
    and per client, with p50 ≤ p99."""
    for block in [e18_report["seq"], e18_report["pipe"]] + [
            p[m] for p in e18_report["per_client"]
            for m in ("seq", "pipe")]:
        assert block["p50_ms"] is not None
        assert block["p50_ms"] <= block["p99_ms"]
    assert e18_report["seq_total_qps"] > 0
    assert e18_report["pipe_total_qps"] > 0


def test_e18_pipelined_beats_sequential(e18_report):
    """The acceptance gate: with ≥ 4 concurrent clients, every client's
    pipelined pass sustains more throughput than its own
    one-request-in-flight baseline."""
    if not _timing_gate_armed():
        pytest.skip("timing gate needs >= 2 CPUs outside CI "
                    "(or unset REPRO_E18_SKIP_TIMING)")
    for row in e18_report["per_client"]:
        assert row["overlap_seconds"] > 0.0, row
        assert row["pipe_qps"] > row["seq_qps"], row
