"""E17 — the transport matrix: inproc vs proc vs tcp-loopback.

PR 5 unified the serving API around sessions over pluggable transports
(`repro.service.transport.connect`): the same plan/shard_answer/finish
dataflow runs in-process (``inproc://``), over a local worker pool
(``proc://jobs=N;memory=shared``), and across a TCP frame protocol
(``tcp://host:port``).  This experiment measures what each topology
costs on one box, for the same stretch-3 workload E15b uses:

* ``single_qps``  — one pair per request (for tcp: one RPC per pair,
  the latency floor),
* ``batched_qps`` — ``dist_many`` per batch (the request-amortized
  path),
* ``streamed_qps`` — ``dist_stream`` over all batches (on pooled local
  transports this is the double-buffered dispatch: batch *k+1*'s encode
  overlaps batch *k*'s probes; the report's ``overlap-ms`` column shows
  the hidden master seconds).

Hard claims (always asserted, any size, any hardware): per-pair,
batched, and streamed answers are **bit-identical** on every transport.
There is no timing gate — relative transport cost is exactly the
environment-dependent quantity the table exists to show (CI runs this
at n=300 purely to keep every code path exercised; see the bench-smoke
job).

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e17_transport.py -q``
"""

from __future__ import annotations

import os

import pytest

from benchmarks._workloads import workload, workload_apsp
from repro import build_sketches
from repro.analysis import render_table
from repro.service import OracleServer, run_connect_benchmark

N = int(os.environ.get("REPRO_E17_N", "1500"))
QUERIES = int(os.environ.get("REPRO_E17_QUERIES", "3000"))
BATCH = min(500, QUERIES)
EPS = 0.08
SEED = 57
JOBS = 4


@pytest.fixture(scope="module")
def e17_built():
    g = workload("er", N, weighted=True)
    return build_sketches(g, scheme="stretch3", eps=EPS, seed=SEED,
                          dist_matrix=workload_apsp("er", N, weighted=True))


@pytest.fixture(scope="module")
def e17_table(experiment_report, e17_built):
    # cache=0 everywhere (the tcp server below is also built with
    # cache_size=0): the table compares transports, and a warm LRU
    # cache would turn the local rows into dict-lookup benchmarks
    specs = [("inproc", "inproc://cache=0", e17_built),
             (f"proc x{JOBS}",
              f"proc://jobs={JOBS};memory=shared;cache=0", e17_built)]
    rows = []
    reports = []
    with OracleServer(e17_built, jobs=JOBS, memory="shared",
                      num_shards=JOBS, cache_size=0) as server:
        host, port = server.serve("127.0.0.1:0", block=False)
        specs.append(("tcp-loopback", f"tcp://{host}:{port}", None))
        for label, spec, source in specs:
            rep = run_connect_benchmark(spec, source, queries=QUERIES,
                                        batch=BATCH, seed=9, repeats=3)
            assert rep["identical"], \
                f"{label}: batched/streamed answers diverged"
            reports.append(rep)
            phases = rep.get("phases") or {}
            rows.append({
                "transport": label,
                "single-qps": int(rep["single_qps"]),
                "batched-qps": int(rep["batched_qps"]),
                "streamed-qps": int(rep["streamed_qps"]),
                "vs-inproc": (round(rep["batched_qps"]
                                    / reports[0]["batched_qps"], 2)
                              if reports else 1.0),
                "overlap-ms": round(
                    phases.get("overlap_seconds", 0.0) * 1e3, 2),
            })
    experiment_report("E17-transport", render_table(
        rows, title=f"E17: serving transports (stretch3 eps={EPS}, "
                    f"ER n={N}, batch={BATCH}, {JOBS} workers/shards)"),
        data={"n": N, "queries": QUERIES, "batch": BATCH, "eps": EPS,
              "jobs": JOBS, "rows": rows})
    return rows


def test_e17_answers_identical_on_every_transport(e17_table):
    """The identity assertions ran inside the table fixture (per cell,
    against the per-pair loop of the same session); the table itself
    must cover all three topologies."""
    assert [r["transport"] for r in e17_table] == \
        ["inproc", f"proc x{JOBS}", "tcp-loopback"]


def test_e17_pooled_stream_reports_overlap(e17_table):
    """The double-buffered dispatch actually engaged on the pooled
    transport: some master-side encode time was hidden behind in-flight
    probes (a timing *presence* check, not a performance gate)."""
    proc_row = e17_table[1]
    assert proc_row["overlap-ms"] > 0.0
