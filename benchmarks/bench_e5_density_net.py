"""E5 — ε-density nets (Definition 4.1, Lemma 4.2) + A2 ablation.

Claims under test:
* property 1 (coverage): every node has a net node within R(u, ε) — w.h.p.
  over the sampling; the table reports the empirical failure rate over
  many seeds,
* property 2 (size): |N| <= (10/ε) ln n — likewise w.h.p.,
* the construction takes "constant time" (zero communication — sampling is
  local coin flips); the companion super-source assignment costs O(S)
  rounds (reported),
* A2: the original [CDG06] centralized net (|N| ~ 1/ε, radius 2R) vs the
  paper's distributable sampled net (|N| ~ (10/ε) ln n, radius R) — the
  modification buys distributability with a log-factor size cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp, workload_S
from repro.analysis import render_table
from repro.slack.density_net import (
    build_density_net_distributed,
    cdg_original_net,
    sample_density_net,
    verify_density_net,
)

N = 384
EPSES = (0.5, 0.25, 0.1, 0.05)
TRIALS = 30


@pytest.fixture(scope="module")
def e5_table(experiment_report):
    d = workload_apsp("geo", N)
    rows = []
    for eps in EPSES:
        sizes, cover_fail, size_fail = [], 0, 0
        for t in range(TRIALS):
            net = sample_density_net(N, eps, seed=1000 * t + 7)
            rep = verify_density_net(d, net)
            sizes.append(rep["size"])
            cover_fail += not rep["coverage_ok"]
            size_fail += not rep["size_ok"]
        rows.append({
            "eps": eps,
            "mean|N|": round(float(np.mean(sizes)), 1),
            "bound(10/e)ln n": round(10 / eps * np.log(N), 1),
            "coverage-failures": f"{cover_fail}/{TRIALS}",
            "size-failures": f"{size_fail}/{TRIALS}",
        })
    experiment_report("E5-density-net", render_table(
        rows, title=f"E5: sampled eps-density nets on geo n={N} "
                    f"(Lemma 4.2), {TRIALS} seeds each"))
    return rows


@pytest.fixture(scope="module")
def e5_ablation(experiment_report):
    d = workload_apsp("geo", N)
    rows = []
    for eps in (0.25, 0.1):
        sampled = sample_density_net(N, eps, seed=77)
        original = cdg_original_net(d, eps)
        rows.append({"eps": eps, "net": "paper (sampled, radius R)",
                     "|N|": sampled.size()})
        rows.append({"eps": eps, "net": "CDG'06 (greedy, radius 2R)",
                     "|N|": original.size()})
    experiment_report("E5a-net-ablation", render_table(
        rows, title="E5/A2: distributability costs a log factor in |N| "
                    "(paper Section 4 modification)"))
    return rows


@pytest.fixture(scope="module")
def e5_assignment(experiment_report):
    g = workload("geo", 128)
    S = workload_S("geo", 128)
    net, _, metrics = build_density_net_distributed(g, 0.25, seed=5)
    text = (f"super-source assignment on geo n=128: {metrics.rounds} rounds "
            f"(S = {S}), {metrics.messages} messages, |N| = {net.size()}")
    experiment_report("E5b-net-assignment", text)
    return metrics, S


def test_e5_rare_failures(e5_table):
    for r in e5_table:
        assert int(r["coverage-failures"].split("/")[0]) <= 2
        assert int(r["size-failures"].split("/")[0]) == 0


def test_e5_mean_size_below_bound(e5_table):
    assert all(r["mean|N|"] <= r["bound(10/e)ln n"] for r in e5_table)


def test_e5_ablation_ordering(e5_ablation):
    by_eps = {}
    for r in e5_ablation:
        by_eps.setdefault(r["eps"], {})[r["net"][:3]] = r["|N|"]
    for d in by_eps.values():
        assert d["CDG"] <= d["pap"]  # original net is smaller...
    # ...but cannot be built by local sampling (it needs global greedy)


def test_e5_assignment_rounds_order_S(e5_assignment):
    metrics, S = e5_assignment
    assert metrics.rounds <= 3 * S + 3


def test_e5_benchmark_sampling(benchmark, e5_table, e5_ablation,
                               e5_assignment):
    """Timing kernel: net sampling + exact verification at n=384."""
    d = workload_apsp("geo", N)

    def run():
        net = sample_density_net(N, 0.1, seed=3)
        return verify_density_net(d, net)

    benchmark(run)
