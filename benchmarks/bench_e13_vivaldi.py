"""E13 (baseline) — sketches vs network coordinates (paper Section 1).

The paper's positioning claim: network coordinate systems (Vivaldi,
Meridian) are practical but "can easily be shown to exhibit poor behavior
in pathological instances" — their guarantees require low-dimensional
metrics, while the sketch guarantees hold for *all* weighted graphs.

This experiment puts the implemented Vivaldi baseline next to TZ sketches
of comparable per-node size on two workloads:

* `geo` — a genuinely low-dimensional metric (Vivaldi's home turf),
* weighted `er` — a high-dimensional metric that does not embed in R^3.

Reported: the over/underestimate spread.  Two facts must reproduce:
coordinates **underestimate** (sketches never do — their estimates are
path lengths), and their worst-case ratio degrades sharply off the
low-dimensional regime while TZ's bound is topology-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp
from repro.analysis import render_table
from repro.baselines import build_vivaldi
from repro.tz import build_tz_sketches_centralized, estimate_distance

N = 128
K = 3  # TZ comparison point: stretch bound 5


def _profile(query, d, n, rng) -> dict:
    iu, ju = np.triu_indices(n, k=1)
    sel = rng.choice(iu.shape[0], size=min(3000, iu.shape[0]), replace=False)
    ratios = []
    under = 0
    for u, v in zip(iu[sel], ju[sel]):
        u, v = int(u), int(v)
        est = query(u, v)
        ratios.append(est / d[u, v])
        if est < d[u, v] * (1 - 1e-9):
            under += 1
    arr = np.asarray(ratios)
    return {
        "max-over": round(float(arr.max()), 2),
        "worst-under": round(float(arr.min()), 3),
        "mean": round(float(arr.mean()), 3),
        "underestimates": f"{under}/{arr.size}",
    }


@pytest.fixture(scope="module")
def e13_table(experiment_report):
    rng = np.random.default_rng(19)
    rows = []
    for family, weighted in (("geo", False), ("er", True)):
        g = workload(family, N, weighted=weighted)
        d = workload_apsp(family, N, weighted=weighted)
        vc = build_vivaldi(g, dim=3, seed=20, dist_matrix=d)
        sketches, _ = build_tz_sketches_centralized(g, k=K, seed=21)
        mean_tz_size = float(np.mean([s.size_words() for s in sketches]))
        for label, query, size in (
                (f"vivaldi dim=3", vc.estimate, vc.size_words()),
                (f"tz k={K}", lambda u, v: estimate_distance(
                    sketches[u], sketches[v]), round(mean_tz_size, 1))):
            prof = _profile(query, d, N, rng)
            rows.append({"family": family, "scheme": label,
                         "size(w)": size, **prof})
    experiment_report("E13-vivaldi-baseline", render_table(
        rows, title=f"E13: coordinates vs sketches, n={N} "
                    "(paper §1: coordinates lack worst-case guarantees)"))
    return rows


def test_e13_sketches_never_underestimate(e13_table):
    for r in e13_table:
        if r["scheme"].startswith("tz"):
            assert r["underestimates"].startswith("0/")
            assert r["worst-under"] >= 1.0 - 1e-9


def test_e13_vivaldi_underestimates(e13_table):
    viv = [r for r in e13_table if r["scheme"].startswith("vivaldi")]
    assert all(not r["underestimates"].startswith("0/") for r in viv)


def test_e13_vivaldi_degrades_off_geometry(e13_table):
    by_family = {r["family"]: r for r in e13_table
                 if r["scheme"].startswith("vivaldi")}
    # worst-case spread (over + under) is clearly wider on er than geo
    geo_spread = by_family["geo"]["max-over"] / by_family["geo"]["worst-under"]
    er_spread = by_family["er"]["max-over"] / by_family["er"]["worst-under"]
    assert er_spread > 1.5 * geo_spread


def test_e13_tz_bound_is_topology_independent(e13_table):
    for r in e13_table:
        if r["scheme"].startswith("tz"):
            assert r["max-over"] <= 2 * K - 1 + 1e-9


def test_e13_benchmark_embedding(benchmark, e13_table):
    """Timing kernel: Vivaldi relaxation at n=128, dim=3, 50 rounds."""
    g = workload("geo", N)
    d = workload_apsp("geo", N)

    def run():
        return build_vivaldi(g, dim=3, rounds=50, seed=22, dist_matrix=d)

    benchmark.pedantic(run, rounds=3, iterations=1)
