"""E10 — online queries: O(D · sketch-size) vs Ω(S) (paper Section 2.1).

Claims under test:
* exchanging sketches answers a pairwise query in rounds governed by the
  hop distance and the sketch size — independent of S,
* any fresh computation (distributed Bellman-Ford here) pays Ω(S) rounds
  and floods the network,
* the gap is unbounded: on star-path graphs D = 2 while S = n - 2, so the
  fresh cost grows linearly in n while the online cost stays flat.
"""

from __future__ import annotations

import pytest

from benchmarks._workloads import workload
from repro import build_sketches
from repro.algorithms import single_source_distances
from repro.analysis import render_table
from repro.graphs import graph_stats
from repro.oracle.online import online_query_cost, simulate_online_exchange

NS = (17, 33, 65, 129)  # star_path sizes (n_path + hub)


@pytest.fixture(scope="module")
def e10_table(experiment_report):
    rows = []
    for n in NS:
        g = workload("star_path", n - 1)
        stats = graph_stats(g)
        built = build_sketches(g, scheme="tz", k=2, seed=61)
        words = built.max_size_words()
        cost, online = simulate_online_exchange(g, u=0, v=g.n - 2,
                                                sketch_words=words)
        _, _, fresh = single_source_distances(g, 0)
        rows.append({
            "n": stats.n,
            "D": stats.hop_diameter,
            "S": stats.shortest_path_diameter,
            "sketch(w)": words,
            "online-rounds": online.rounds,
            "D*size-bound": stats.hop_diameter * words,
            "fresh-BF-rounds": fresh.rounds,
            "fresh-BF-msgs": fresh.messages,
        })
    experiment_report("E10-online-query", render_table(
        rows, title="E10: online sketch exchange vs fresh computation "
                    "(star-path: D stays 2, S grows with n)"))
    return rows


@pytest.fixture(scope="module")
def e10_bandwidth(experiment_report):
    """Ablation: the bandwidth parameter B trades rounds for words/round.

    The model allows generalizing to B bits per edge (Section 2.2); the
    online exchange makes the tradeoff visible directly: chunks =
    ceil(words / B), rounds = hops + chunks - 1.
    """
    g = workload("star_path", 64)
    rows = []
    for bw in (2, 6, 12, 24):
        cost, metrics = simulate_online_exchange(g, u=0, v=g.n - 2,
                                                 sketch_words=48,
                                                 bandwidth_words=bw)
        rows.append({"B(words)": bw, "chunks": cost.chunks,
                     "rounds": metrics.rounds,
                     "words-delivered": metrics.words})
    experiment_report("E10a-bandwidth-ablation", render_table(
        rows, title="E10 ablation: per-edge bandwidth B vs exchange rounds "
                    "(48-word sketch over a 3-hop path)"))
    return rows


def test_e10_bandwidth_monotone(e10_bandwidth):
    rounds = [r["rounds"] for r in e10_bandwidth]
    assert rounds == sorted(rounds, reverse=True)


def test_e10_online_within_D_times_size(e10_table):
    assert all(r["online-rounds"] <= r["D*size-bound"] for r in e10_table)


def test_e10_fresh_pays_S(e10_table):
    assert all(r["fresh-BF-rounds"] >= r["S"] for r in e10_table)


def test_e10_gap_grows_with_n(e10_table):
    gaps = [r["fresh-BF-rounds"] / r["online-rounds"] for r in e10_table]
    assert gaps[-1] > gaps[0]


def test_e10_pipelining_formula(e10_table):
    # closed-form pipelined relay: hops + chunks - 1 (verified against the
    # simulator inside simulate_online_exchange itself)
    c = online_query_cost(hops=7, sketch_words=30, bandwidth_words=6)
    assert c.rounds_pipelined == 7 + 5 - 1


def test_e10_benchmark_exchange(benchmark, e10_table, e10_bandwidth):
    """Timing kernel: simulated sketch relay on star-path(64)."""
    g = workload("star_path", 64)

    def run():
        return simulate_online_exchange(g, u=0, v=g.n - 2, sketch_words=48)

    benchmark(run)
