"""E20 — columnar batch kernels and the thread execution plane.

E15b fixed the process pool's pickle tax with shared-memory rings, but a
fundamental cost remains: every ``proc`` dispatch crosses a process
boundary (descriptor pickles, ring handshakes, scheduler wakeups).  The
thread plane (``pool="thread"``) removes the boundary entirely — shard
probes run on a ``ThreadPoolExecutor`` in the master's address space,
and because the probe kernels are columnar numpy (gathers, adds,
row-mins over the packed arrays) they release the GIL and overlap for
real.

This experiment duels the three local execution planes across batch
sizes and schemes:

* ``inproc``  — ``jobs=1``, the single-threaded decomposition,
* ``proc``    — ``jobs=4`` worker processes on the shared-memory data
  plane (E15b's winner),
* ``thread``  — ``jobs=4`` executor threads, heap memory (nothing needs
  to move when the address space is shared),

reporting per-cell throughput plus the ``kernel`` / ``ipc`` phase split
(``kernel_seconds`` is the per-batch critical path of pure shard
compute; the gap to the dispatch wall is transport overhead).

Hard claims (always asserted, any hardware): answers are bit-identical
across every arm, batch size, and scheme.  Timing claim (thread >=
``REPRO_E20_MIN_SPEEDUP``x proc qps at batch >= 256 on >= 2 schemes):
gated by ``timing_gate`` — self-skips on CI and single-CPU hosts, armed
anywhere by ``REPRO_FORCE_TIMING=1``.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e20_kernels.py -q``
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp
from repro import build_sketches
from repro.analysis import render_table
from repro.service import (QueryEngine, build_tz_sketches_parallel,
                           run_serve_benchmark, sample_query_pairs)

N = int(os.environ.get("REPRO_E20_N", "2000"))
QUERIES = int(os.environ.get("REPRO_E20_QUERIES", "4096"))
BATCHES = tuple(int(b) for b in
                os.environ.get("REPRO_E20_BATCHES", "64,256,1024").split(","))
SEED = 97
SHARDS = 4
JOBS = 4
EPS = 0.1  # |net| ~ 5 ln n / eps: a few hundred columns at n=2000
SCHEMES = ("tz", "stretch3")
#: (arm label, jobs, memory, pool)
ARMS = (("inproc", 1, "heap", "proc"),
        ("proc", JOBS, "shared", "proc"),
        ("thread", JOBS, "heap", "thread"))
MIN_SPEEDUP = float(os.environ.get("REPRO_E20_MIN_SPEEDUP", "1.5"))


@pytest.fixture(scope="module")
def e20_sketches():
    g = workload("er", N, weighted=True)
    tz, _ = build_tz_sketches_parallel(g, k=2, seed=SEED, jobs=2)
    s3 = build_sketches(g, scheme="stretch3", eps=EPS, seed=SEED,
                        dist_matrix=workload_apsp("er", N, weighted=True))
    return {"tz": tz, "stretch3": s3.sketches}


@pytest.fixture(scope="module")
def e20_table(experiment_report, e20_sketches):
    rows = []
    for scheme in SCHEMES:
        sketches = e20_sketches[scheme]
        for batch in BATCHES:
            proc_qps = None
            for arm, jobs, memory, pool in ARMS:
                rep = run_serve_benchmark(sketches, queries=QUERIES,
                                          batch=batch, seed=11, repeats=3,
                                          num_shards=SHARDS, jobs=jobs,
                                          memory=memory, pool=pool)
                assert rep["identical"], \
                    f"{scheme} batch={batch} {arm}: answers diverged"
                phases = rep["phases"]
                qps = rep["batched_qps"]
                if arm == "proc":
                    proc_qps = qps
                rows.append({
                    "scheme": scheme, "batch": batch, "arm": arm,
                    "jobs": rep["jobs"],
                    "qps": int(qps),
                    "vs-proc": (round(qps / proc_qps, 2)
                                if arm == "thread" else ""),
                    "kernel-ms": round(phases["kernel_seconds"] * 1e3, 2),
                    "ipc-ms": round(phases["ipc_seconds"] * 1e3, 2),
                })
    experiment_report("E20-kernels", render_table(
        rows, title=f"E20: execution-plane duel (ER n={N}, {SHARDS} "
                    f"shards, jobs={JOBS}, Q={QUERIES})"),
        data={"n": N, "queries": QUERIES, "batches": list(BATCHES),
              "shards": SHARDS, "jobs": JOBS, "eps": EPS,
              "min_speedup": MIN_SPEEDUP, "rows": rows})
    return rows


def test_e20_answers_identical_across_planes(e20_sketches):
    """The hard claim: every arm serves the same bytes, every scheme."""
    pairs = sample_query_pairs(N, min(1000, QUERIES), seed=3)
    for scheme in SCHEMES:
        base = None
        for arm, jobs, memory, pool in ARMS:
            with QueryEngine(e20_sketches[scheme], cache_size=0,
                             num_shards=SHARDS, jobs=jobs, memory=memory,
                             pool=pool, _deprecation=False) as eng:
                got = eng.dist_many(pairs)
            if base is None:
                base = got
            else:
                assert np.array_equal(got, base), (scheme, arm)


def test_e20_table_complete(e20_table):
    assert len(e20_table) == len(SCHEMES) * len(BATCHES) * len(ARMS)
    for row in e20_table:
        assert row["qps"] > 0


def test_e20_kernel_phase_reported(e20_table):
    """The kernel split is present: fanned-out arms report a nonzero
    critical path, and it never exceeds the shard total implied by the
    dispatch accounting."""
    for row in e20_table:
        assert row["kernel-ms"] > 0.0
        if row["arm"] == "inproc":
            assert row["ipc-ms"] == 0.0  # no transport in-process


def test_e20_thread_beats_proc_at_large_batches(e20_table, timing_gate):
    """The tentpole claim: with no process boundary to cross, the thread
    plane out-serves the process pool at batch >= 256 on >= 2 schemes."""
    timing_gate("thread-vs-proc duel")
    winners = 0
    for scheme in SCHEMES:
        ratios = [row["vs-proc"] for row in e20_table
                  if row["scheme"] == scheme and row["arm"] == "thread"
                  and row["batch"] >= 256]
        assert ratios, f"no large-batch thread rows for {scheme}"
        if all(r >= MIN_SPEEDUP for r in ratios):
            winners += 1
    assert winners >= 2, (
        f"thread plane >= {MIN_SPEEDUP}x proc on only {winners} scheme(s); "
        f"rows: {[r for r in e20_table if r['arm'] == 'thread']}")
