"""E4 — termination-detection overhead (Section 3.3).

Claims under test:
* the ECHO scheme "at most doubles the number of messages": measured as
  exactly one ECHO per data message, plus the COMPLETE/START/election
  extras the paper calls negligible (O(n) per phase + O(|E| log n) once),
* phases stay correct without any global knowledge: the echo run's
  sketches equal the oracle run's (asserted during construction),
* the known-S alternative (the paper's Section 3.2 assumption) trades
  *idle* rounds for zero detection traffic — the table shows all three.
"""

from __future__ import annotations

import pytest

from benchmarks._workloads import workload, workload_S
from repro.analysis import render_table
from repro.tz import (
    build_tz_sketches_centralized,
    build_tz_sketches_distributed,
    sample_hierarchy,
)

NS = (16, 32, 64)
K = 2


def _same(a, b):
    return all(x.pivots == y.pivots and x.bunch == y.bunch
               for x, y in zip(a, b))


@pytest.fixture(scope="module")
def e4_table(experiment_report):
    rows = []
    for n in NS:
        g = workload("er", n)
        S = workload_S("er", n)
        h = sample_hierarchy(g.n, K, seed=n)
        reference, _ = build_tz_sketches_centralized(g, hierarchy=h)
        per_mode = {}
        for sync, kw in (("oracle", {}), ("echo", {}),
                         ("known_smax", {"S": S, "budget": "whp"})):
            res = build_tz_sketches_distributed(g, hierarchy=h, sync=sync,
                                                seed=n + 1, **kw)
            assert _same(reference, res.sketches), (sync, n)
            per_mode[sync] = res
            rows.append({
                "n": g.n,
                "sync": sync,
                "rounds": res.metrics.rounds,
                "messages": res.metrics.messages,
                "words": res.metrics.words,
                "vs-oracle-msgs": round(
                    res.metrics.messages
                    / per_mode["oracle"].metrics.messages, 2),
                "vs-oracle-rounds": round(
                    res.metrics.rounds
                    / per_mode["oracle"].metrics.rounds, 2),
            })
    experiment_report("E4-termination-detection", render_table(
        rows, title="E4: cost of Section 3.3 termination detection "
                    "(sketches verified identical across modes)"))
    return rows


def test_e4_echo_message_overhead_bounded(e4_table):
    """Data+ECHO is 2x; election/COMPLETE/START add a modest extra."""
    for n in NS:
        row = next(r for r in e4_table if r["n"] == n and r["sync"] == "echo")
        assert row["vs-oracle-msgs"] <= 6.0


def test_e4_known_smax_sends_no_extra_messages(e4_table):
    for n in NS:
        row = next(r for r in e4_table
                   if r["n"] == n and r["sync"] == "known_smax")
        assert row["vs-oracle-msgs"] == 1.0


def test_e4_known_smax_pays_idle_rounds(e4_table):
    for n in NS:
        oracle = next(r for r in e4_table
                      if r["n"] == n and r["sync"] == "oracle")
        ks = next(r for r in e4_table
                  if r["n"] == n and r["sync"] == "known_smax")
        assert ks["rounds"] > oracle["rounds"]


def test_e4_benchmark_echo_build(benchmark, e4_table):
    """Timing kernel: echo-mode distributed build at n=32."""
    g = workload("er", 32)

    def run():
        return build_tz_sketches_distributed(g, k=K, sync="echo", seed=5)

    benchmark.pedantic(run, rounds=3, iterations=1)
