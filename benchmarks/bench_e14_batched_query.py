"""E14 — batched oracle serving: vectorized engine vs single-query loop.

The paper's oracle answers one ``dist(u, v)`` in O(k) dictionary
operations — great latency, but a serving system sees query *traffic*.
This experiment measures the serving layer (:mod:`repro.service`): sketch
entries pre-indexed into flat landmark tables (dense top level + hashed
sub-top shards) answer a batch of Q queries in one vectorized pass.

Claims under test:

* batching 1000 queries on a 2000-node graph is >= 5x the single-query
  loop's throughput (the PR's acceptance bar; measured around 6-7x here),
* batched answers are bit-identical to the single-query path (asserted
  inside the harness for every row of the table — a throughput number for
  diverging answers would be meaningless),
* the shard count never changes answers, only the layout,
* the LRU result cache turns repeated traffic into pure hits.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e14_batched_query.py -q``
"""

from __future__ import annotations

import os

import pytest

from benchmarks._workloads import workload
from repro.analysis import render_table
from repro.service import QueryEngine, build_tz_sketches_parallel
from repro.service.bench import run_serve_benchmark, sample_query_pairs

# CI's benchmark smoke job shrinks the graph (and zeroes the speedup
# bar) to exercise the serving path without timing claims
N = int(os.environ.get("REPRO_E14_N", "2000"))
QUERIES = int(os.environ.get("REPRO_E14_QUERIES", "1000"))
SEED = 61
# the acceptance bar on quiet hardware; shared/throttled CI runners can
# relax it via the environment (see .github/workflows/ci.yml) — the
# bit-identity assertions are never relaxed
MIN_SPEEDUP = float(os.environ.get("REPRO_E14_MIN_SPEEDUP", "5.0"))


@pytest.fixture(scope="module")
def e14_sketches():
    g = workload("er", N, weighted=True)
    sketches, _ = build_tz_sketches_parallel(g, k=2, seed=SEED, jobs=1)
    return sketches


@pytest.fixture(scope="module")
def e14_table(experiment_report, e14_sketches):
    rows = []
    for batch in (100, 250, 1000):
        rep = run_serve_benchmark(e14_sketches, queries=QUERIES, batch=batch,
                                  seed=7, repeats=5)
        assert rep["identical"], "batched answers diverged"
        rows.append({
            "n": rep["n"], "Q": rep["queries"], "batch": rep["batch"],
            "single-qps": int(rep["single_qps"]),
            "batched-qps": int(rep["batched_qps"]),
            "speedup": round(rep["speedup"], 2),
        })
    experiment_report("E14-batched-query", render_table(
        rows, title="E14: batched serving throughput vs the single-query "
                    "loop (TZ k=2, ER n=2000, uniform weights)"),
        data={"n": N, "queries": QUERIES, "rows": rows})
    return rows


def test_e14_batched_5x_at_1000(e14_table):
    """The acceptance bar: >= 5x for batches of 1000 on a 2000-node graph."""
    full_batch = [r for r in e14_table if r["batch"] == QUERIES]
    assert full_batch and full_batch[0]["speedup"] >= MIN_SPEEDUP


def test_e14_bigger_batches_amortize_better(e14_table):
    if MIN_SPEEDUP <= 0:  # the CI smoke config: no timing claims at all
        pytest.skip("relative-timing claim disabled (REPRO_E14_MIN_SPEEDUP=0)")
    speedups = [r["speedup"] for r in e14_table]
    assert speedups[-1] >= speedups[0]


def test_e14_sharding_layout_invariant(e14_sketches):
    import numpy as np

    pairs = sample_query_pairs(N, 500, seed=3)
    base = QueryEngine(e14_sketches, cache_size=0).dist_many(pairs)
    for shards in (2, 8):
        eng = QueryEngine(e14_sketches, cache_size=0, num_shards=shards)
        assert np.array_equal(eng.dist_many(pairs), base)


def test_e14_cache_serves_repeats(e14_sketches):
    eng = QueryEngine(e14_sketches, cache_size=4 * QUERIES)
    pairs = sample_query_pairs(N, QUERIES, seed=9)
    eng.dist_many(pairs)
    eng.dist_many(pairs)
    assert eng.stats.hits >= QUERIES  # second pass is all cache hits


SLACK_BUILDS = {
    "stretch3": dict(scheme="stretch3", eps=0.3),
    "cdg": dict(scheme="cdg", eps=0.3, k=2),
    "graceful": dict(scheme="graceful"),
}


@pytest.fixture(scope="module")
def e14_slack_table(experiment_report):
    """Every scheme through the batched path (smaller n: the slack builds
    run full APSP, and the claim here is identity + speedup shape, not
    absolute throughput)."""
    from repro import build_sketches

    g = workload("er", 400, weighted=True)
    rows = []
    for scheme, params in SLACK_BUILDS.items():
        built = build_sketches(g, seed=SEED, **params)
        rep = run_serve_benchmark(built.sketches, queries=500, batch=500,
                                  seed=7, repeats=2, num_shards=2)
        assert rep["identical"], f"{scheme}: batched answers diverged"
        rows.append({
            "scheme": rep["scheme"], "n": rep["n"], "Q": rep["queries"],
            "single-qps": int(rep["single_qps"]),
            "batched-qps": int(rep["batched_qps"]),
            "speedup": round(rep["speedup"], 2),
        })
    experiment_report("E14b-slack-batched", render_table(
        rows, title="E14b: batched serving across the slack schemes "
                    "(ER n=400, uniform weights, batch=500)"),
        data={"n": 400, "queries": 500, "rows": rows})
    return rows


def test_e14_slack_schemes_batched_identical(e14_slack_table):
    """Universal batching: every slack scheme's batched path is exact and
    at least as fast as the single-query loop."""
    assert {r["scheme"] for r in e14_slack_table} == set(SLACK_BUILDS)
    for row in e14_slack_table:
        assert row["speedup"] >= 1.0, row


def test_e14_benchmark_batched_pass(benchmark, e14_sketches, e14_table):
    """Timing kernel: one cold-cache batched pass over 1000 pairs."""
    eng = QueryEngine(e14_sketches, cache_size=0)
    pairs = sample_query_pairs(N, QUERIES, seed=7)

    def run():
        return eng.dist_many(pairs)

    benchmark(run)
