"""E15b — the zero-copy data plane: shared-memory workers vs pickle IPC.

E15 exposed the regression this experiment resolves: with ``memory="heap"``
every batch pays a pickling/IPC tax (request and response arrays cross
the pool's pipes as pickles), so multi-process serving *lost* to the
in-process path at moderate sizes.  The buffer-pack data plane removes
that tax: workers attach to the index's shared-memory pack zero-copy at
pool init, and per-batch messages move through preallocated shared ring
buffers — only tiny descriptors are pickled.

The workload is the stretch-3 scheme, whose per-shard work (a dense
``(Q, |net|/S)`` gather-add-min over the net-node columns) is the
compute-dense case worker serving exists for.  The table reports, for a
batch-1000 workload on an n>=5000 graph:

* ``heap jobs=1``  — the in-process baseline E15's winner,
* ``heap jobs=4``  — the old pickle-IPC pool (the regression),
* ``shared jobs=4`` — pack attach + ring buffers (the claim),
* ``mmap jobs=4``  — the pack in a mapped scratch file, rings for
  messages (what serving a binary index file looks like),

plus the per-phase split (plan / shard_answer / finish / IPC seconds)
from the instrumented pass, which is how an IPC-bound configuration is
diagnosed from one run.

Hard claims (always asserted): answers are bit-identical across every
``(memory, jobs)`` cell.  Timing claim (``shared jobs=4`` strictly
faster than ``jobs=1``): asserted only where it is physically meaningful
— the full-size workload (``n >= 5000``) on quiet hardware with >= 4
CPUs outside CI — because no worker pool can beat in-process serving on
a single core, tiny graphs cannot amortize dispatch, and shared runners
report logical CPUs they do not actually deliver.  Set
``REPRO_E15B_MIN_SPEEDUP`` to arm the gate explicitly anywhere (it also
overrides the required ratio; default 1.0 = strictly faster);
``REPRO_E15B_SKIP_TIMING=1`` force-disables it.

Run: ``PYTHONPATH=src python -m pytest benchmarks/bench_e15b_shared_memory.py -q``
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks._workloads import workload, workload_apsp
from repro import build_sketches
from repro.analysis import render_table
from repro.service import QueryEngine, run_serve_benchmark, sample_query_pairs

N = int(os.environ.get("REPRO_E15B_N", "5000"))
QUERIES = int(os.environ.get("REPRO_E15B_QUERIES", "4000"))
BATCH = min(1000, QUERIES)
EPS = 0.04  # |net| ~ 5 ln n / eps: ~1000 columns at n=5000
SEED = 83
SHARDS = 4
#: (memory, jobs, pool) — the proc-plane sweep plus the thread arm
#: (``pool="thread"`` shares the address space, so heap is its natural
#: memory mode: nothing needs to move)
CELLS = (("heap", 1, "proc"), ("heap", 4, "proc"), ("shared", 4, "proc"),
         ("mmap", 4, "proc"), ("heap", 4, "thread"))
MIN_SPEEDUP = float(os.environ.get("REPRO_E15B_MIN_SPEEDUP", "1.0"))
# self-arm only where the claim is physically checkable: full size, >= 4
# CPUs, and not a CI runner (logical-CPU counts lie there); an explicit
# REPRO_E15B_MIN_SPEEDUP arms it anywhere
_GATE_TIMING = (N >= 5000
                and not os.environ.get("REPRO_E15B_SKIP_TIMING")
                and ("REPRO_E15B_MIN_SPEEDUP" in os.environ
                     or ((os.cpu_count() or 1) >= 4
                         and not os.environ.get("CI"))))


@pytest.fixture(scope="module")
def e15b_sketches():
    g = workload("er", N, weighted=True)
    built = build_sketches(g, scheme="stretch3", eps=EPS, seed=SEED,
                           dist_matrix=workload_apsp("er", N, weighted=True))
    return built.sketches


@pytest.fixture(scope="module")
def e15b_table(experiment_report, e15b_sketches):
    rows = []
    for memory, jobs, pool in CELLS:
        rep = run_serve_benchmark(e15b_sketches, queries=QUERIES,
                                  batch=BATCH, seed=9, repeats=3,
                                  num_shards=SHARDS, jobs=jobs,
                                  memory=memory, pool=pool)
        assert rep["identical"], \
            f"memory={memory} jobs={jobs} pool={pool}: answers diverged"
        phases = rep["phases"]
        rows.append({
            "memory": memory, "jobs": rep["jobs"], "pool": pool,
            "batch": rep["batch"],
            "batched-qps": int(rep["batched_qps"]),
            "vs-jobs1": (round(rep["batched_qps"] / rows[0]["batched-qps"], 2)
                         if rows else 1.0),
            "shard-ms": round(phases["shard_answer_seconds"] * 1e3, 2),
            "ipc-ms": round(phases["ipc_seconds"] * 1e3, 2),
        })
    experiment_report("E15b-shared-memory", render_table(
        rows, title=f"E15b: zero-copy data plane (stretch3 eps={EPS}, "
                    f"ER n={N}, {SHARDS} shards, batch={BATCH})"),
        data={"n": N, "queries": QUERIES, "batch": BATCH, "eps": EPS,
              "shards": SHARDS, "rows": rows})
    return rows


def test_e15b_answers_identical_across_memory_modes(e15b_sketches):
    """The hard claim: every (memory, jobs) cell produces the same bytes."""
    pairs = sample_query_pairs(N, min(1000, QUERIES), seed=3)
    base = None
    for memory, jobs, pool in CELLS:
        with QueryEngine(e15b_sketches, cache_size=0, num_shards=SHARDS,
                         jobs=jobs, memory=memory, pool=pool) as eng:
            got = eng.dist_many(pairs)
        if base is None:
            base = got
        else:
            assert np.array_equal(got, base), (memory, jobs, pool)


def test_e15b_table_complete(e15b_table):
    assert [(r["memory"], r["jobs"], r["pool"]) for r in e15b_table] == [
        (m, min(j, SHARDS), p) for m, j, p in CELLS]


def test_e15b_shared_workers_beat_in_process(e15b_table):
    """The tentpole claim: with the pickle tax gone, 4 shared-memory
    workers beat the jobs=1 in-process path at batch=1000, n>=5000
    (gated to hardware where the claim is physically possible — see the
    module docstring)."""
    if not _GATE_TIMING:
        pytest.skip("timing gate needs n >= 5000 and >= 4 CPUs outside CI "
                    "(set REPRO_E15B_MIN_SPEEDUP to arm it anywhere)")
    shared = next(r for r in e15b_table if r["memory"] == "shared")
    assert shared["vs-jobs1"] >= MIN_SPEEDUP, (
        f"shared-memory workers at {shared['vs-jobs1']}x vs jobs=1 "
        f"(need >= {MIN_SPEEDUP}); ipc-ms={shared['ipc-ms']}")


def test_e15b_phase_timings_reported(e15b_table):
    """The per-phase split is present and sane: shard compute is
    nonzero, and pooled rows account IPC separately."""
    for row in e15b_table:
        assert row["shard-ms"] > 0.0
    jobs1 = e15b_table[0]
    assert jobs1["ipc-ms"] == 0.0  # in-process serving has no transport
