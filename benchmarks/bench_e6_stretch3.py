"""E6 — stretch-3 ε-slack sketches (Theorem 4.3).

Claims under test:
* stretch <= 3 on ε-far pairs (and never an underestimate anywhere),
* sketch size O((1/ε) log n) words,
* construction in O(S (1/ε) log n) rounds / O(S |E| (1/ε) log n) messages
  (distributed run, small n),
* the slack semantics: the guarantee covers ~(1-ε) of pairs (measured).
"""

from __future__ import annotations

import pytest

from benchmarks._workloads import workload, workload_apsp, workload_S
from repro.analysis import render_table, stretch3_round_bound, stretch3_size_bound
from repro.oracle.evaluation import evaluate_stretch, slack_coverage
from repro.slack.stretch3 import (build_stretch3_centralized,
                                  build_stretch3_distributed)

N = 256
EPSES = (0.5, 0.25, 0.1)


@pytest.fixture(scope="module")
def e6_table(experiment_report):
    g = workload("er", N, weighted=True)
    d = workload_apsp("er", N, weighted=True)
    rows = []
    for eps in EPSES:
        sketches, net = build_stretch3_centralized(g, eps, seed=21,
                                                   dist_matrix=d)
        rep = evaluate_stretch(
            d, lambda u, v: sketches[u].estimate_to(sketches[v]),
            eps=eps, max_pairs=4000, seed=2)
        rows.append({
            "eps": eps,
            "|N|": net.size(),
            "size(words)": sketches[0].size_words(),
            # 2 words per entry, |N| <= (10/eps) ln n (Definition 4.1)
            "size-bound": round(20 * stretch3_size_bound(N, eps), 1),
            "max-stretch(far)": round(rep.max_stretch, 3),
            "mean": round(rep.mean_stretch, 3),
            "under": rep.underestimates,
            "covered-pairs": f"{slack_coverage(d, eps):.0%}",
        })
    experiment_report("E6-stretch3", render_table(
        rows, title=f"E6: Theorem 4.3 sketches, er n={N} "
                    "(stretch measured on eps-far pairs)"))
    return rows


@pytest.fixture(scope="module")
def e6_distributed(experiment_report):
    rows = []
    for n in (48, 96):
        g = workload("er", n, weighted=True)
        S = workload_S("er", n, weighted=True)
        sketches, net, metrics = build_stretch3_distributed(g, 0.25, seed=23)
        bound = stretch3_round_bound(n, 0.25, S)
        rows.append({
            "n": n, "S": S, "|N|": net.size(),
            "rounds": metrics.rounds,
            "rounds/bound": round(metrics.rounds / bound, 3),
            "messages": metrics.messages,
        })
    experiment_report("E6b-stretch3-cost", render_table(
        rows, title="E6: distributed Theorem 4.3 cost vs S (1/eps) log n"))
    return rows


def test_e6_stretch_bound(e6_table):
    assert all(r["max-stretch(far)"] <= 3.0 + 1e-9 for r in e6_table)


def test_e6_no_underestimates(e6_table):
    assert all(r["under"] == 0 for r in e6_table)


def test_e6_size_tracks_bound(e6_table):
    assert all(r["size(words)"] <= r["size-bound"] for r in e6_table)


def test_e6_coverage_at_least_1_minus_2eps(e6_table):
    for r in e6_table:
        covered = float(r["covered-pairs"].rstrip("%")) / 100
        assert covered >= 1 - 2 * r["eps"]


def test_e6_distributed_rounds_flat(e6_distributed):
    ratios = [r["rounds/bound"] for r in e6_distributed]
    assert ratios[-1] <= 2.0 * ratios[0] + 0.05


def test_e6_benchmark_build(benchmark, e6_table, e6_distributed):
    """Timing kernel: centralized Theorem 4.3 build at n=256, eps=0.1."""
    g = workload("er", N, weighted=True)
    d = workload_apsp("er", N, weighted=True)

    def run():
        return build_stretch3_centralized(g, 0.1, seed=5, dist_matrix=d)

    benchmark.pedantic(run, rounds=3, iterations=1)
