"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e . --no-build-isolation --no-use-pep517`` works in
fully offline environments where the ``wheel`` package (required by pip's
PEP-660 editable builds with older setuptools) is unavailable.
"""

from setuptools import setup

setup()
