#!/usr/bin/env python
"""Batched serving: parallel sketch construction + sessions over
pluggable transports.

The serving-layer walkthrough (repro.service):

1. build Thorup-Zwick sketches with the construction fanned across worker
   processes (byte-identical output for any worker count),
2. open an ``inproc://`` session with :func:`repro.service.connect` —
   sketch entries pre-indexed into flat landmark tables with an LRU
   result cache,
3. answer a 10,000-query batch in one vectorized pass and check it agrees
   exactly with the single-query reference path,
4. replay the workload to show the cache absorbing repeated traffic,
5. persist the pre-built index and reload it without rebuilding,
6. put worker processes behind the landmark shards (``proc://`` — same
   bytes out), and pipeline a streaming workload through the
   double-buffered dispatch,
7. serve the same oracle over TCP (``tcp://``) and over a loopback
   client, bit-identical again,
8. serve a slack scheme (stretch3) through its own vectorized index.

The prose version of this walkthrough, with the knob-picking guidance,
is docs/serving.md.

Run:  python examples/batched_serving.py
"""

import os
import tempfile
import time

import numpy as np

from repro.graphs import assign_uniform_weights, erdos_renyi
from repro.oracle.serialization import load_index, save_index
from repro.service import (OracleServer, build_tz_sketches_parallel,
                           connect, sample_query_pairs)


def main() -> None:
    # 1. parallel preprocessing ------------------------------------------
    g = assign_uniform_weights(erdos_renyi(1000, seed=1), low=1, high=10,
                               seed=2)
    t0 = time.perf_counter()
    sketches, hierarchy = build_tz_sketches_parallel(g, k=2, seed=3, jobs=2)
    print(f"built {len(sketches)} sketches (k={hierarchy.k}, 2 workers) "
          f"in {time.perf_counter() - t0:.2f}s")

    def reference(u: int, v: int) -> float:
        from repro.tz.sketch import estimate_distance

        return estimate_distance(sketches[u], sketches[v])

    # 2. an in-process session -------------------------------------------
    session = connect("inproc://shards=4;cache=0", sketches)
    print(session)

    # 3. one vectorized pass over 10k queries ----------------------------
    pairs = sample_query_pairs(g.n, 10_000, seed=7)
    estimates = session.dist_many(pairs)  # warm-up
    t0 = time.perf_counter()
    estimates = session.dist_many(pairs)
    dt = time.perf_counter() - t0
    t0 = time.perf_counter()
    single = [reference(int(u), int(v)) for u, v in pairs]
    dt_single = time.perf_counter() - t0
    print(f"batch of {len(pairs)} queries in {dt * 1e3:.1f} ms "
          f"({len(pairs) / dt:,.0f} queries/s); single-query loop "
          f"{len(pairs) / dt_single:,.0f} queries/s -> "
          f"{dt_single / dt:.1f}x speedup")
    assert estimates.tolist() == single, "batched != single?!"
    print("batched answers identical to the single-query path")

    # 4. repeated traffic hits the LRU result cache ----------------------
    with connect("inproc://shards=4;cache=50000", sketches) as cached:
        cached.dist_many(pairs)
        cached.dist_many(pairs)
        counters = cached.stats()["cache"]
        total = counters["hits"] + counters["misses"]
        print(f"replay with cache: {counters['hits']} hits, "
              f"{counters['misses']} misses "
              f"({100 * counters['hits'] / total:.0f}% hit rate)")

    # 5. persist the pre-built index -------------------------------------
    index = session.fetch_index()  # the live store behind the session
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.json")
        save_index(index, path)
        reloaded = load_index(path)
    check = sample_query_pairs(g.n, 500, seed=9)
    assert np.array_equal(reloaded.estimate_many(check[:, 0], check[:, 1]),
                          index.estimate_many(check[:, 0], check[:, 1]))
    print("index round-trip: reloaded store answers identically")

    # 6. worker processes behind the landmark shards ---------------------
    with connect("proc://jobs=4;memory=shared;cache=0", sketches) as fleet:
        fanned = fleet.dist_many(pairs)
        assert np.array_equal(fanned, estimates), "workers changed answers?!"
        print("4 shard workers: answers bit-identical to the in-process "
              "path")
        # the pipelined stream: batch k+1's encode overlaps batch k's
        # probes; same bytes, and the hidden seconds are reported
        chunks = [pairs[lo:lo + 2000] for lo in range(0, len(pairs), 2000)]
        streamed = np.concatenate(list(fleet.dist_stream(chunks)))
        assert np.array_equal(streamed, estimates)
        overlap = fleet.stats()["phases"]["overlap_seconds"]
        print(f"pipelined stream identical too "
              f"({overlap * 1e3:.2f} ms of encode hidden behind probes)")

    # 7. the same oracle over TCP ----------------------------------------
    with OracleServer(sketches, num_shards=4, cache_size=0) as server:
        host, port = server.serve("127.0.0.1:0", block=False)
        with connect(f"tcp://{host}:{port}") as remote:
            over_tcp = remote.dist_many(pairs[:1000])
    assert np.array_equal(over_tcp, estimates[:1000])
    print("tcp-loopback session: answers bit-identical to inproc "
          "(python -m repro serve hosts the same thing as a daemon)")

    # 8. a slack scheme through its own index ----------------------------
    from repro import build_sketches

    s3 = build_sketches(g, scheme="stretch3", eps=0.25, seed=11)
    with s3.connect("inproc://cache=0") as slack:
        small = pairs[:1000]
        batched = slack.dist_many(small)
        assert batched.tolist() == [s3.query(int(u), int(v))
                                    for u, v in small]
        print(f"stretch3 via its own index: {len(small)} batched answers "
              f"identical to the single path")

    session.close()


if __name__ == "__main__":
    main()
