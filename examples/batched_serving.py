#!/usr/bin/env python
"""Batched serving: parallel sketch construction + vectorized queries.

The serving-layer walkthrough (repro.service):

1. build Thorup-Zwick sketches with the construction fanned across worker
   processes (byte-identical output for any worker count),
2. stand up a :class:`~repro.service.QueryEngine` — sketch entries
   pre-indexed into flat landmark tables with an LRU result cache,
3. answer a 10,000-query batch in one vectorized pass and check it agrees
   exactly with the single-query reference path,
4. replay the workload to show the cache absorbing repeated traffic,
5. persist the pre-built index and reload it without rebuilding,
6. put worker processes behind the landmark shards (same bytes out),
7. serve a slack scheme (stretch3) through its own vectorized index.

The prose version of this walkthrough, with the knob-picking guidance,
is docs/serving.md.

Run:  python examples/batched_serving.py
"""

import os
import tempfile
import time

import numpy as np

from repro.graphs import assign_uniform_weights, erdos_renyi
from repro.oracle.serialization import load_index, save_index
from repro.service import (QueryEngine, build_tz_sketches_parallel,
                           sample_query_pairs)


def main() -> None:
    # 1. parallel preprocessing ------------------------------------------
    g = assign_uniform_weights(erdos_renyi(1000, seed=1), low=1, high=10,
                               seed=2)
    t0 = time.perf_counter()
    sketches, hierarchy = build_tz_sketches_parallel(g, k=2, seed=3, jobs=2)
    print(f"built {len(sketches)} sketches (k={hierarchy.k}, 2 workers) "
          f"in {time.perf_counter() - t0:.2f}s")

    # 2. the batched engine ----------------------------------------------
    engine = QueryEngine(sketches, cache_size=0, num_shards=4)
    print(engine)

    # 3. one vectorized pass over 10k queries ----------------------------
    pairs = sample_query_pairs(g.n, 10_000, seed=7)
    estimates = engine.dist_many(pairs)  # warm-up
    t0 = time.perf_counter()
    estimates = engine.dist_many(pairs)
    dt = time.perf_counter() - t0
    t0 = time.perf_counter()
    single = [engine.reference_query(int(u), int(v)) for u, v in pairs]
    dt_single = time.perf_counter() - t0
    print(f"batch of {len(pairs)} queries in {dt * 1e3:.1f} ms "
          f"({len(pairs) / dt:,.0f} queries/s); single-query loop "
          f"{len(pairs) / dt_single:,.0f} queries/s -> "
          f"{dt_single / dt:.1f}x speedup")
    assert estimates.tolist() == single, "batched != single?!"
    print("batched answers identical to the single-query path")

    # 4. repeated traffic hits the LRU result cache ----------------------
    cached = QueryEngine(sketches, cache_size=50_000, num_shards=4)
    cached.dist_many(pairs)
    cached.dist_many(pairs)
    print(f"replay with cache: {cached.stats.hits} hits, "
          f"{cached.stats.misses} misses "
          f"({100 * cached.stats.hit_rate():.0f}% hit rate)")

    # 5. persist the pre-built index -------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "index.json")
        save_index(engine.index, path)
        reloaded = load_index(path)
    check = sample_query_pairs(g.n, 500, seed=9)
    assert np.array_equal(reloaded.estimate_many(check[:, 0], check[:, 1]),
                          engine.index.estimate_many(check[:, 0], check[:, 1]))
    print("index round-trip: reloaded store answers identically")

    # 6. worker processes behind the landmark shards ---------------------
    with QueryEngine(sketches, cache_size=0, num_shards=4, jobs=4) as fleet:
        fanned = fleet.dist_many(pairs)
    assert np.array_equal(fanned, estimates), "workers changed answers?!"
    print("4 shard workers: answers bit-identical to the in-process path")

    # 7. a slack scheme through its own index ----------------------------
    from repro import build_sketches

    s3 = build_sketches(g, scheme="stretch3", eps=0.25, seed=11)
    slack = QueryEngine(s3.sketches, cache_size=0)
    small = pairs[:1000]
    batched = slack.dist_many(small)
    assert batched.tolist() == [slack.reference_query(int(u), int(v))
                                for u, v in small]
    print(f"stretch3 via {type(slack.index).__name__}: "
          f"{len(small)} batched answers identical to the single path")


if __name__ == "__main__":
    main()
