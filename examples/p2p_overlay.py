#!/usr/bin/env python
"""P2P overlay scenario: pick the right sketch scheme for a peer network.

The paper's motivating application (Section 2.1): in a peer-to-peer
overlay, a node that knows another node's address wants its distance
*without* flooding the network.  This example builds a power-law overlay
(preferential attachment, like unstructured P2P graphs), constructs every
sketch scheme the paper offers, and prints the size / stretch / build-cost
tradeoff so an operator can choose.

It also demonstrates the online query (Section 2.1): shipping a sketch
between two peers costs ~D-hop rounds, while a fresh Bellman-Ford costs
Ω(S) rounds and floods every link.

Run:  python examples/p2p_overlay.py
"""

from repro import build_sketches
from repro.algorithms import single_source_distances
from repro.analysis import render_table
from repro.graphs import apsp, barabasi_albert, graph_stats
from repro.oracle import evaluate_stretch, simulate_online_exchange


def main() -> None:
    g = barabasi_albert(96, m_attach=2, seed=7)
    stats = graph_stats(g)
    print(f"overlay: n={stats.n} m={stats.m} D={stats.hop_diameter} "
          f"S={stats.shortest_path_diameter}\n")
    d = apsp(g)

    # ---- scheme shoot-out ------------------------------------------------
    rows = []
    schemes = [
        ("tz k=2", "tz", {"k": 2}),
        ("tz k=3", "tz", {"k": 3}),
        ("stretch3 eps=.2", "stretch3", {"eps": 0.2}),
        ("cdg eps=.2 k=2", "cdg", {"eps": 0.2, "k": 2}),
        ("graceful", "graceful", {}),
    ]
    for label, scheme, params in schemes:
        built = build_sketches(g, scheme=scheme, mode="distributed", seed=11,
                               **params)
        rep = evaluate_stretch(d, built.query, eps=built.slack())
        rows.append({
            "scheme": label,
            "size(words)": built.max_size_words(),
            "max-stretch": round(rep.max_stretch, 2),
            "mean-stretch": round(rep.mean_stretch, 3),
            "bound": built.stretch_bound(),
            "rounds": built.metrics.rounds,
            "messages": built.metrics.messages,
        })
    print(render_table(rows, title="scheme tradeoffs (slack-covered pairs)"))

    # ---- online query vs fresh computation -------------------------------
    built = build_sketches(g, scheme="tz", k=3, seed=11)
    words = built.max_size_words()
    u, v = 0, g.n - 1
    cost, metrics = simulate_online_exchange(g, u=u, v=v, sketch_words=words)
    _, _, bf = single_source_distances(g, u)
    print(f"\nonline query {u}<->{v}: sketch of {words} words over "
          f"{cost.hops} hops = {metrics.rounds} rounds, "
          f"{metrics.messages} messages")
    print(f"fresh Bellman-Ford from {u}:  {bf.rounds} rounds, "
          f"{bf.messages} messages (floods the whole overlay)")


if __name__ == "__main__":
    main()
