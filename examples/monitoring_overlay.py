#!/usr/bin/env python
"""Monitoring-overlay scenario: density nets as monitor placement.

Applications like AVMon (cited in the paper's Section 2.1) need a small
set of monitor nodes such that every node has a nearby monitor.  That is
exactly what an ε-density net provides (Definition 4.1): every node ``u``
has a monitor within ``R(u, ε)`` — the radius of its εn-nearest
neighborhood — and there are only ``O((1/ε) log n)`` monitors.

This example runs on a random geometric network (the latency-like setting
of network coordinate systems): it samples nets at several ε, verifies
both net properties exactly, shows the super-source protocol assigning
every node to its nearest monitor, and finishes with stretch-3 slack
sketches (Theorem 4.3) built from the monitors.

Run:  python examples/monitoring_overlay.py
"""

import numpy as np

from repro.analysis import render_table
from repro.graphs import apsp, graph_stats, random_geometric
from repro.oracle import evaluate_stretch
from repro.slack.density_net import (
    build_density_net_distributed,
    verify_density_net,
)
from repro.slack.stretch3 import build_stretch3_distributed


def main() -> None:
    g = random_geometric(150, seed=13)
    stats = graph_stats(g)
    print(f"geometric network: n={stats.n} m={stats.m} "
          f"D={stats.hop_diameter} S={stats.shortest_path_diameter}\n")
    d = apsp(g)

    # ---- monitor placement at several densities --------------------------
    rows = []
    for eps in (0.9, 0.6, 0.3):
        net, assignments, metrics = build_density_net_distributed(
            g, eps, seed=17)
        report = verify_density_net(d, net)
        mean_dist = float(np.mean([a[0] for a in assignments]))
        rows.append({
            "eps": eps,
            "monitors": net.size(),
            "bound": round(net.size_bound(), 1),
            "coverage-ok": report["coverage_ok"],
            "mean-dist-to-monitor": round(mean_dist, 1),
            "assign-rounds": metrics.rounds,
        })
    print(render_table(rows, title="density-net monitor placement"))

    # ---- distance estimation through the monitors (Theorem 4.3) ----------
    eps = 0.6
    sketches, net, metrics = build_stretch3_distributed(g, eps, seed=17)
    rep = evaluate_stretch(
        d, lambda u, v: sketches[u].estimate_to(sketches[v]), eps=eps)
    print(f"\nstretch-3 sketches from {net.size()} monitors "
          f"(eps={eps}): built in {metrics.rounds} rounds")
    print(f"on eps-far pairs: max stretch {rep.max_stretch:.2f} (bound 3), "
          f"mean {rep.mean_stretch:.3f}, underestimates {rep.underestimates}")


if __name__ == "__main__":
    main()
