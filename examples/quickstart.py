#!/usr/bin/env python
"""Quickstart: build distance sketches on a random network and query them.

This walks the library's main path end to end:

1. generate a weighted network,
2. build Thorup-Zwick sketches with the *distributed* CONGEST protocol
   (Theorem 1.1 of the paper), with full round/message accounting,
3. query pairwise distances from sketches alone,
4. compare against exact distances.

Run:  python examples/quickstart.py
"""

from repro import build_sketches
from repro.graphs import apsp, assign_uniform_weights, erdos_renyi, graph_stats
from repro.oracle import evaluate_stretch


def main() -> None:
    # 1. a connected weighted network ------------------------------------
    g = assign_uniform_weights(erdos_renyi(64, seed=1), low=1, high=10, seed=2)
    g.validate()
    stats = graph_stats(g)
    print(f"network: n={stats.n} m={stats.m} hop-diameter D={stats.hop_diameter} "
          f"shortest-path-diameter S={stats.shortest_path_diameter}")

    # 2. distributed Thorup-Zwick sketches (k=3 -> stretch <= 5) ---------
    built = build_sketches(g, scheme="tz", mode="distributed", k=3, seed=3)
    print(built.describe())
    print(f"construction cost: {built.metrics.rounds} rounds, "
          f"{built.metrics.messages} messages, {built.metrics.words} words")

    # 3. query a few pairs from sketches alone ---------------------------
    d = apsp(g)
    for u, v in [(0, 63), (5, 40), (17, 58)]:
        est = built.query(u, v)
        print(f"  d({u:2d},{v:2d}) = {d[u, v]:6.1f}   estimate = {est:6.1f}   "
              f"stretch = {est / d[u, v]:.2f}")

    # 4. full evaluation --------------------------------------------------
    report = evaluate_stretch(d, built.query)
    print(f"all-pairs: max stretch {report.max_stretch:.2f} "
          f"(bound {built.stretch_bound()}), mean {report.mean_stretch:.3f}, "
          f"{report.exact_fraction:.0%} answered exactly, "
          f"underestimates: {report.underestimates}")
    assert report.underestimates == 0
    assert report.max_stretch <= built.stretch_bound()
    print("OK: paper guarantees hold on this instance.")


if __name__ == "__main__":
    main()
