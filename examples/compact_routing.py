#!/usr/bin/env python
"""Compact routing: forward real packets using sketch-sized state.

The paper motivates distance sketches with "basic node to node
communication" (Section 1).  This example builds the compact routing
scheme derived from the same cluster structures as the sketches
(``repro.routing``): every node keeps a table of roughly sketch size,
addresses are O(k) words, packet headers are O(1) words, and delivered
routes are provably within ``4k-3`` of the shortest path.

Run:  python examples/compact_routing.py
"""


from repro.analysis import render_table
from repro.graphs import apsp, assign_uniform_weights, erdos_renyi, graph_stats
from repro.routing import build_routing_scheme, evaluate_routing, route_packet


def main() -> None:
    g = assign_uniform_weights(erdos_renyi(100, seed=29), seed=30)
    print(f"network: {graph_stats(g)}\n")
    d = apsp(g)

    rows = []
    for k in (1, 2, 3):
        scheme = build_routing_scheme(g, k=k, seed=k)
        rep = evaluate_routing(scheme, g, d)
        rows.append({
            "k": k,
            "max-table(words)": scheme.max_table_words(),
            "address(words)": scheme.max_address_words(),
            "max-stretch": round(rep["max_stretch"], 2),
            "mean-stretch": round(rep["mean_stretch"], 3),
            "bound(4k-3)": scheme.stretch_bound(),
        })
    print(render_table(rows, title="table size vs routed stretch"))

    # follow one packet hop by hop
    scheme = build_routing_scheme(g, k=2, seed=2)
    u, v = 3, 97
    res = route_packet(scheme, g, u, v)
    print(f"\npacket {u} -> {v}: pivot {res.via_pivot} (level {res.level})")
    print(f"  path  : {' -> '.join(map(str, res.path))}")
    print(f"  weight: {res.weight:.0f} vs shortest {d[u, v]:.0f} "
          f"(stretch {res.weight / d[u, v]:.2f})")


if __name__ == "__main__":
    main()
