#!/usr/bin/env python
"""Resilient distance computation under message loss and crashes.

The paper assumes reliable synchronous links and names "failure-prone
settings" as future work (Section 5).  This example uses the library's
fault-injection substrate to show:

1. plain Algorithm 1 (no retransmission) breaking visibly under loss,
2. the soft-state retransmitting Bellman-Ford staying exact up to 50%
   loss, at a measurable retransmission cost,
3. crash faults partitioning reachability (and the survivors converging).

Run:  python examples/resilient_distances.py
"""

import math


from repro.algorithms.bellman_ford import BellmanFordProgram
from repro.algorithms.reliable_bf import reliable_single_source_distances
from repro.analysis import render_table
from repro.congest.faults import FaultModel, FaultySimulator
from repro.graphs import apsp, erdos_renyi, assign_uniform_weights


def main() -> None:
    g = assign_uniform_weights(erdos_renyi(72, seed=31), seed=32)
    d = apsp(g)
    source = 0

    rows = []
    for loss in (0.0, 0.2, 0.4):
        # fragile protocol -------------------------------------------------
        fm = FaultModel(loss_rate=loss, seed=41)
        sim = FaultySimulator(g, lambda u: BellmanFordProgram(u, source),
                              seed=42, fault_model=fm)
        res = sim.run()
        plain = [p.result()[0] for p in res.programs]
        plain_bad = sum(1 for u, x in enumerate(plain)
                        if math.isinf(x) or abs(x - d[source, u]) > 1e-9)

        # soft-state repair ------------------------------------------------
        dists, fm2, metrics = reliable_single_source_distances(
            g, source, loss_rate=loss, seed=43, fault_seed=44, patience=25)
        rel_bad = sum(1 for u, x in enumerate(dists)
                      if abs(x - d[source, u]) > 1e-9)
        rows.append({
            "loss": loss,
            "plain-BF wrong": f"{plain_bad}/{g.n}",
            "reliable-BF wrong": f"{rel_bad}/{g.n}",
            "attempted-msgs": metrics.messages + fm2.dropped,
            "rounds": metrics.rounds,
        })
    print(render_table(rows, title="message loss: fragile vs soft-state BF"))

    # crash demo ---------------------------------------------------------
    from repro.graphs import path_graph

    gp = path_graph(8)
    dists, fm3, _ = reliable_single_source_distances(gp, 0, crashes={4: 0},
                                                     seed=45)
    reachable = [i for i, x in enumerate(dists) if not math.isinf(x)]
    print(f"\ncrash demo on a path 0-..-7, node 4 crashed at round 0:")
    print(f"  nodes with a distance: {reachable} "
          f"(the far side is correctly unreachable)")


if __name__ == "__main__":
    main()
