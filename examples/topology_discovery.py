#!/usr/bin/env python
"""Topology discovery scenario: when is S much bigger than D, and why care?

The paper's Section 2.1 argument: a fresh distance computation needs
Ω(S) rounds (S = shortest-path diameter), while an online sketch exchange
needs only ~D rounds times sketch size — and S can be as large as n while
D stays constant.  This example makes the gap concrete on the star-path
family, sweeping n and printing both costs, then shows the gracefully
degrading sketch (Theorem 4.8) delivering constant *average* stretch on
the same instances.

Run:  python examples/topology_discovery.py
"""

from repro import build_sketches
from repro.algorithms import single_source_distances
from repro.analysis import render_table
from repro.graphs import apsp, graph_stats, star_path
from repro.oracle import average_stretch, simulate_online_exchange


def main() -> None:
    rows = []
    for n_path in (16, 32, 64):
        g = star_path(n_path)
        stats = graph_stats(g)

        # cost of answering "how far is node 0 from node n_path-1?"
        built = build_sketches(g, scheme="tz", k=2, seed=19)
        words = built.max_size_words()
        cost, online = simulate_online_exchange(g, u=0, v=n_path - 1,
                                                sketch_words=words)
        _, _, fresh = single_source_distances(g, 0)

        rows.append({
            "n": stats.n,
            "D": stats.hop_diameter,
            "S": stats.shortest_path_diameter,
            "sketch(words)": words,
            "online-rounds": online.rounds,
            "fresh-BF-rounds": fresh.rounds,
        })
    print(render_table(rows, title="online query vs fresh computation "
                                   "(star-path: D=2, S=n-2)"))
    print("\nS grows linearly while the online cost tracks the sketch size —")
    print("the paper's case for precomputing distance sketches.\n")

    # average stretch on the largest instance
    g = star_path(64)
    d = apsp(g)
    built = build_sketches(g, scheme="graceful", seed=23)
    avg = average_stretch(d, built.query)
    print(f"gracefully degrading sketches on star-path(64): "
          f"average stretch {avg:.3f} (Corollary 4.9 predicts O(1)), "
          f"size {built.max_size_words()} words")


if __name__ == "__main__":
    main()
