"""Online sketch exchange (repro.oracle.online, Section 2.1 claim)."""

import pytest

from repro.errors import ConfigError
from repro.graphs import path_graph, ring, star_path
from repro.oracle.online import (
    hop_distance,
    online_query_cost,
    simulate_online_exchange,
)


class TestClosedForm:
    def test_single_chunk(self):
        c = online_query_cost(hops=5, sketch_words=4, bandwidth_words=6)
        assert c.chunks == 1
        assert c.rounds_pipelined == 5
        assert c.rounds_naive == 5

    def test_pipelining_beats_naive(self):
        c = online_query_cost(hops=10, sketch_words=60, bandwidth_words=6)
        assert c.chunks == 10
        assert c.rounds_pipelined == 19
        assert c.rounds_naive == 100

    def test_zero_hops(self):
        assert online_query_cost(0, 100).rounds_pipelined == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            online_query_cost(-1, 5)

    def test_row(self):
        row = online_query_cost(3, 12, 6).as_row()
        assert row["hops"] == 3 and row["rounds"] == 4


class TestSimulatedExchange:
    def test_simulation_matches_formula(self):
        g = path_graph(8)
        cost, metrics = simulate_online_exchange(g, u=7, v=0,
                                                 sketch_words=24,
                                                 bandwidth_words=6)
        assert metrics.rounds == cost.rounds_pipelined

    def test_all_chunks_arrive(self):
        g = ring(10)
        cost, metrics = simulate_online_exchange(g, u=5, v=0,
                                                 sketch_words=30,
                                                 bandwidth_words=5)
        assert cost.chunks == 6
        assert metrics.messages == cost.chunks * cost.hops

    def test_star_path_gap(self):
        # the Section 2.1 motivation: D=2 but S=n-1, so an online query
        # costs ~sketch-size rounds while a fresh BF costs ~n rounds
        from repro.algorithms import single_source_distances

        g = star_path(30)
        cost, metrics = simulate_online_exchange(g, u=0, v=29,
                                                 sketch_words=12)
        _, _, bf_metrics = single_source_distances(g, 0)
        assert metrics.rounds < bf_metrics.rounds

    def test_hop_distance_helper(self):
        g = star_path(30)
        assert hop_distance(g, 0, 29) == 2


class TestBandwidthValidation:
    def test_zero_bandwidth_rejected_everywhere(self):
        import pytest

        from repro.errors import ConfigError
        from repro.oracle import online_query_cost, online_query_cost_many

        with pytest.raises(ConfigError):
            online_query_cost(3, 30, bandwidth_words=0)
        with pytest.raises(ConfigError):
            online_query_cost_many([3], 30, bandwidth_words=0)
