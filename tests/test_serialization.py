"""Sketch serialization (repro.oracle.serialization)."""

import json

import pytest

from repro import build_sketches
from repro.errors import QueryError
from repro.oracle.serialization import (
    dumps,
    load_sketch_set,
    loads,
    save_sketch_set,
    sketch_from_dict,
    sketch_to_dict,
)


@pytest.fixture(scope="module")
def all_built(er_unit):
    return {
        "tz": build_sketches(er_unit, scheme="tz", k=3, seed=1),
        "stretch3": build_sketches(er_unit, scheme="stretch3", eps=0.3,
                                   seed=2),
        "cdg": build_sketches(er_unit, scheme="cdg", eps=0.3, k=2, seed=3),
        "graceful": build_sketches(er_unit, scheme="graceful", seed=4),
    }


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ["tz", "stretch3", "cdg", "graceful"])
    def test_dict_round_trip(self, all_built, scheme):
        original = all_built[scheme].sketches[5]
        restored = sketch_from_dict(sketch_to_dict(original))
        assert restored == original

    @pytest.mark.parametrize("scheme", ["tz", "stretch3", "cdg", "graceful"])
    def test_json_round_trip_preserves_queries(self, all_built, scheme):
        built = all_built[scheme]
        a = loads(dumps(built.sketches[3]))
        b = loads(dumps(built.sketches[20]))
        direct = built.query(3, 20)
        if scheme == "tz":
            from repro.tz.sketch import estimate_distance

            assert estimate_distance(a, b) == direct
        else:
            assert a.estimate_to(b) == direct

    def test_json_is_plain(self, all_built):
        text = dumps(all_built["cdg"].sketches[0])
        json.loads(text)  # parses as standard JSON

    def test_sketch_set_file_round_trip(self, tmp_path, all_built):
        built = all_built["tz"]
        path = tmp_path / "sketches.jsonl"
        save_sketch_set(built.sketches, path)
        restored = load_sketch_set(path)
        assert restored == built.sketches


class TestValidation:
    def test_unknown_type_tag(self):
        with pytest.raises(QueryError, match="unknown sketch type"):
            sketch_from_dict({"type": "wat", "v": 1})

    def test_version_mismatch(self):
        with pytest.raises(QueryError, match="version"):
            sketch_from_dict({"type": "tz", "v": 99})

    def test_non_dict(self):
        with pytest.raises(QueryError, match="not a serialized sketch"):
            sketch_from_dict("nope")

    def test_unserializable_object(self):
        with pytest.raises(QueryError, match="cannot serialize"):
            sketch_to_dict(object())

    def test_keys_become_ints_again(self, all_built):
        # JSON stringifies nothing here (arrays, not objects) — ensure
        # decoded bunch keys are ints, not strings
        s = loads(dumps(all_built["tz"].sketches[1]))
        assert all(isinstance(k, int) for k in s.bunch)


class TestIndexRoundTrip:
    """Golden round-trips for the pre-indexed batched-query store."""

    def _pairs(self, n):
        import numpy as np

        us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return us.ravel(), vs.ravel()

    def test_save_load_identical_batched_answers(self, tmp_path, all_built):
        import numpy as np

        from repro.oracle.serialization import load_index, save_index
        from repro.service import TZIndex

        idx = TZIndex(all_built["tz"].sketches, num_shards=3)
        path = tmp_path / "index.json"
        save_index(idx, path)
        back = load_index(path)
        assert back == idx
        us, vs = self._pairs(idx.n)
        assert np.array_equal(back.estimate_many(us, vs),
                              idx.estimate_many(us, vs))

    def test_dict_round_trip_is_canonical(self, all_built):
        from repro.oracle.serialization import index_from_dict, index_to_dict
        from repro.service import TZIndex

        sketches = all_built["tz"].sketches
        d1 = index_to_dict(TZIndex(sketches, num_shards=1))
        d5 = index_to_dict(TZIndex(sketches, num_shards=5))
        # the entry stream is canonical: only the shard count differs
        assert d1["entries"] == d5["entries"]
        assert d1["pivots"] == d5["pivots"]
        assert index_from_dict(d1) == index_from_dict(d5)

    def test_empty_bunch_sketches(self, tmp_path):
        import numpy as np

        from repro.oracle.serialization import load_index, save_index
        from repro.service import TZIndex
        from repro.tz.sketch import TZSketch

        # k=1-shaped labels with empty bunches: every query must fail the
        # level scan identically before and after a round trip
        sketches = [TZSketch(node=u, k=1, pivots=((u, 0.0),), bunch={})
                    for u in range(3)]
        idx = TZIndex(sketches)
        path = tmp_path / "empty.json"
        save_index(idx, path)
        back = load_index(path)
        assert back == idx and back.nnz() == 0
        # self-queries short-circuit to 0.0 without touching the tables
        assert np.array_equal(back.estimate_many(np.array([0, 1]),
                                                 np.array([0, 1])),
                              np.zeros(2))
        with pytest.raises(QueryError):
            back.estimate_many(np.array([0]), np.array([1]))

    def test_single_node_graph(self, tmp_path):
        import numpy as np

        from repro.graphs import Graph
        from repro.oracle.serialization import load_index, save_index
        from repro.service import TZIndex
        from repro.tz import build_tz_sketches_centralized

        sketches, _ = build_tz_sketches_centralized(Graph(1), k=1, seed=0)
        idx = TZIndex(sketches)
        path = tmp_path / "one.json"
        save_index(idx, path)
        back = load_index(path)
        assert back == idx
        assert back.estimate_many(np.array([0]), np.array([0])).tolist() == [0.0]

    def test_index_from_dict_rejects_wrong_type(self, all_built):
        from repro.oracle.serialization import index_from_dict, sketch_to_dict

        with pytest.raises(QueryError):
            index_from_dict(sketch_to_dict(all_built["tz"].sketches[0]))
        with pytest.raises(QueryError):
            index_from_dict({"type": "tz_index", "v": 999})

    def test_file_is_plain_json(self, tmp_path, all_built):
        from repro.oracle.serialization import save_index
        from repro.service import TZIndex

        path = tmp_path / "plain.json"
        save_index(TZIndex(all_built["tz"].sketches), path)
        data = json.loads(path.read_text(encoding="ascii"))
        assert data["type"] == "tz_index"
        assert all(isinstance(e, list) and len(e) == 4
                   for e in data["entries"])


class TestIndexDisconnected:
    def test_inf_pivots_round_trip_as_strict_json(self, tmp_path):
        import numpy as np

        from repro.graphs import Graph
        from repro.oracle.serialization import load_index, save_index
        from repro.service import TZIndex
        from repro.tz import build_tz_sketches_centralized

        # disconnected graph -> INF_KEY sentinel pivots (inf distances);
        # the file must still be RFC 8259 JSON (no Infinity token).
        # seed 1 is pinned because it actually samples all of A_1 inside
        # one component, forcing inf pivot distances in the other
        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        sketches, _ = build_tz_sketches_centralized(g, k=2, seed=1)
        idx = TZIndex(sketches)
        assert np.isinf(idx.pivot_dists).any()
        path = tmp_path / "disc.json"
        save_index(idx, path)
        text = path.read_text(encoding="ascii")
        assert "Infinity" not in text
        json.loads(text)  # strict parse succeeds
        back = load_index(path)
        assert back == idx
        assert np.array_equal(back.pivot_dists, idx.pivot_dists)
        assert np.isinf(back.pivot_dists).any()


class TestIndexCorruption:
    def test_out_of_range_entries_fail_loudly(self, all_built):
        from repro.oracle.serialization import index_from_dict, index_to_dict
        from repro.service import TZIndex

        base = index_to_dict(TZIndex(all_built["tz"].sketches))
        for bad_entry in ([base["n"], 0, 1.0, 0], [-1, 0, 1.0, 0],
                          [0, base["n"], 1.0, 0]):
            corrupt = dict(base, entries=base["entries"] + [bad_entry])
            with pytest.raises(QueryError):
                index_from_dict(corrupt)

    def test_out_of_range_pivot_fails_loudly(self, all_built):
        import copy

        from repro.oracle.serialization import index_from_dict, index_to_dict
        from repro.service import TZIndex

        base = index_to_dict(TZIndex(all_built["tz"].sketches))
        corrupt = copy.deepcopy(base)
        corrupt["pivots"][0][0][0] = base["n"] + 5
        with pytest.raises(QueryError):
            index_from_dict(corrupt)


class TestSlackIndexRoundTrip:
    """Round-trips for the stretch3/cdg/graceful serving stores."""

    def _pairs(self, n):
        import numpy as np

        us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return us.ravel(), vs.ravel()

    @pytest.mark.parametrize("scheme", ["stretch3", "cdg", "graceful"])
    def test_save_load_identical_batched_answers(self, tmp_path, all_built,
                                                 scheme):
        import numpy as np

        from repro.oracle.serialization import load_index, save_index
        from repro.service import build_index

        idx = build_index(all_built[scheme].sketches, num_shards=3)
        path = tmp_path / f"{scheme}.json"
        save_index(idx, path)
        back = load_index(path)
        assert back == idx
        assert type(back) is type(idx)
        us, vs = self._pairs(idx.n)
        assert np.array_equal(back.estimate_many(us, vs),
                              idx.estimate_many(us, vs))

    @pytest.mark.parametrize("scheme", ["stretch3", "cdg", "graceful"])
    def test_dict_round_trip_is_canonical(self, all_built, scheme):
        from repro.oracle.serialization import index_from_dict, index_to_dict
        from repro.service import build_index

        sketches = all_built[scheme].sketches
        d1 = index_to_dict(build_index(sketches, num_shards=1))
        d5 = index_to_dict(build_index(sketches, num_shards=5))
        # the payload is canonical: only the shard count differs
        assert {k: v for k, v in d1.items() if k != "num_shards"} == \
            {k: v for k, v in d5.items() if k != "num_shards"}
        assert index_from_dict(d1) == index_from_dict(d5)

    @pytest.mark.parametrize("scheme", ["stretch3", "cdg", "graceful"])
    def test_files_are_strict_json(self, tmp_path, all_built, scheme):
        from repro.oracle.serialization import save_index
        from repro.service import build_index

        path = tmp_path / f"{scheme}.json"
        save_index(build_index(all_built[scheme].sketches), path)
        text = path.read_text(encoding="ascii")
        assert "Infinity" not in text
        data = json.loads(text)  # strict parse succeeds
        assert data["type"] == f"{scheme}_index"

    def test_disconnected_stretch3_round_trip(self, tmp_path):
        import numpy as np

        from repro.graphs import Graph
        from repro.oracle.serialization import load_index, save_index
        from repro.service import Stretch3Index
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized

        # a net node per component: inf distances in the sketches must not
        # leak into the file (strict JSON) and the reloaded store must
        # raise exactly where the original does
        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        net = DensityNet(eps=0.5, n=g.n, members=(0, 2))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        idx = Stretch3Index(sketches, num_shards=2)
        path = tmp_path / "disc3.json"
        save_index(idx, path)
        assert "Infinity" not in path.read_text(encoding="ascii")
        back = load_index(path)
        assert back == idx
        ok = np.array([2, 3]), np.array([4, 2])
        assert np.array_equal(back.estimate_many(*ok),
                              idx.estimate_many(*ok))
        with pytest.raises(QueryError):
            back.estimate_many(np.array([0]), np.array([2]))

    def test_corrupt_cdg_gateway_fails_loudly(self, all_built):
        from repro.oracle.serialization import index_from_dict, index_to_dict
        from repro.service import build_index

        base = index_to_dict(build_index(all_built["cdg"].sketches))
        corrupt = dict(base, gateways=[[10**6, 1.0]] + base["gateways"][1:])
        with pytest.raises(QueryError, match="has no label"):
            index_from_dict(corrupt)

    def test_corrupt_stretch3_owner_fails_loudly(self, all_built):
        from repro.oracle.serialization import index_from_dict, index_to_dict
        from repro.service import build_index

        base = index_to_dict(build_index(all_built["stretch3"].sketches))
        corrupt = dict(base, entries=base["entries"] + [[base["n"], 0, 1.0]])
        with pytest.raises(QueryError, match="out of range"):
            index_from_dict(corrupt)

    def test_sketch_sets_with_inf_entries_are_strict_json(self):
        from repro.graphs import Graph
        from repro.oracle.serialization import dumps, loads
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized

        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        net = DensityNet(eps=0.5, n=g.n, members=(0, 2))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        text = dumps(sketches[0])  # has an inf entry toward node 2
        assert "Infinity" not in text
        json.loads(text)
        assert loads(text) == sketches[0]


class TestBinaryContainer:
    """The mmap-loadable binary index format (header + raw array blobs)."""

    @pytest.mark.parametrize("scheme", ["tz", "stretch3", "cdg", "graceful"])
    @pytest.mark.parametrize("backing", ["heap", "mmap"])
    def test_round_trip_equals_json_loaded(self, all_built, scheme, backing,
                                           tmp_path):
        import numpy as np

        from repro.oracle.serialization import (load_index,
                                                load_index_binary,
                                                save_index,
                                                save_index_binary)
        from repro.service import build_index, sample_query_pairs

        idx = build_index(all_built[scheme].sketches, num_shards=3)
        jpath, bpath = tmp_path / "i.json", tmp_path / "i.rpix"
        save_index(idx, jpath)
        save_index_binary(idx, bpath)
        from_json = load_index(jpath)
        from_bin = load_index_binary(bpath, backing=backing)
        assert from_bin == from_json == idx
        pairs = sample_query_pairs(idx.n, 200, seed=4)
        assert np.array_equal(
            from_bin.estimate_many(pairs[:, 0], pairs[:, 1]),
            idx.estimate_many(pairs[:, 0], pairs[:, 1]))

    def test_binary_reload_reserializes_to_canonical_json(self, all_built,
                                                          tmp_path):
        from repro.oracle.serialization import (load_index_binary,
                                                save_index,
                                                save_index_binary)
        from repro.service import build_index

        idx = build_index(all_built["cdg"].sketches, num_shards=2)
        save_index(idx, tmp_path / "a.json")
        save_index_binary(idx, tmp_path / "i.rpix")
        save_index(load_index_binary(tmp_path / "i.rpix"),
                   tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() == \
            (tmp_path / "b.json").read_bytes()

    def test_format_sniffing(self, all_built, tmp_path):
        from repro.oracle.serialization import (is_binary_index, save_index,
                                                save_index_binary)
        from repro.service import build_index

        idx = build_index(all_built["tz"].sketches)
        save_index(idx, tmp_path / "i.json")
        save_index_binary(idx, tmp_path / "i.rpix")
        assert is_binary_index(tmp_path / "i.rpix")
        assert not is_binary_index(tmp_path / "i.json")
        assert not is_binary_index(tmp_path / "missing.rpix")

    def test_bad_magic_and_version_fail_loudly(self, all_built, tmp_path):
        from repro.oracle.serialization import (load_index_binary,
                                                save_index_binary)
        from repro.service import build_index

        idx = build_index(all_built["tz"].sketches)
        path = tmp_path / "i.rpix"
        save_index_binary(idx, path)
        raw = bytearray(path.read_bytes())
        (tmp_path / "junk.rpix").write_bytes(b"NOPE" + raw[4:])
        with pytest.raises(QueryError, match="not a binary index"):
            load_index_binary(tmp_path / "junk.rpix")
        bad = bytearray(raw)
        bad[4] = 99  # container version
        (tmp_path / "vers.rpix").write_bytes(bytes(bad))
        with pytest.raises(QueryError, match="container version"):
            load_index_binary(tmp_path / "vers.rpix")
        (tmp_path / "trunc.rpix").write_bytes(bytes(raw[:-50]))
        for backing in ("heap", "mmap"):
            with pytest.raises(QueryError, match="truncated"):
                load_index_binary(tmp_path / "trunc.rpix", backing=backing)
        # cut inside the JSON header itself: still a clean QueryError
        (tmp_path / "head.rpix").write_bytes(bytes(raw[:20]))
        with pytest.raises(QueryError, match="header is corrupt"):
            load_index_binary(tmp_path / "head.rpix")
        with pytest.raises(QueryError, match="backing"):
            load_index_binary(path, backing="gpu")

    def test_mmap_load_shares_file_bytes(self, all_built, tmp_path):
        """The mmap load builds views over the file, not copies."""
        from repro.oracle.serialization import (load_index_binary,
                                                save_index_binary)
        from repro.service import build_index

        idx = build_index(all_built["tz"].sketches)
        path = tmp_path / "i.rpix"
        save_index_binary(idx, path)
        store = load_index_binary(path, backing="mmap")
        assert not store.pivot_ids.flags.owndata
        assert not store.pivot_ids.flags.writeable
