"""Sketch serialization (repro.oracle.serialization)."""

import json

import pytest

from repro import build_sketches
from repro.errors import QueryError
from repro.oracle.serialization import (
    dumps,
    load_sketch_set,
    loads,
    save_sketch_set,
    sketch_from_dict,
    sketch_to_dict,
)


@pytest.fixture(scope="module")
def all_built(er_unit):
    return {
        "tz": build_sketches(er_unit, scheme="tz", k=3, seed=1),
        "stretch3": build_sketches(er_unit, scheme="stretch3", eps=0.3,
                                   seed=2),
        "cdg": build_sketches(er_unit, scheme="cdg", eps=0.3, k=2, seed=3),
        "graceful": build_sketches(er_unit, scheme="graceful", seed=4),
    }


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", ["tz", "stretch3", "cdg", "graceful"])
    def test_dict_round_trip(self, all_built, scheme):
        original = all_built[scheme].sketches[5]
        restored = sketch_from_dict(sketch_to_dict(original))
        assert restored == original

    @pytest.mark.parametrize("scheme", ["tz", "stretch3", "cdg", "graceful"])
    def test_json_round_trip_preserves_queries(self, all_built, scheme):
        built = all_built[scheme]
        a = loads(dumps(built.sketches[3]))
        b = loads(dumps(built.sketches[20]))
        direct = built.query(3, 20)
        if scheme == "tz":
            from repro.tz.sketch import estimate_distance

            assert estimate_distance(a, b) == direct
        else:
            assert a.estimate_to(b) == direct

    def test_json_is_plain(self, all_built):
        text = dumps(all_built["cdg"].sketches[0])
        json.loads(text)  # parses as standard JSON

    def test_sketch_set_file_round_trip(self, tmp_path, all_built):
        built = all_built["tz"]
        path = tmp_path / "sketches.jsonl"
        save_sketch_set(built.sketches, path)
        restored = load_sketch_set(path)
        assert restored == built.sketches


class TestValidation:
    def test_unknown_type_tag(self):
        with pytest.raises(QueryError, match="unknown sketch type"):
            sketch_from_dict({"type": "wat", "v": 1})

    def test_version_mismatch(self):
        with pytest.raises(QueryError, match="version"):
            sketch_from_dict({"type": "tz", "v": 99})

    def test_non_dict(self):
        with pytest.raises(QueryError, match="not a serialized sketch"):
            sketch_from_dict("nope")

    def test_unserializable_object(self):
        with pytest.raises(QueryError, match="cannot serialize"):
            sketch_to_dict(object())

    def test_keys_become_ints_again(self, all_built):
        # JSON stringifies nothing here (arrays, not objects) — ensure
        # decoded bunch keys are ints, not strings
        s = loads(dumps(all_built["tz"].sketches[1]))
        assert all(isinstance(k, int) for k in s.bunch)
