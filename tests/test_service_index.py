"""Unit tests for the serving layer (repro.service): index, engine, bench."""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_sketches
from repro.errors import ConfigError, QueryError
from repro.graphs import ring
from repro.oracle.schemes import get_scheme
from repro.service import QueryEngine, TZIndex, run_serve_benchmark
from repro.tz import build_tz_sketches_centralized, estimate_distance
from repro.tz.sketch import TZSketch


@pytest.fixture(scope="module")
def tz_sketches(er_weighted):
    sketches, _ = build_tz_sketches_centralized(er_weighted, k=3, seed=11)
    return sketches


@pytest.fixture(scope="module")
def indexed(tz_sketches):
    return TZIndex(tz_sketches)


class TestTZIndex:
    def test_nnz_counts_all_bunch_entries(self, tz_sketches, indexed):
        assert indexed.nnz() == sum(len(s.bunch) for s in tz_sketches)

    def test_shard_sizes_partition_subtop_entries(self, tz_sketches):
        idx = TZIndex(tz_sketches, num_shards=4)
        top = int(np.isfinite(idx.top_dist).sum())
        assert sum(idx.shard_sizes()) + top == idx.nnz()

    def test_lookup_matches_bunch_dicts(self, tz_sketches, indexed):
        rng = np.random.default_rng(5)
        owners = rng.integers(0, indexed.n, size=200)
        landmarks = rng.integers(0, indexed.n, size=200)
        dist, level, found = indexed.lookup(owners, landmarks)
        for j, (u, w) in enumerate(zip(owners, landmarks)):
            entry = tz_sketches[int(u)].bunch.get(int(w))
            if entry is None:
                assert not found[j]
            else:
                assert found[j]
                assert dist[j] == entry[0] and level[j] == entry[1]

    def test_estimate_matches_reference(self, tz_sketches, indexed):
        for u, v in [(0, 1), (3, 30), (17, 17), (35, 2)]:
            assert indexed.estimate(u, v) == estimate_distance(
                tz_sketches[u], tz_sketches[v])

    def test_iter_entries_is_sorted_and_complete(self, tz_sketches):
        idx = TZIndex(tz_sketches, num_shards=3)
        entries = list(idx.iter_entries())
        keys = [u * idx.n + w for u, w, _, _ in entries]
        assert keys == sorted(keys)
        assert len(entries) == idx.nnz()

    def test_rejects_empty_and_mixed_k(self, tz_sketches):
        with pytest.raises(ConfigError):
            TZIndex([])
        other, _ = build_tz_sketches_centralized(ring(36), k=2, seed=1)
        with pytest.raises(ConfigError):
            TZIndex([tz_sketches[0], other[1]])
        with pytest.raises(ConfigError):
            TZIndex(tz_sketches, num_shards=0)

    def test_rejects_out_of_range_nodes(self, indexed):
        with pytest.raises(QueryError):
            indexed.estimate_many(np.array([0]), np.array([indexed.n]))
        with pytest.raises(QueryError):
            indexed.estimate_many(np.array([-1]), np.array([0]))

    def test_empty_batch(self, indexed):
        out = indexed.estimate_many(np.empty(0, dtype=np.int64),
                                    np.empty(0, dtype=np.int64))
        assert out.size == 0

    def test_mixed_level_landmarks_fall_back_to_sharded(self):
        # hand-crafted pathological set: landmark 1 appears at level 1 in
        # one bunch and level 0 in another — the dense top split would be
        # unsound, so the index must store everything sharded and still
        # answer exactly like the reference scan
        sketches = [
            TZSketch(node=0, k=2, pivots=((0, 0.0), (1, 2.0)),
                     bunch={1: (2.0, 1)}),
            TZSketch(node=1, k=2, pivots=((1, 0.0), (1, 0.0)),
                     bunch={1: (0.0, 1), 0: (2.0, 0)}),
            TZSketch(node=2, k=2, pivots=((2, 0.0), (1, 5.0)),
                     bunch={1: (5.0, 0)}),
        ]
        idx = TZIndex(sketches)
        assert not idx.dense_top
        for u in range(3):
            for v in range(3):
                try:
                    want = estimate_distance(sketches[u], sketches[v])
                except QueryError:
                    with pytest.raises(QueryError):
                        idx.estimate_many(np.array([u]), np.array([v]))
                    continue
                assert idx.estimate(u, v) == want


class TestQueryEngine:
    def test_dist_and_dist_many_agree(self, tz_sketches):
        engine = QueryEngine(tz_sketches)
        pairs = [(0, 4), (4, 0), (7, 7), (1, 30)]
        batch = engine.dist_many(pairs)
        assert [engine.dist(u, v) for u, v in pairs] == batch.tolist()

    def test_cache_hits_and_evictions(self, tz_sketches):
        engine = QueryEngine(tz_sketches, cache_size=2)
        engine.dist(0, 1)
        engine.dist(0, 1)
        assert engine.stats.hits == 1 and engine.stats.misses == 1
        engine.dist(0, 2)
        engine.dist(0, 3)  # evicts (0, 1)
        assert engine.stats.evictions == 1
        engine.dist(0, 1)
        assert engine.stats.misses == 4

    def test_cache_disabled(self, tz_sketches):
        engine = QueryEngine(tz_sketches, cache_size=0)
        engine.dist(0, 1)
        engine.dist(0, 1)
        assert engine.stats.hits == 0 and engine.stats.misses == 0

    def test_ordered_pair_caching(self, tz_sketches):
        # (u, v) and (v, u) are distinct cache keys: the level scan is not
        # symmetric, and the contract is bit-identity with the single path
        engine = QueryEngine(tz_sketches, cache_size=64)
        a = engine.dist(3, 30)
        b = engine.dist(30, 3)
        assert a == engine.reference_query(3, 30)
        assert b == engine.reference_query(30, 3)

    def test_slack_schemes_get_their_own_index(self, er_unit):
        from repro.service import Stretch3Index

        built = build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=2)
        engine = QueryEngine(built.sketches, cache_size=8)
        assert isinstance(engine.index, Stretch3Index)
        pairs = [(0, 5), (5, 0), (2, 2)]
        assert engine.dist_many(pairs).tolist() == [
            built.query(u, v) for u, v in pairs]

    def test_generic_loop_still_available(self, er_unit):
        built = build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=2)
        engine = QueryEngine(built.sketches, cache_size=8, use_index=False)
        assert engine.index is None
        pairs = [(0, 5), (5, 0), (2, 2)]
        assert engine.dist_many(pairs).tolist() == [
            built.query(u, v) for u, v in pairs]

    def test_rejects_bad_pairs_shape(self, tz_sketches):
        engine = QueryEngine(tz_sketches)
        with pytest.raises(ConfigError):
            engine.dist_many(np.arange(6))

    def test_clear_cache(self, tz_sketches):
        engine = QueryEngine(tz_sketches, cache_size=8)
        engine.dist(0, 1)
        engine.clear_cache()
        assert engine.stats.misses == 0
        engine.dist(0, 1)
        assert engine.stats.misses == 1


class TestBuiltSketchesIntegration:
    def test_query_many_matches_query(self, er_weighted):
        built = build_sketches(er_weighted, scheme="tz", k=2, seed=5)
        pairs = [(0, 9), (9, 0), (4, 4), (1, 35)]
        assert built.query_many(pairs).tolist() == [
            built.query(u, v) for u, v in pairs]

    def test_engine_is_cached(self, er_weighted):
        built = build_sketches(er_weighted, scheme="tz", k=2, seed=5)
        assert built.engine() is built.engine()

    def test_every_scheme_supports_batch(self):
        from repro.oracle.schemes import SCHEMES

        for name in SCHEMES:
            assert get_scheme(name).supports_batch, name


class TestServeBenchmark:
    def test_report_is_consistent(self, tz_sketches):
        rep = run_serve_benchmark(tz_sketches, queries=200, batch=50,
                                  repeats=1, seed=3)
        assert rep["identical"]
        assert rep["queries"] == 200 and rep["batch"] == 50
        assert rep["single_qps"] > 0 and rep["batched_qps"] > 0

    def test_rejects_bad_params(self, tz_sketches):
        with pytest.raises(ConfigError):
            run_serve_benchmark(tz_sketches, queries=0)
        with pytest.raises(ConfigError):
            run_serve_benchmark(tz_sketches, queries=10, batch=0)


class TestOnlineCostMany:
    def test_matches_scalar_closed_form(self):
        from repro.oracle import online_query_cost, online_query_cost_many

        hops = [0, 1, 3, 7]
        out = online_query_cost_many(hops, 30, bandwidth_words=6)
        for j, h in enumerate(hops):
            ref = online_query_cost(h, 30, bandwidth_words=6)
            assert out["chunks"][j] == ref.chunks
            assert out["rounds"][j] == ref.rounds_pipelined
            assert out["rounds_naive"][j] == ref.rounds_naive

    def test_broadcasts_and_validates(self):
        from repro.errors import ConfigError as CE
        from repro.oracle import online_query_cost_many

        out = online_query_cost_many([2, 4], [12, 24], bandwidth_words=6)
        assert out["rounds"].tolist() == [3, 7]
        with pytest.raises(CE):
            online_query_cost_many([-1], 3)


class TestDisconnectedGraphs:
    """The INF_KEY pivot sentinel (-1, inf) on disconnected graphs must not
    alias into the landmark tables (regression for a false top-level hit)."""

    def _disconnected(self):
        from repro.graphs import Graph

        # components {0, 1} and {2, 3, 4}; node 4 can be a top landmark
        return Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0),
                         (2, 4, 2.0)])

    def test_cross_component_raises_like_reference(self):
        g = self._disconnected()
        for seed in range(8):
            sketches, _ = build_tz_sketches_centralized(g, k=2, seed=seed)
            idx = TZIndex(sketches)
            for u in range(g.n):
                for v in range(g.n):
                    try:
                        want = estimate_distance(sketches[u], sketches[v])
                    except QueryError:
                        with pytest.raises(QueryError):
                            idx.estimate_many(np.array([u]), np.array([v]))
                        continue
                    assert idx.estimate(u, v) == want

    def test_lookup_rejects_sentinel_landmark(self):
        sketches, _ = build_tz_sketches_centralized(self._disconnected(),
                                                    k=2, seed=1)
        idx = TZIndex(sketches)
        _, _, found = idx.lookup(np.array([0, 2]), np.array([-1, -1]))
        assert not found.any()


class TestEngineConfig:
    def test_built_sketches_engine_rebuilds_on_new_config(self, er_unit):
        built = build_sketches(er_unit, scheme="tz", k=2, seed=5)
        default = built.engine()
        assert built.engine() is default
        cold = built.engine(cache_size=0, num_shards=4)
        assert cold is not default
        assert cold.cache_size == 0 and cold.index.num_shards == 4
        assert built.engine(cache_size=0, num_shards=4) is cold

    def test_use_index_flag(self, er_unit):
        tz = build_sketches(er_unit, scheme="tz", k=2, seed=5).sketches
        s3 = build_sketches(er_unit, scheme="stretch3", eps=0.3,
                            seed=2).sketches
        assert QueryEngine(tz, use_index=False).index is None
        assert QueryEngine(tz, use_index=True).index is not None
        assert QueryEngine(s3, use_index=True).index is not None
        # a mixed set has no index class and must refuse use_index=True
        with pytest.raises(ConfigError):
            QueryEngine([tz[0], s3[1]], use_index=True)
        assert QueryEngine([tz[0], s3[1]]).index is None  # generic loop


class TestLookupValidation:
    def test_lookup_rejects_out_of_range_owner(self, indexed):
        with pytest.raises(QueryError):
            indexed.lookup(np.array([-1]), np.array([0]))
        with pytest.raises(QueryError):
            indexed.lookup(np.array([indexed.n]), np.array([0]))

    def test_lookup_treats_out_of_range_landmark_as_absent(self, indexed):
        _, _, found = indexed.lookup(np.array([0, 0]),
                                     np.array([-1, indexed.n]))
        assert not found.any()


class TestGenericPathParity:
    """Regressions for the generic (non-indexed) query path."""

    def test_use_index_false_works_on_tz_sets(self, tz_sketches):
        forced = QueryEngine(tz_sketches, use_index=False, cache_size=0)
        auto = QueryEngine(tz_sketches, cache_size=0)
        pairs = [(0, 4), (4, 0), (7, 7), (1, 30)]
        assert forced.dist_many(pairs).tolist() == \
            auto.dist_many(pairs).tolist()

    def test_generic_path_rejects_out_of_range_ids(self, er_unit):
        built = build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=2)
        engine = QueryEngine(built.sketches, cache_size=0)
        with pytest.raises(QueryError):
            engine.dist(-1, 5)
        with pytest.raises(QueryError):
            engine.dist(0, engine.n)


class TestSlackIndexes:
    """Unit tests for the stretch3/cdg/graceful stores (the scheme-specific
    batched==single property suites live in test_service_properties.py)."""

    @pytest.fixture(scope="class")
    def s3_built(self, er_unit):
        return build_sketches(er_unit, scheme="stretch3", eps=0.3, seed=2)

    @pytest.fixture(scope="class")
    def cdg_built(self, er_unit):
        return build_sketches(er_unit, scheme="cdg", eps=0.3, k=2, seed=3)

    @pytest.fixture(scope="class")
    def graceful_built(self, er_unit):
        return build_sketches(er_unit, scheme="graceful", seed=4)

    def _assert_matches_single(self, index, sketches):
        n = len(sketches)
        us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        us, vs = us.ravel(), vs.ravel()
        batched = index.estimate_many(us, vs)
        single = [sketches[u].estimate_to(sketches[v])
                  for u, v in zip(us, vs)]
        assert batched.tolist() == single  # exact, not approx

    def test_stretch3_matches_single(self, s3_built):
        from repro.service import Stretch3Index

        self._assert_matches_single(Stretch3Index(s3_built.sketches),
                                    s3_built.sketches)

    def test_cdg_matches_single(self, cdg_built):
        from repro.service import CDGIndex

        self._assert_matches_single(CDGIndex(cdg_built.sketches),
                                    cdg_built.sketches)

    def test_graceful_matches_single(self, graceful_built):
        from repro.service import GracefulIndex

        self._assert_matches_single(GracefulIndex(graceful_built.sketches),
                                    graceful_built.sketches)

    @pytest.mark.parametrize("shards", [2, 5])
    def test_shard_count_never_changes_answers(self, s3_built, cdg_built,
                                               graceful_built, shards):
        from repro.service import build_index

        for built in (s3_built, cdg_built, graceful_built):
            n = len(built.sketches)
            us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
            us, vs = us.ravel(), vs.ravel()
            base = build_index(built.sketches, num_shards=1)
            sharded = build_index(built.sketches, num_shards=shards)
            assert np.array_equal(base.estimate_many(us, vs),
                                  sharded.estimate_many(us, vs))
            assert sharded.nnz() == base.nnz()

    def test_shard_sizes_partition_entries(self, s3_built, graceful_built):
        from repro.service import build_index

        for built in (s3_built, graceful_built):
            idx = build_index(built.sketches, num_shards=4)
            assert len(idx.shard_sizes()) == 4
            assert all(s >= 0 for s in idx.shard_sizes())

    def test_engine_auto_detects_every_scheme(self, s3_built, cdg_built,
                                              graceful_built):
        from repro.service import CDGIndex, GracefulIndex, Stretch3Index

        for built, cls in ((s3_built, Stretch3Index), (cdg_built, CDGIndex),
                           (graceful_built, GracefulIndex)):
            assert isinstance(QueryEngine(built.sketches).index, cls)

    def test_query_many_matches_query_all_schemes(self, s3_built, cdg_built,
                                                  graceful_built):
        pairs = [(0, 9), (9, 0), (4, 4), (1, 35)]
        for built in (s3_built, cdg_built, graceful_built):
            assert built.query_many(pairs).tolist() == [
                built.query(u, v) for u, v in pairs]

    def test_validation_errors(self, s3_built, cdg_built, graceful_built):
        from repro.service import (CDGIndex, GracefulIndex, Stretch3Index,
                                   build_index)

        for cls in (Stretch3Index, CDGIndex, GracefulIndex):
            with pytest.raises(ConfigError):
                cls([])
        with pytest.raises(ConfigError):
            Stretch3Index(s3_built.sketches, num_shards=0)
        with pytest.raises(ConfigError):
            Stretch3Index(cdg_built.sketches)  # wrong sketch type
        with pytest.raises(ConfigError):
            CDGIndex(graceful_built.sketches)
        with pytest.raises(ConfigError):
            GracefulIndex(s3_built.sketches)
        with pytest.raises(ConfigError):
            build_index([s3_built.sketches[0], cdg_built.sketches[1]])

    def test_out_of_range_ids_raise(self, s3_built, cdg_built,
                                    graceful_built):
        from repro.service import build_index

        for built in (s3_built, cdg_built, graceful_built):
            idx = build_index(built.sketches)
            with pytest.raises(QueryError):
                idx.estimate_many(np.array([0]), np.array([idx.n]))
            with pytest.raises(QueryError):
                idx.estimate_many(np.array([-1]), np.array([0]))

    def test_empty_batch_all_schemes(self, s3_built, cdg_built,
                                     graceful_built):
        from repro.service import build_index

        empty = np.empty(0, dtype=np.int64)
        for built in (s3_built, cdg_built, graceful_built):
            assert build_index(built.sketches).estimate_many(empty,
                                                             empty).size == 0

    def test_scheme_name_of(self, s3_built, cdg_built, graceful_built,
                            tz_sketches):
        from repro.service import scheme_name_of

        assert scheme_name_of(tz_sketches) == "tz"
        assert scheme_name_of(s3_built.sketches) == "stretch3"
        assert scheme_name_of(cdg_built.sketches) == "cdg"
        assert scheme_name_of(graceful_built.sketches) == "graceful"
        assert scheme_name_of([]) is None
        assert scheme_name_of([object()]) is None
        assert scheme_name_of([tz_sketches[0], s3_built.sketches[0]]) is None
