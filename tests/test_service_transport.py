"""The session-oriented serving API (repro.service.transport).

Four claim families:

* **endpoint grammar** — ``parse_endpoint`` accepts exactly the
  documented ``inproc://`` / ``proc://jobs=4;memory=shared`` /
  ``tcp://host:port`` forms and fails loudly on everything else;
* **transport equivalence** — for every scheme, ``dist_many`` through
  ``inproc``, ``proc``, and tcp-loopback sessions is bit-identical to
  the single-pair reference loop, including :class:`QueryError` parity
  on disconnected graphs, and post-``apply_updates`` epochs answer
  bit-identically to an inline twin applying the same changes;
* **the ISSUE 5 acceptance path** — ``connect("tcp://…")`` against a
  live ``python -m repro serve`` *process* returns bit-identical
  ``dist_many`` answers to ``connect("inproc://…")`` for all four
  schemes, and an ``apply_updates`` hot swap propagates to a connected
  TCP client without a reconnect;
* **wire codec** — the array-tree byte codec round-trips every message
  shape, and frame-level deprecation/ownership rules hold.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro import build_sketches
from repro.errors import ConfigError, QueryError
from repro.graphs import Graph, assign_uniform_weights, erdos_renyi
from repro.service import (OracleServer, QueryEngine, UpdateableIndex,
                           connect, parse_endpoint, sample_query_pairs,
                           sample_weight_changes)
from repro.service.buffers import tree_from_bytes, tree_to_bytes

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: scheme -> build params for the equivalence suites
SCHEME_PARAMS = {
    "tz": {"k": 2},
    "stretch3": {"eps": 0.4},
    "cdg": {"eps": 0.4, "k": 2},
    "graceful": {},
}

#: the four topologies every scheme must serve identically — in-process,
#: the GIL-releasing thread plane, the process pool, and tcp-loopback
TRANSPORT_SPECS = ("inproc://", "proc://jobs=2;pool=thread",
                   "proc://jobs=2;memory=shared", "tcp")


@pytest.fixture(autouse=True)
def no_leaked_shard_threads():
    """Every test in this module must tear its sessions down without
    leaking a shard-executor thread."""
    yield
    import threading

    from repro.service.workers import THREAD_POOL_PREFIX

    leaked = [t.name for t in threading.enumerate()
              if t.name.startswith(THREAD_POOL_PREFIX)]
    assert leaked == []


@pytest.fixture(scope="module")
def graph() -> Graph:
    return assign_uniform_weights(erdos_renyi(24, seed=11), seed=12)


@pytest.fixture(scope="module")
def builds(graph):
    return {name: build_sketches(graph, scheme=name, seed=7, **params)
            for name, params in SCHEME_PARAMS.items()}


@contextmanager
def session(spec: str, source):
    """One OracleClient per topology: local specs connect directly;
    ``"tcp"`` hosts the source on a loopback OracleServer first."""
    if spec != "tcp":
        client = connect(spec, source, cache_size=0)
        try:
            yield client
        finally:
            client.close()
        return
    with OracleServer(source, jobs=1, cache_size=0) as server:
        host, port = server.serve("127.0.0.1:0", block=False)
        client = connect(f"tcp://{host}:{port}")
        try:
            yield client
        finally:
            client.close()


# ----------------------------------------------------------------------
# endpoint grammar
# ----------------------------------------------------------------------
class TestEndpointGrammar:
    def test_inproc_defaults(self):
        ep = parse_endpoint("inproc://")
        assert ep.transport == "inproc" and ep.options == {}

    def test_proc_options(self):
        ep = parse_endpoint("proc://jobs=4;memory=shared;shards=8;cache=0")
        assert ep.transport == "proc"
        assert ep.options == {"jobs": 4, "memory": "shared", "shards": 8,
                              "cache": 0}

    def test_proc_pool_option(self):
        ep = parse_endpoint("proc://jobs=2;pool=thread")
        assert ep.options == {"jobs": 2, "pool": "thread"}
        assert parse_endpoint("proc://pool=proc").options == {"pool": "proc"}

    def test_tcp_host_port(self):
        ep = parse_endpoint("tcp://serving-box:7111")
        assert (ep.transport, ep.host, ep.port) == ("tcp", "serving-box",
                                                    7111)
        assert ep.describe() == "tcp://serving-box:7111"

    @pytest.mark.parametrize("bad", [
        "inproc",                      # no ://
        "udp://x:1",                   # unknown transport
        "tcp://noport",                # missing port
        "tcp://host:notaport",         # non-numeric port
        "tcp://host:70000",            # port out of range
        "proc://jobs",                 # option without value
        "proc://jobs=abc",             # non-integer int option
        "proc://bogus=1",              # unknown option
        "inproc://jobs=2",             # jobs is proc-only
        "proc://pool=fiber",           # unknown pool mode
        "inproc://pool=thread",        # pool is proc-only
    ])
    def test_bad_specs_fail_loudly(self, bad):
        with pytest.raises(ConfigError):
            parse_endpoint(bad)

    def test_connect_requires_source_locally(self, builds):
        with pytest.raises(ConfigError, match="needs source="):
            connect("inproc://")
        with pytest.raises(ConfigError, match="server owns the index"):
            connect("tcp://127.0.0.1:1", builds["tz"])

    def test_connect_rejects_zero_jobs(self, builds):
        # jobs=0 must fail at connect time, not silently become the
        # CPU-count default
        with pytest.raises(ConfigError, match="jobs must be >= 1"):
            connect("proc://jobs=0", builds["tz"])


# ----------------------------------------------------------------------
# transport equivalence (the property suite)
# ----------------------------------------------------------------------
class TestTransportEquivalence:
    @pytest.mark.parametrize("scheme", sorted(SCHEME_PARAMS))
    def test_dist_many_bit_identical_everywhere(self, graph, builds,
                                                scheme):
        built = builds[scheme]
        pairs = sample_query_pairs(graph.n, 300, seed=5)
        ref = np.asarray([built.query(int(u), int(v)) for u, v in pairs])
        for spec in TRANSPORT_SPECS:
            with session(spec, built) as client:
                assert client.n == graph.n and client.scheme == scheme
                got = client.dist_many(pairs)
                assert got.tolist() == ref.tolist(), spec  # exact floats
                # the stream path produces the same bytes, in order
                streamed = np.concatenate(list(client.dist_stream(
                    [pairs[:100], pairs[100:150], pairs[150:]])))
                assert streamed.tolist() == ref.tolist(), spec

    @pytest.mark.parametrize("scheme", sorted(SCHEME_PARAMS))
    def test_apply_updates_epochs_bit_identical(self, graph, scheme):
        params = SCHEME_PARAMS[scheme]
        changes = sample_weight_changes(graph, 3, seed=77, low=0.2,
                                        high=0.6)
        # the heap/jobs=1 reference: an inline twin applying the same
        # batch (UpdateableIndex is deterministic in (graph, seed))
        twin = UpdateableIndex(graph, scheme=scheme, seed=9, **params)
        twin_report = twin.apply(changes)
        pairs = sample_query_pairs(graph.n, 200, seed=6)
        want = twin.index.estimate_many(pairs[:, 0], pairs[:, 1])
        for spec in TRANSPORT_SPECS:
            upd = UpdateableIndex(graph, scheme=scheme, seed=9, **params)
            with session(spec, upd) as client:
                report = client.apply_updates(changes)
                assert report.mode == twin_report.mode, spec
                assert report.epoch == twin_report.epoch, spec
                assert client.epoch == twin_report.epoch, spec
                got = client.dist_many(pairs)
                assert got.tolist() == want.tolist(), spec

    def test_query_error_parity_on_disconnected(self):
        from repro.slack.density_net import DensityNet
        from repro.slack.stretch3 import build_stretch3_centralized

        # components {0, 1} and {2, 3, 4}; net only in the big one, so
        # any pair touching {0, 1} raises — on every transport, with
        # the single-pair path's own message
        g = Graph(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 2.0)])
        net = DensityNet(eps=0.5, n=g.n, members=(2,))
        sketches, _ = build_stretch3_centralized(g, 0.5, net=net)
        ok = np.array([[2, 3], [3, 4], [2, 4]])
        want = [sketches[u].estimate_to(sketches[v]) for u, v in ok]
        for spec in TRANSPORT_SPECS:
            with session(spec, sketches) as client:
                assert client.dist_many(ok).tolist() == want, spec
                with pytest.raises(QueryError, match="share no net node"):
                    client.dist_many(np.array([[0, 2]]))
                # the session survives the error and keeps answering
                assert client.dist_many(ok).tolist() == want, spec

    def test_stats_report_the_execution_plane(self, builds):
        with session("proc://jobs=2;pool=thread", builds["tz"]) as client:
            stats = client.stats()
            assert stats["pool"] == "thread"
            assert stats["memory"] == "heap"  # thread default: nothing moves
        with session("proc://jobs=2;memory=shared", builds["tz"]) as client:
            assert client.stats()["pool"] == "proc"

    def test_static_session_rejects_updates(self, builds):
        from repro.service import EdgeChange

        for spec in TRANSPORT_SPECS:
            with session(spec, builds["tz"]) as client:
                with pytest.raises(ConfigError, match="from_updateable"):
                    client.apply_updates([EdgeChange("set", 0, 1, 2.0)])


# ----------------------------------------------------------------------
# the TCP frame protocol details
# ----------------------------------------------------------------------
class TestTcpProtocol:
    def test_epoch_bump_pushes_to_other_clients(self, graph):
        upd = UpdateableIndex(graph, scheme="tz", seed=9, k=2)
        with OracleServer(upd, jobs=1, cache_size=0) as server:
            host, port = server.serve("127.0.0.1:0", block=False)
            with connect(f"tcp://{host}:{port}") as writer, \
                    connect(f"tcp://{host}:{port}") as watcher:
                pairs = sample_query_pairs(graph.n, 100, seed=4)
                before = watcher.dist_many(pairs)
                changes = sample_weight_changes(graph, 3, seed=55,
                                                low=0.2, high=0.6)
                report = writer.apply_updates(changes)
                assert report.epoch == 1
                # no reconnect: the same watcher session serves the new
                # epoch and learns the bump from the pushed frame
                after = watcher.dist_many(pairs)
                want = upd.index.estimate_many(pairs[:, 0], pairs[:, 1])
                assert after.tolist() == want.tolist()
                assert watcher.epoch == 1
                assert before.tolist() != after.tolist()

    def test_fetch_index_is_the_binary_container(self, builds, tmp_path):
        built = builds["tz"]
        with session("tcp", built) as client:
            path = tmp_path / "fetched.rpix"
            store = client.fetch_index(str(path))
            # byte-identical to what save_index_binary writes locally
            from repro.oracle.serialization import index_binary_bytes
            from repro.service import build_index

            local = build_index(built.sketches, num_shards=1)
            assert path.read_bytes() == index_binary_bytes(local)
            pairs = sample_query_pairs(client.n, 100, seed=8)
            assert np.array_equal(
                store.estimate_many(pairs[:, 0], pairs[:, 1]),
                local.estimate_many(pairs[:, 0], pairs[:, 1]))
            del store  # release the mapping before tmp_path vanishes

    def test_stats_and_hello_describe_the_server(self, builds):
        with session("tcp", builds["cdg"]) as client:
            stats = client.stats()
            assert stats["transport"] == "tcp"
            assert stats["scheme"] == "cdg" and stats["n"] == client.n
            assert stats["connections"] >= 1
            assert "phases" in stats and "cache" in stats

    def test_connect_refused_fails_cleanly(self):
        # a port nothing listens on (bound but not accepting: closed)
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        with pytest.raises(ConfigError, match="cannot connect"):
            connect(f"tcp://127.0.0.1:{port}", timeout=2.0)

    def test_serve_rejects_bad_listen_address(self, builds):
        with OracleServer(builds["tz"].sketches) as server:
            for bad in ("127.0.0.1:99999", "127.0.0.1:-1", "noport"):
                with pytest.raises(ConfigError, match="listen address"):
                    server.serve(bad, block=False)

    def test_server_rejects_conflicting_shard_count(self, builds):
        from repro.service import build_index

        index = build_index(builds["tz"].sketches, num_shards=3)
        with pytest.raises(ConfigError, match="bakes its shard layout"):
            OracleServer(index, num_shards=5)


# ----------------------------------------------------------------------
# the wire codec
# ----------------------------------------------------------------------
class TestTreeWireCodec:
    @pytest.mark.parametrize("tree", [
        np.arange(6, dtype=np.int64).reshape(3, 2),
        (np.arange(4.0), np.array([], dtype=np.int32)),
        ((np.array([1.5]), np.arange(3)), (np.zeros((2, 2)),)),
        np.empty(0, dtype=np.float64),
    ], ids=["array", "pair", "nested", "empty"])
    def test_round_trip(self, tree):
        def flat(node):
            if isinstance(node, tuple):
                return [leaf for child in node for leaf in flat(child)]
            return [node]

        back = tree_from_bytes(tree_to_bytes(tree))
        for a, b in zip(flat(tree), flat(back)):
            assert a.dtype == b.dtype and a.shape == b.shape
            assert np.array_equal(a, b)
            assert not b.flags.writeable  # views over the wire buffer

    def test_truncated_message_fails_loudly(self):
        blob = tree_to_bytes(np.arange(10))
        with pytest.raises(ConfigError):
            tree_from_bytes(blob[:3])


# ----------------------------------------------------------------------
# deprecation hygiene
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_query_engine_paths_warn_once_each(self, builds):
        sketches = builds["tz"].sketches
        with pytest.warns(DeprecationWarning, match="connect") as rec:
            QueryEngine(sketches, cache_size=0).close()
        assert len(rec) == 1
        with pytest.warns(DeprecationWarning, match="connect") as rec:
            engine = QueryEngine.from_updateable(_updateable_for(builds),
                                                 cache_size=0)
            engine.close()
        assert len(rec) == 1  # from_updateable does not re-warn via from_index

    def test_built_sketches_engine_warns(self, builds):
        with pytest.warns(DeprecationWarning, match="connect"):
            builds["stretch3"].engine(cache_size=0).close()
        builds["stretch3"].extras.pop("_engine", None)

    def test_connect_paths_do_not_warn(self, builds):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with connect("inproc://", builds["tz"], cache_size=0) as c:
                c.dist(0, 1)
            builds["tz"].query_many([(0, 1)])  # internal engine: no warning


def _updateable_for(builds):
    built = builds["tz"]
    return built.updateable()


# ----------------------------------------------------------------------
# ISSUE 5 acceptance: a live `python -m repro serve` process
# ----------------------------------------------------------------------
def _spawn_server(tmp_path, argv: list[str]) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *argv],
        cwd=tmp_path, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "on tcp://" in line or proc.poll() is not None:
            break
    match = re.search(r"on tcp://([0-9.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise AssertionError(f"server never announced an address: {line!r}")
    return proc, match.group(1), int(match.group(2))


@pytest.fixture(scope="module")
def served_files(tmp_path_factory, graph, builds):
    from repro.graphs import write_edgelist
    from repro.oracle.serialization import save_sketch_set

    tmp = tmp_path_factory.mktemp("serve-acceptance")
    write_edgelist(graph, tmp / "net.edges")
    for name, built in builds.items():
        save_sketch_set(built.sketches, tmp / f"{name}.jsonl")
    return tmp


class TestLiveServeProcess:
    """connect("tcp://…") against `python -m repro serve` — the
    acceptance criterion, all four schemes."""

    @pytest.mark.parametrize("scheme", sorted(SCHEME_PARAMS))
    def test_tcp_equals_inproc_for_every_scheme(self, served_files,
                                                builds, scheme):
        proc, host, port = _spawn_server(served_files,
                                         [f"{scheme}.jsonl",
                                          "--addr", "127.0.0.1:0"])
        try:
            pairs = sample_query_pairs(builds[scheme].graph.n, 200, seed=3)
            with connect(f"tcp://{host}:{port}") as remote, \
                    connect("inproc://", builds[scheme],
                            cache_size=0) as local:
                assert remote.scheme == scheme
                assert remote.dist_many(pairs).tolist() == \
                    local.dist_many(pairs).tolist()
        finally:
            proc.kill()
            proc.wait()

    def test_hot_swap_propagates_over_live_tcp(self, served_files, graph):
        proc, host, port = _spawn_server(
            served_files, ["net.edges", "--updateable", "--scheme", "tz",
                           "--k", "2", "--seed", "9",
                           "--addr", "127.0.0.1:0"])
        try:
            # an inline twin of the served UpdateableIndex — same graph
            # file, same seed, so bit-identical epochs
            twin = UpdateableIndex(graph, scheme="tz", seed=9, k=2)
            changes = sample_weight_changes(graph, 3, seed=41, low=0.2,
                                            high=0.6)
            pairs = sample_query_pairs(graph.n, 150, seed=2)
            with connect(f"tcp://{host}:{port}") as watcher, \
                    connect(f"tcp://{host}:{port}") as writer:
                before = watcher.dist_many(pairs)
                assert before.tolist() == twin.index.estimate_many(
                    pairs[:, 0], pairs[:, 1]).tolist()
                report = writer.apply_updates(changes)
                twin_report = twin.apply(changes)
                assert (report.mode, report.epoch) == \
                    (twin_report.mode, twin_report.epoch)
                # the watcher session — opened before the swap, never
                # reconnected — serves the new epoch
                after = watcher.dist_many(pairs)
                assert after.tolist() == twin.index.estimate_many(
                    pairs[:, 0], pairs[:, 1]).tolist()
                assert watcher.epoch == report.epoch
                assert before.tolist() != after.tolist()
        finally:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# nightly: the tcp-loopback property profile
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestTcpLoopbackExhaustive:
    """Nightly-scale equivalence: random graphs, every ordered pair,
    served over tcp-loopback — scaled up by the nightly hypothesis
    profile like the other exhaustive suites."""

    def test_all_pairs_over_loopback(self):
        from hypothesis import HealthCheck, given, settings
        from hypothesis import strategies as st

        @st.composite
        def connected_graphs(draw, max_n=12):
            n = draw(st.integers(min_value=2, max_value=max_n))
            weights = st.integers(min_value=1, max_value=12)
            g = Graph(n)
            for v in range(1, n):
                u = draw(st.integers(min_value=0, max_value=v - 1))
                g.add_edge(u, v, float(draw(weights)))
            return g

        @settings(deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        @given(g=connected_graphs(),
               seed=st.integers(min_value=0, max_value=10**6))
        def check(g, seed):
            built = build_sketches(g, scheme="tz", k=2, seed=seed)
            us, vs = np.meshgrid(np.arange(g.n), np.arange(g.n),
                                 indexing="ij")
            pairs = np.stack([us.ravel(), vs.ravel()], axis=1)
            ref = [built.query(int(u), int(v)) for u, v in pairs]
            with session("tcp", built) as client:
                assert client.dist_many(pairs).tolist() == ref

        check()
