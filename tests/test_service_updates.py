"""The dynamic-update subsystem (repro.service.updates).

The hard invariant (ISSUE 4 acceptance): after ``UpdateableIndex.apply``,
the updated index answers **bit-identically** to an index rebuilt from
scratch on the mutated graph with the same random artifacts — property-
tested for every scheme × memory backing (heap / shared / mmap),
including :class:`~repro.errors.QueryError` parity when an update
disconnects the graph.  Weight perturbations are drawn as non-integral
floats on purpose: float path sums are direction-sensitive at the ulp
level, and the repair must reproduce the builder's floats exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, GraphError, QueryError
from repro.graphs import Graph
from repro.service import ShardServer, build_index, refresh_index
from repro.service.updates import (EdgeChange, UpdateableIndex,
                                   dirty_frontier, load_changes_jsonl,
                                   run_update_benchmark,
                                   sample_weight_changes,
                                   save_changes_jsonl)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

BACKINGS = ("heap", "shared", "mmap")


@st.composite
def graphs_with_changes(draw, max_n=12, max_changes=3, allow_structure=True):
    """A connected weighted graph plus a change batch against it.

    Weights and perturbations are non-integral floats — the adversarial
    case for bit-identity (ties vanish, but path-sum rounding differs
    between the two ends of a path).
    """
    n = draw(st.integers(min_value=3, max_value=max_n))
    weights = st.floats(min_value=0.25, max_value=9.0, allow_nan=False,
                        allow_infinity=False, width=32)
    g = Graph(n)
    for v in range(1, n):
        u = draw(st.integers(min_value=0, max_value=v - 1))
        g.add_edge(u, v, 1.0 + draw(weights))
    for _ in range(draw(st.integers(min_value=0, max_value=n))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, 1.0 + draw(weights))
    changes = []
    shadow = g.copy()  # compose op legality against the evolving graph
    for _ in range(draw(st.integers(min_value=1, max_value=max_changes))):
        kind = draw(st.sampled_from(
            ["set", "set", "insert"] if allow_structure else ["set"]))
        if kind == "insert":
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u == v or shadow.has_edge(u, v):
                continue
            c = EdgeChange("insert", u, v, 1.0 + draw(weights))
            shadow.add_edge(u, v, c.weight)
        else:
            edges = list(shadow.edges())
            u, v, _ = edges[draw(st.integers(0, len(edges) - 1))]
            c = EdgeChange("set", u, v, 1.0 + draw(weights))
            shadow.set_weight(u, v, c.weight)
        changes.append(c)
    return g, changes


def _all_ordered_pairs(n: int):
    us, vs = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return us.ravel(), vs.ravel()


def _answers_with_errors(index, us, vs):
    """Per-pair answers with QueryError as a sentinel (parity checks)."""
    out = []
    for u, v in zip(us, vs):
        try:
            out.append(float(index.estimate_many(np.asarray([u]),
                                                 np.asarray([v]))[0]))
        except QueryError:
            out.append("raise")
    return out


def _assert_updated_equals_rebuilt(upd, backing):
    """The invariant, through the chosen memory backing."""
    rebuilt = upd.rebuild_reference()
    assert upd.index == rebuilt
    us, vs = _all_ordered_pairs(upd.graph.n)
    want = _answers_with_errors(rebuilt, us, vs)
    if backing == "heap":
        got = _answers_with_errors(upd.index, us, vs)
    else:
        kwargs = {"memory": backing}
        with ShardServer(upd.index, jobs=1, **kwargs) as srv:
            got = _answers_with_errors(srv.index, us, vs)
    assert got == want  # exact floats, exact raise positions


class TestUpdatedEqualsRebuilt:
    """Updated-index ≡ rebuilt-index, per scheme × backing."""

    @settings(max_examples=10, **COMMON)
    @given(gc=graphs_with_changes(),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=4),
           backing=st.sampled_from(BACKINGS))
    def test_tz(self, gc, seed, shards, backing):
        g, changes = gc
        upd = UpdateableIndex(g, scheme="tz", seed=seed, k=3,
                              num_shards=shards, rebuild_threshold=1.0)
        upd.apply(changes)
        _assert_updated_equals_rebuilt(upd, backing)

    @settings(max_examples=8, **COMMON)
    @given(gc=graphs_with_changes(),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=3),
           backing=st.sampled_from(BACKINGS))
    def test_stretch3(self, gc, seed, shards, backing):
        g, changes = gc
        upd = UpdateableIndex(g, scheme="stretch3", seed=seed, eps=0.4,
                              num_shards=shards, rebuild_threshold=1.0)
        upd.apply(changes)
        _assert_updated_equals_rebuilt(upd, backing)

    @settings(max_examples=8, **COMMON)
    @given(gc=graphs_with_changes(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6),
           shards=st.integers(min_value=1, max_value=3),
           backing=st.sampled_from(BACKINGS))
    def test_cdg(self, gc, seed, shards, backing):
        g, changes = gc
        upd = UpdateableIndex(g, scheme="cdg", seed=seed, eps=0.4, k=2,
                              num_shards=shards, rebuild_threshold=1.0)
        upd.apply(changes)
        _assert_updated_equals_rebuilt(upd, backing)

    @settings(max_examples=5, **COMMON)
    @given(gc=graphs_with_changes(max_n=8, max_changes=2),
           seed=st.integers(min_value=0, max_value=10**6),
           backing=st.sampled_from(BACKINGS))
    def test_graceful(self, gc, seed, backing):
        g, changes = gc
        upd = UpdateableIndex(g, scheme="graceful", seed=seed,
                              num_shards=2, rebuild_threshold=1.0)
        upd.apply(changes)
        _assert_updated_equals_rebuilt(upd, backing)

    @settings(max_examples=6, **COMMON)
    @given(gc=graphs_with_changes(max_n=10),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_tz_sequential_batches_compose(self, gc, seed):
        """Applying N batches one by one ends bit-identical to a rebuild
        on the final graph (epochs compose)."""
        g, changes = gc
        upd = UpdateableIndex(g, scheme="tz", seed=seed, k=2,
                              rebuild_threshold=1.0)
        for c in changes:
            upd.apply([c])
        assert upd.epoch <= len(changes)
        _assert_updated_equals_rebuilt(upd, "heap")


class TestDisconnectingUpdates:
    """QueryError parity when an update disconnects the graph."""

    def _bridge_graph(self):
        # removing (2, 3) splits {0,1,2} from {3,4,5}
        return Graph(6, [(0, 1, 1.25), (1, 2, 1.5), (0, 2, 2.75),
                         (2, 3, 1.0), (3, 4, 1.25), (4, 5, 1.5),
                         (3, 5, 2.25)])

    @pytest.mark.parametrize("scheme,params", [
        ("tz", dict(k=2)), ("stretch3", dict(eps=0.5))])
    def test_removal_parity(self, scheme, params):
        g = self._bridge_graph()
        for seed in range(4):
            upd = UpdateableIndex(g, scheme=scheme, seed=seed,
                                  rebuild_threshold=1.0, **params)
            upd.apply([EdgeChange("remove", 2, 3)])
            _assert_updated_equals_rebuilt(upd, "heap")

    def test_reinsert_restores_answers(self):
        g = self._bridge_graph()
        upd = UpdateableIndex(g, scheme="tz", seed=1, k=2,
                              rebuild_threshold=1.0)
        before = upd.index.estimate(0, 5)
        upd.apply([EdgeChange("remove", 2, 3)])
        with pytest.raises(QueryError):
            upd.index.estimate(0, 5)
        upd.apply([EdgeChange("insert", 2, 3, 1.0)])
        assert upd.index.estimate(0, 5) == before
        _assert_updated_equals_rebuilt(upd, "heap")


class TestUpdateSemantics:
    @pytest.fixture()
    def triangle(self):
        return Graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])

    def test_noop_keeps_epoch_and_index(self, triangle):
        upd = UpdateableIndex(triangle, scheme="tz", seed=1, k=2)
        index = upd.index
        report = upd.apply([EdgeChange("increase", 0, 2, 9.0)])
        assert report.mode == "noop" and report.dirty == 0
        assert upd.epoch == 0 and upd.index is index

    def test_threshold_forces_rebuild(self, triangle):
        upd = UpdateableIndex(triangle, scheme="tz", seed=1, k=2,
                              rebuild_threshold=0.0)
        report = upd.apply([EdgeChange("set", 0, 1, 3.5)])
        assert report.mode == "rebuild"
        _assert_updated_equals_rebuilt(upd, "heap")

    def test_repair_under_threshold(self, triangle):
        upd = UpdateableIndex(triangle, scheme="tz", seed=1, k=2,
                              rebuild_threshold=1.0)
        report = upd.apply([EdgeChange("set", 0, 1, 0.5)])
        assert report.mode == "repair" and report.epoch == 1
        assert report.seconds["total"] > 0.0
        _assert_updated_equals_rebuilt(upd, "heap")

    def test_old_epoch_store_untouched(self, triangle):
        """Epoch semantics: the previous store object still answers with
        the previous graph's values after an apply."""
        upd = UpdateableIndex(triangle, scheme="tz", seed=1, k=2,
                              rebuild_threshold=1.0)
        old_index = upd.index
        old_answer = old_index.estimate(0, 2)
        upd.apply([EdgeChange("set", 1, 2, 0.25)])
        assert upd.index is not old_index
        assert old_index.estimate(0, 2) == old_answer

    def test_direction_checked_ops(self, triangle):
        upd = UpdateableIndex(triangle, scheme="tz", seed=1, k=2)
        with pytest.raises(GraphError):
            upd.apply([EdgeChange("increase", 0, 1, 0.5)])
        with pytest.raises(GraphError):
            upd.apply([EdgeChange("decrease", 0, 1, 5.0)])
        with pytest.raises(GraphError):
            upd.apply([EdgeChange("insert", 0, 1, 1.0)])
        with pytest.raises(GraphError):
            upd.apply([EdgeChange("remove", 1, 0),
                       EdgeChange("remove", 1, 0)])
        # a bad stream is rejected before any mutation lands
        assert upd.graph.has_edge(0, 1) and upd.graph.weight(0, 1) == 1.0
        assert upd.epoch == 0

    def test_change_validation(self):
        with pytest.raises(ConfigError):
            EdgeChange("teleport", 0, 1, 1.0)
        with pytest.raises(ConfigError):
            EdgeChange("set", 0, 0, 1.0)
        with pytest.raises(ConfigError):
            EdgeChange("set", 0, 1, -1.0)
        with pytest.raises(ConfigError):
            EdgeChange("insert", 0, 1, None)
        EdgeChange("remove", 0, 1)  # no weight needed

    def test_dirty_frontier_localizes(self):
        # node 2's shortest paths never use the (0, 1) edge (its direct
        # legs are cheaper), so increasing it leaves node 2 clean
        g = Graph(3, [(0, 1, 2.0), (0, 2, 1.05), (1, 2, 1.05)])
        h = g.copy()
        dirty = dirty_frontier(h, [EdgeChange("increase", 0, 1, 9.0)])
        assert dirty.tolist() == [0, 1]
        assert h.weight(0, 1) == 9.0 and g.weight(0, 1) == 2.0

    def test_failed_repair_leaves_state_untouched(self):
        """Atomicity: a repair that raises mid-way (here: a removal that
        strands a node from the CDG density net) must leave graph,
        sketches, index, and epoch exactly as they were — and the next
        apply must still satisfy the bit-identity invariant."""
        from repro.slack.density_net import DensityNet

        g = Graph(5, [(0, 1, 1.25), (1, 2, 1.5), (2, 3, 1.25),
                      (3, 4, 1.5)])
        net = DensityNet(eps=0.5, n=5, members=(0, 2))
        upd = UpdateableIndex(g, scheme="cdg", seed=1, eps=0.5, k=1,
                              net=net, rebuild_threshold=1.0)
        index = upd.index
        with pytest.raises(QueryError, match="strands"):
            upd.apply([EdgeChange("remove", 3, 4)])  # 4 loses the net
        assert upd.graph.has_edge(3, 4)  # nothing committed
        assert upd.epoch == 0 and upd.index is index
        # the instance is still consistent: a good batch keeps the
        # updated-equals-rebuilt invariant
        upd.apply([EdgeChange("set", 0, 1, 2.5)])
        _assert_updated_equals_rebuilt(upd, "heap")

    def test_changes_jsonl_round_trip(self, tmp_path):
        changes = [EdgeChange("set", 0, 1, 2.5),
                   EdgeChange("remove", 1, 2),
                   EdgeChange("insert", 0, 2, 0.75)]
        path = tmp_path / "changes.jsonl"
        save_changes_jsonl(changes, path)
        assert load_changes_jsonl(path) == changes


class TestIndexRefresh:
    def test_tz_refresh_shares_clean_shards(self, er_weighted):
        from repro.tz import build_tz_sketches_centralized

        sketches, _ = build_tz_sketches_centralized(er_weighted, k=2,
                                                    seed=11)
        index = build_index(sketches, num_shards=8)
        # replace one owner's sketch with itself: only the shards holding
        # its entries may be rebuilt, every other shard object is shared
        new = index.apply_sketch_updates({5: sketches[5]})
        assert new is not index
        touched = {w % 8 for w in sketches[5].bunch
                   if index.top_col[w] < 0}
        for s in range(8):
            if s in touched:
                assert new.shards[s] is not index.shards[s]
            else:
                assert new.shards[s] is index.shards[s]
        us, vs = _all_ordered_pairs(er_weighted.n)
        assert np.array_equal(new.estimate_many(us, vs),
                              index.estimate_many(us, vs))

    def test_refresh_index_empty_touch_returns_same_object(self,
                                                           er_weighted):
        from repro.tz import build_tz_sketches_centralized

        sketches, _ = build_tz_sketches_centralized(er_weighted, k=2,
                                                    seed=11)
        index = build_index(sketches, num_shards=2)
        assert refresh_index(index, sketches, []) is index


class TestBuiltSketchesUpdateable:
    @pytest.mark.parametrize("scheme,params", [
        ("tz", dict(k=2)), ("stretch3", dict(eps=0.4)),
        ("cdg", dict(eps=0.4, k=2))])
    def test_updateable_reuses_build(self, er_weighted, scheme, params):
        from repro import build_sketches

        built = build_sketches(er_weighted, scheme=scheme, seed=4, **params)
        upd = built.updateable(num_shards=2, rebuild_threshold=1.0)
        assert upd.sketches == built.sketches
        upd.apply(sample_weight_changes(er_weighted, 2, seed=3))
        _assert_updated_equals_rebuilt(upd, "heap")

    def test_updateable_rejects_distributed_and_graceful(self, er_unit):
        from repro import build_sketches

        with pytest.raises(ConfigError, match="centralized"):
            build_sketches(er_unit, scheme="tz", k=2, seed=1,
                           mode="distributed").updateable()
        with pytest.raises(ConfigError, match="graceful"):
            build_sketches(er_unit, scheme="graceful",
                           seed=1).updateable()


class TestRepairPolicies:
    """The repair-vs-rebuild policy objects: a pure seconds choice (the
    bit-identity invariant is policy-blind), so these tests pin the
    *decision* logic and the reporting surface."""

    def test_make_policy_names(self):
        from repro.service.updates import (POLICY_NAMES,
                                           AdaptiveCostPolicy,
                                           StaticThresholdPolicy,
                                           make_policy)

        assert set(POLICY_NAMES) == {"static", "adaptive"}
        assert isinstance(make_policy("static"), StaticThresholdPolicy)
        assert isinstance(make_policy("adaptive"), AdaptiveCostPolicy)
        assert make_policy("static", rebuild_threshold=0.5).threshold \
            == 0.5
        assert make_policy("adaptive",
                           rebuild_threshold=0.5).fallback.threshold \
            == 0.5
        with pytest.raises(ConfigError, match="unknown repair policy"):
            make_policy("oracle-of-delphi")

    def test_static_threshold_bounds_and_boundary(self):
        from repro.service.updates import StaticThresholdPolicy

        with pytest.raises(ConfigError, match="rebuild threshold"):
            StaticThresholdPolicy(-0.1)
        with pytest.raises(ConfigError, match="rebuild threshold"):
            StaticThresholdPolicy(1.5)
        pol = StaticThresholdPolicy(0.25)
        assert pol.decide(25, 100) == "repair"   # == threshold: repair
        assert pol.decide(26, 100) == "rebuild"  # > threshold: rebuild
        assert pol.decide(0, 0) == "repair"      # empty graph: no-op-ish
        assert pol.describe() == {"policy": "static", "threshold": 0.25}

    def test_adaptive_falls_back_then_trusts_the_model(self):
        from repro.service.updates import AdaptiveCostPolicy

        pol = AdaptiveCostPolicy(fallback_threshold=0.25)
        # cold start: no measurements, degrade to the static rule
        assert pol.decide(50, 100) == "rebuild"
        assert pol.decisions[-1]["basis"] == "fallback"
        pol.note_build(10.0, 100)           # rebuild cost known...
        assert pol.decide(50, 100) == "rebuild"
        assert pol.decisions[-1]["basis"] == "fallback"  # ...repair not
        pol.observe("repair", 10, 100, 1.0)  # 0.1 s per dirty node
        # now the model rules: 50 dirty -> 5.0 s repair vs 10.0 s
        # rebuild, even though 0.5 is far over the static threshold
        assert pol.decide(50, 100) == "repair"
        assert pol.decisions[-1]["basis"] == "model"
        assert pol.decide(200, 100) == "rebuild"  # 20.0 s > 10.0 s
        desc = pol.describe()
        assert desc["rebuild_seconds"] == 10.0
        assert desc["repair_per_dirty"] == pytest.approx(0.1)
        assert [d["basis"] for d in desc["decisions"]] == \
            ["fallback", "fallback", "model", "model"]

    def test_adaptive_validation_and_ewma(self):
        from repro.service.updates import AdaptiveCostPolicy

        with pytest.raises(ConfigError, match="smoothing"):
            AdaptiveCostPolicy(smoothing=0.0)
        with pytest.raises(ConfigError, match="smoothing"):
            AdaptiveCostPolicy(smoothing=1.5)
        pol = AdaptiveCostPolicy(smoothing=0.5)
        pol.observe("rebuild", 0, 100, 4.0)
        pol.observe("rebuild", 0, 100, 8.0)
        assert pol.rebuild_seconds == pytest.approx(6.0)  # EWMA blend
        pol.observe("repair", 5, 100, 0.0)   # non-positive: ignored
        assert pol.repair_per_dirty is None
        pol.observe("repair", 0, 100, 1.0)   # zero dirty: ignored
        assert pol.repair_per_dirty is None

    def test_report_carries_policy_name(self, er_weighted):
        from repro.service.updates import make_policy

        changes = sample_weight_changes(er_weighted, 2, seed=6)
        static = UpdateableIndex(er_weighted, "tz", seed=4, k=2)
        assert static.apply(changes).policy == "static"
        adaptive = UpdateableIndex(er_weighted, "tz", seed=4, k=2,
                                   policy=make_policy("adaptive"))
        assert adaptive.apply(changes).policy == "adaptive"
        # the invariant the policies live under: same changes, same
        # epoch, bit-identical answers either way
        us, vs = _all_ordered_pairs(er_weighted.n)
        assert _answers_with_errors(static.index, us, vs) == \
            _answers_with_errors(adaptive.index, us, vs)

    def test_string_policy_via_built_sketches(self, er_weighted):
        from repro import build_sketches

        built = build_sketches(er_weighted, scheme="tz", seed=4, k=2)
        upd = built.updateable(policy="adaptive", rebuild_threshold=0.5)
        assert upd.policy.name == "adaptive"
        assert upd.policy.fallback.threshold == 0.5
        rep = upd.apply(sample_weight_changes(er_weighted, 2, seed=7))
        assert rep.policy == "adaptive"


def test_run_update_benchmark_smoke(er_weighted):
    report = run_update_benchmark(er_weighted, scheme="tz", k=2, seed=5,
                                  batch_sizes=(1, 2), num_shards=2,
                                  verify_pairs=400)
    assert report["identical"]
    assert [r["batch"] for r in report["rows"]] == [1, 2]
    for row in report["rows"]:
        assert row["update_seconds"] > 0 and row["rebuild_seconds"] > 0
