"""Failure injection (repro.congest.faults, repro.algorithms.reliable_bf).

The paper's conclusion names failure-prone settings as future work; these
tests exercise the library's first step in that direction: message-loss
and crash injection, plus the retransmitting Bellman-Ford that restores
correctness under loss (and a demonstration that the fragile Algorithm 1
visibly fails under the same faults).
"""

import math

import numpy as np
import pytest

from repro.algorithms.bellman_ford import BellmanFordProgram
from repro.algorithms.reliable_bf import (
    ReliableBellmanFordProgram,
    reliable_single_source_distances,
)
from repro.congest.faults import FaultModel, FaultySimulator
from repro.errors import ConfigError
from repro.graphs import apsp, path_graph, ring


class TestFaultModel:
    def test_loss_rate_validation(self):
        with pytest.raises(ConfigError):
            FaultModel(loss_rate=1.0)
        with pytest.raises(ConfigError):
            FaultModel(loss_rate=-0.1)

    def test_zero_loss_delivers_everything(self):
        fm = FaultModel(loss_rate=0.0, seed=1)
        assert all(fm.delivers(0, 1, r) for r in range(100))
        assert fm.dropped == 0

    def test_loss_is_metered_and_seeded(self):
        a = FaultModel(loss_rate=0.5, seed=2)
        b = FaultModel(loss_rate=0.5, seed=2)
        fates_a = [a.delivers(0, 1, r) for r in range(200)]
        fates_b = [b.delivers(0, 1, r) for r in range(200)]
        assert fates_a == fates_b
        assert a.dropped == fates_a.count(False)
        assert 40 <= a.dropped <= 160  # ~100 expected

    def test_crash_blocks_both_directions(self):
        fm = FaultModel(crashes={3: 5})
        assert fm.delivers(3, 1, 4)       # before the crash round
        assert not fm.delivers(3, 1, 5)   # crashed sender
        assert not fm.delivers(1, 3, 7)   # crashed receiver
        assert fm.blocked == 2


class TestLossySimulation:
    def test_plain_bf_fails_visibly_under_loss(self):
        """Algorithm 1 without retransmission quiesces with WRONG
        distances when messages vanish — the failure is detectable
        (infinite estimates), not silent corruption."""
        g = path_graph(12)
        fm = FaultModel(loss_rate=0.6, seed=3)
        sim = FaultySimulator(g, lambda u: BellmanFordProgram(u, 0),
                              seed=4, fault_model=fm)
        res = sim.run()
        dists = [p.result()[0] for p in res.programs]
        assert any(math.isinf(d) or d > i for i, d in enumerate(dists))

    def test_reliable_bf_exact_under_heavy_loss(self, er_weighted):
        # patience must scale with the loss rate: each extra period is one
        # more independent retransmission, so P(edge never delivers) decays
        # exponentially in patience
        d = apsp(er_weighted)
        for loss, patience in ((0.2, 8), (0.5, 25)):
            dists, fm, _ = reliable_single_source_distances(
                er_weighted, 0, loss_rate=loss, seed=5, fault_seed=6,
                patience=patience)
            assert np.allclose(dists, d[0])
            assert fm.dropped > 0  # the faults actually happened

    def test_reliable_bf_no_loss_matches_plain(self, er_weighted):
        d = apsp(er_weighted)
        dists, fm, _ = reliable_single_source_distances(er_weighted, 7,
                                                        seed=8)
        assert np.allclose(dists, d[7])
        assert fm.dropped == 0

    def test_reliable_bf_terminates(self):
        g = ring(10)
        _, _, metrics = reliable_single_source_distances(
            g, 0, loss_rate=0.3, seed=9, fault_seed=10)
        # termination despite clock-driven retransmission
        assert metrics.rounds < 10_000

    def test_crash_partitions_reachability(self):
        # path 0-1-2-3-4; node 2 crashes immediately: 3 and 4 never learn
        g = path_graph(5)
        dists, fm, _ = reliable_single_source_distances(
            g, 0, crashes={2: 0}, seed=11)
        assert dists[1] == 1.0
        assert math.isinf(dists[3]) and math.isinf(dists[4])
        assert fm.blocked > 0

    def test_late_crash_after_convergence_is_harmless(self):
        g = path_graph(6)
        dists, _, _ = reliable_single_source_distances(
            g, 0, crashes={3: 50}, seed=12)
        assert dists == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


class TestProgramValidation:
    def test_bad_period_rejected(self):
        with pytest.raises(ConfigError):
            ReliableBellmanFordProgram(0, 0, period=0)

    def test_bad_patience_rejected(self):
        with pytest.raises(ConfigError):
            ReliableBellmanFordProgram(0, 0, patience=0)
