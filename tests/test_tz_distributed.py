"""Distributed Thorup-Zwick (Algorithm 2, Theorem 3.8) — all sync modes.

The central assertion of the whole reproduction: given the same hierarchy,
the distributed protocol computes *exactly* the sketches the centralized
[TZ05] construction does, under every synchronization mode.
"""


import pytest

from repro.errors import ConfigError
from repro.graphs import (
    apsp,
    assign_uniform_weights,
    erdos_renyi,
    grid2d,
    ring,
    shortest_path_diameter,
)
from repro.tz import (
    build_tz_sketches_centralized,
    build_tz_sketches_distributed,
    estimate_distance,
    sample_hierarchy,
)
from repro.tz.distributed import phase_budgets


def assert_same_sketches(a, b):
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert sa.pivots == sb.pivots, f"pivots differ at node {sa.node}"
        assert sa.bunch == sb.bunch, f"bunch differs at node {sa.node}"


@pytest.fixture(scope="module")
def cases():
    graphs = {
        "er-unit": erdos_renyi(30, seed=21),
        "er-weighted": assign_uniform_weights(erdos_renyi(28, seed=22), seed=23),
        "ring": ring(15),
        "grid": grid2d(4, 5),
    }
    out = {}
    for name, g in graphs.items():
        h = sample_hierarchy(g.n, 3, seed=31)
        cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
        out[name] = (g, h, cs)
    return out


class TestOracleSync:
    def test_matches_centralized(self, cases):
        for name, (g, h, cs) in cases.items():
            res = build_tz_sketches_distributed(g, hierarchy=h, sync="oracle",
                                                seed=41)
            assert_same_sketches(cs, res.sketches)

    def test_phase_metrics_segmented(self, cases):
        g, h, _ = cases["er-unit"]
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="oracle",
                                            seed=42)
        assert res.metrics.phase_names() == ["phase-2", "phase-1", "phase-0"]
        assert sum(p.rounds for p in res.metrics.phases) == res.metrics.rounds

    def test_k1_gives_full_tables(self):
        g = erdos_renyi(20, seed=24)
        res = build_tz_sketches_distributed(g, k=1, seed=43)
        d = apsp(g)
        for u in g.nodes():
            assert len(res.sketches[u].bunch) == g.n
            for v in g.nodes():
                assert estimate_distance(res.sketches[u], res.sketches[v]) \
                    == pytest.approx(d[u, v])

    def test_max_queue_reported(self, cases):
        g, h, _ = cases["er-unit"]
        res = build_tz_sketches_distributed(g, hierarchy=h, seed=44)
        assert res.max_queue_len >= 1


class TestEchoSync:
    def test_matches_centralized(self, cases):
        for name, (g, h, cs) in cases.items():
            res = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                                seed=51)
            assert_same_sketches(cs, res.sketches)

    def test_tree_depth_reported(self, cases):
        g, h, _ = cases["grid"]
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                            seed=52)
        assert res.tree_depth is not None and res.tree_depth >= 1

    def test_costs_more_than_oracle_but_bounded(self, cases):
        # Section 3.3's claim: termination detection costs a constant
        # factor in messages over the oracle-synchronized protocol
        g, h, _ = cases["er-unit"]
        oracle = build_tz_sketches_distributed(g, hierarchy=h, sync="oracle",
                                               seed=53)
        echo = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                             seed=53)
        assert echo.metrics.messages >= oracle.metrics.messages
        # data doubles (ECHOs) + election/COMPLETE/START overhead: allow 6x
        assert echo.metrics.messages <= 6 * oracle.metrics.messages + 40 * g.n

    def test_k2_and_k4(self):
        g = assign_uniform_weights(erdos_renyi(24, seed=25), seed=26)
        for k in (2, 4):
            h = sample_hierarchy(g.n, k, seed=32 + k)
            cs, _ = build_tz_sketches_centralized(g, hierarchy=h)
            res = build_tz_sketches_distributed(g, hierarchy=h, sync="echo",
                                                seed=54)
            assert_same_sketches(cs, res.sketches)


class TestKnownSmaxSync:
    def test_matches_centralized_whp_budget(self, cases):
        for name, (g, h, cs) in cases.items():
            S = shortest_path_diameter(g)
            res = build_tz_sketches_distributed(g, hierarchy=h,
                                                sync="known_smax", S=S,
                                                budget="whp", seed=61)
            assert_same_sketches(cs, res.sketches)

    def test_matches_centralized_safe_budget(self, cases):
        g, h, cs = cases["er-weighted"]
        S = shortest_path_diameter(g)
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="known_smax",
                                            S=S, budget="safe", seed=62)
        assert_same_sketches(cs, res.sketches)

    def test_requires_S(self, cases):
        g, h, _ = cases["er-unit"]
        with pytest.raises(ConfigError):
            build_tz_sketches_distributed(g, hierarchy=h, sync="known_smax")

    def test_explicit_budget_list(self, cases):
        g, h, cs = cases["er-unit"]
        S = shortest_path_diameter(g)
        budgets = phase_budgets(g.n, 3, S, mode="safe")
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="known_smax",
                                            S=S, budget=budgets, seed=63)
        assert_same_sketches(cs, res.sketches)

    def test_rounds_equal_budget_sum(self, cases):
        # known-S charges the full fixed schedule regardless of early
        # quiescence — that is the price of the paper's assumption
        g, h, _ = cases["ring"]
        S = shortest_path_diameter(g)
        budgets = phase_budgets(g.n, 3, S, mode="whp")
        res = build_tz_sketches_distributed(g, hierarchy=h, sync="known_smax",
                                            S=S, budget="whp", seed=64)
        assert res.metrics.rounds == pytest.approx(sum(budgets), abs=3)


class TestBudgets:
    def test_safe_budget_formula(self):
        assert phase_budgets(10, 2, 4, mode="safe") == [4 * 12 + 2] * 2

    def test_whp_budget_grows_with_S(self):
        a = phase_budgets(64, 2, 2, mode="whp")[0]
        b = phase_budgets(64, 2, 8, mode="whp")[0]
        assert b > a

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            phase_budgets(10, 2, 4, mode="wat")

    def test_invalid_S_rejected(self):
        with pytest.raises(ConfigError):
            phase_budgets(10, 2, 0)


class TestValidation:
    def test_unknown_sync_rejected(self, cases):
        g, h, _ = cases["er-unit"]
        with pytest.raises(ConfigError):
            build_tz_sketches_distributed(g, hierarchy=h, sync="psychic")

    def test_needs_k_or_hierarchy(self, cases):
        g, _, _ = cases["er-unit"]
        with pytest.raises(ConfigError):
            build_tz_sketches_distributed(g)

    def test_conflicting_k_rejected(self, cases):
        g, h, _ = cases["er-unit"]
        with pytest.raises(ConfigError):
            build_tz_sketches_distributed(g, k=h.k + 1, hierarchy=h)


class TestComplexityShape:
    @pytest.mark.slow
    def test_rounds_within_theory_curve(self):
        # Theorem 1.1: rounds = O(k n^{1/k} S log n); check the implied
        # constant stays bounded along an n-sweep (shape, not absolutes)
        from repro.analysis import tz_round_bound, summarize_ratios

        measured, bounds = [], []
        for n in (16, 32, 64):
            g = erdos_renyi(n, seed=n)
            S = shortest_path_diameter(g)
            res = build_tz_sketches_distributed(g, k=2, seed=n + 1)
            measured.append(res.metrics.rounds)
            bounds.append(tz_round_bound(n, 2, S))
        summary = summarize_ratios(measured, bounds)
        assert summary.shape_holds(drift_tolerance=2.0)
